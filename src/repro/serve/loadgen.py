"""Deterministic load generator for the serving layer.

``repro serve loadgen`` drives a running server (single-process or
sharded) over TCP with a reproducible workload: every session streams a
seeded plateau-shaped Mem/Uop series — the same synthetic shape the
equivalence property tests use — as protocol-v2 ``sample_batch``
requests (or v1 ``sample`` requests for back-compat testing).

Determinism is the point, not an accident: the sample series depends
only on ``seed`` and the session index, and the generator digests every
outcome row (SHA-256 over interval/phase/prediction/frequency) into a
single hex string.  Two runs against *any* topology — one worker or
eight, batch size 1 or 64 — must produce the same digest, which is how
the scale-out benchmark proves the batched + sharded path is bit-for-bit
equivalent to single-sample serving.

In verify mode every session also finishes with a checkpoint round
trip — ``predict``, ``stats``, ``snapshot``, ``restore``, and a second
``predict`` on the restored twin — so every wire op has an executable
spec and losslessness is asserted end to end, over the wire, under
load.  The extra ops do not touch the outcome digest (only sample
outcomes are digested), so digests stay comparable across verify and
older generators.

Only throughput numbers (``elapsed_s`` and the derived rates) come from
the injected wall clock; everything the digest covers is clock-free.
"""

from __future__ import annotations

import hashlib
import json
import socket
import threading
from dataclasses import dataclass
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.serve.frontends import DEFAULT_CLOCK
from repro.serve.protocol import PROTOCOL_VERSION, SUPPORTED_PROTOCOLS
from repro.serve.session import Clock

#: Plateau levels for the synthetic Mem/Uop series — one per phase band
#: of the default classifier, so every phase gets exercised.
_PLATEAU_LEVELS: Tuple[float, ...] = (0.001, 0.011, 0.02, 0.03, 0.045, 0.06)


def generate_series(n: int, seed: int = 0) -> List[float]:
    """A deterministic plateau-shaped Mem/Uop series of length ``n``.

    Phase-like plateaus (runs of one level, length 4..32) drawn from a
    seeded :class:`random.Random` — stable across processes and runs.
    """
    if n < 0:
        raise ConfigurationError(f"series length must be >= 0, got {n}")
    rng = Random(seed)
    series: List[float] = []
    while len(series) < n:
        level = _PLATEAU_LEVELS[rng.randrange(len(_PLATEAU_LEVELS))]
        length = rng.randint(4, 32)
        series.extend([level] * min(length, n - len(series)))
    return series


@dataclass(frozen=True)
class LoadgenResult:
    """Outcome of one load-generator run.

    ``outcome_digest`` is the topology-independent fingerprint: SHA-256
    over every session's outcome rows, in session order.  Equal digests
    across worker counts and batch sizes certify bit-for-bit equivalent
    serving.
    """

    sessions: int
    samples_per_session: int
    batch_size: int
    connections: int
    protocol: int
    requests: int
    samples: int
    errors: int
    elapsed_s: float
    outcome_digest: str

    @property
    def samples_per_s(self) -> float:
        return self.samples / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def requests_per_s(self) -> float:
        return self.requests / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def to_payload(self) -> Dict[str, object]:
        """JSON-ready summary (machine-readable benchmark record)."""
        return {
            "sessions": self.sessions,
            "samples_per_session": self.samples_per_session,
            "batch_size": self.batch_size,
            "connections": self.connections,
            "protocol": self.protocol,
            "requests": self.requests,
            "samples": self.samples,
            "errors": self.errors,
            "elapsed_s": self.elapsed_s,
            "samples_per_s": self.samples_per_s,
            "requests_per_s": self.requests_per_s,
            "outcome_digest": self.outcome_digest,
        }


class _Connection:
    """Blocking line-oriented client socket."""

    def __init__(self, host: str, port: int) -> None:
        self._sock = socket.create_connection((host, port))
        self._file = self._sock.makefile("rw", encoding="utf-8", newline="\n")

    def rpc(self, request: Dict[str, object]) -> Dict[str, object]:
        payload = json.loads(self.rpc_raw(request))
        if not isinstance(payload, dict):
            raise ConfigurationError(f"malformed response: {payload!r}")
        return payload

    def rpc_raw(self, request: Dict[str, object]) -> str:
        """One round trip, response returned as its raw line.

        The throughput path uses this to skip response parsing: the
        server's own serializer always leads with the ``ok`` key, so
        success is a prefix check on the raw line.
        """
        self._file.write(json.dumps(request, separators=(",", ":")) + "\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConfigurationError("server closed the connection")
        return line

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()


def _outcome_rows(response: Dict[str, object]) -> List[str]:
    """Digest rows for one sample/sample_batch response."""
    rows: List[str] = []
    if response.get("op") == "sample_batch":
        outcomes = response.get("outcomes")
        if not isinstance(outcomes, list):
            raise ConfigurationError("sample_batch response missing outcomes")
        for outcome in outcomes:
            interval, phase, predicted, freq, degraded, hit = outcome
            rows.append(
                f"{interval}:{phase}:{predicted}:{freq}:"
                f"{int(bool(degraded))}:{'-' if hit is None else int(bool(hit))}"
            )
    else:
        hit = response.get("hit")
        rows.append(
            f"{response['interval']}:{response['phase']}:"
            f"{response['predicted']}:{response['frequency_mhz']}:"
            f"{int(bool(response.get('degraded')))}:"
            f"{'-' if hit is None else int(bool(hit))}"
        )
    return rows


def _verify_checkpoint(
    conn: _Connection, session_id: str, expected_samples: int
) -> Tuple[int, int]:
    """Exercise predict/stats/snapshot/restore against a fed session.

    Verify mode is the protocol's executable spec: every wire op must be
    drivable by the generator, and the checkpoint ops carry a semantic
    check — a session restored over the wire must predict exactly what
    the original predicts (losslessness, observed end to end).  Returns
    ``(requests, errors)``; outcome digests are unaffected because only
    sample outcomes are digested.
    """
    requests = 0
    errors = 0

    predict = conn.rpc({"op": "predict", "session": session_id})
    requests += 1
    if not predict.get("ok"):
        return requests, errors + 1

    stats = conn.rpc({"op": "stats", "session": session_id})
    requests += 1
    session_stats = stats.get("stats")
    if not stats.get("ok") or not (
        isinstance(session_stats, dict)
        and session_stats.get("samples") == expected_samples
    ):
        errors += 1

    snapshot = conn.rpc({"op": "snapshot", "session": session_id})
    requests += 1
    if not snapshot.get("ok"):
        return requests, errors + 1

    restore = conn.rpc(
        {"op": "restore", "checkpoint": snapshot["checkpoint"]}
    )
    requests += 1
    if not restore.get("ok"):
        return requests, errors + 1
    restored_id = restore["session"]
    if restore.get("samples") != expected_samples:
        errors += 1

    twin = conn.rpc({"op": "predict", "session": restored_id})
    requests += 1
    if not twin.get("ok") or (
        twin.get("predicted") != predict.get("predicted")
        or twin.get("frequency_mhz") != predict.get("frequency_mhz")
    ):
        errors += 1

    bye = conn.rpc({"op": "bye", "session": restored_id})
    requests += 1
    if not bye.get("ok"):
        errors += 1
    return requests, errors


def _drive_session(
    conn: _Connection,
    session_index: int,
    samples_per_session: int,
    batch_size: int,
    protocol: int,
    governor: str,
    seed: int,
    verify: bool,
) -> Tuple[int, int, int, str]:
    """Run one session to completion; returns (requests, samples, errors, digest)."""
    requests = 0
    samples = 0
    errors = 0
    digest = hashlib.sha256()
    series = generate_series(samples_per_session, seed + session_index)

    hello: Dict[str, object] = {
        "op": "hello",
        "protocol": protocol,
        "governor": governor,
    }
    response = conn.rpc(hello)
    requests += 1
    if not response.get("ok"):
        return requests, samples, errors + 1, digest.hexdigest()
    session_id = response["session"]

    index = 0
    while index < len(series):
        chunk = series[index : index + batch_size]
        if protocol >= 2 and batch_size > 1:
            request: Dict[str, object] = {
                "op": "sample_batch",
                "session": session_id,
                "start_interval": index,
                "samples": chunk,
            }
        else:
            request = {
                "op": "sample",
                "session": session_id,
                "interval": index,
                "mem_per_uop": chunk[0],
            }
            chunk = chunk[:1]
        requests += 1
        if verify:
            response = conn.rpc(request)
            if not response.get("ok"):
                errors += 1
                index += len(chunk)
                continue
            for row in _outcome_rows(response):
                digest.update(row.encode("utf-8"))
                digest.update(b"\n")
        else:
            # Throughput mode: the serializer leads with ``ok``, so a
            # prefix check replaces a full JSON parse of the response.
            if not conn.rpc_raw(request).startswith('{"ok":true'):
                errors += 1
                index += len(chunk)
                continue
        samples += len(chunk)
        index += len(chunk)

    if verify:
        extra_requests, extra_errors = _verify_checkpoint(
            conn, str(session_id), samples
        )
        requests += extra_requests
        errors += extra_errors

    response = conn.rpc({"op": "bye", "session": session_id})
    requests += 1
    if not response.get("ok"):
        errors += 1
    return requests, samples, errors, digest.hexdigest() if verify else ""


def run_loadgen(
    host: str,
    port: int,
    *,
    sessions: int = 8,
    samples_per_session: int = 512,
    batch_size: int = 16,
    connections: int = 4,
    protocol: int = PROTOCOL_VERSION,
    governor: str = "gpht",
    seed: int = 0,
    verify: bool = True,
    clock: Clock = DEFAULT_CLOCK,
) -> LoadgenResult:
    """Drive ``host:port`` with a deterministic workload; measure throughput.

    ``connections`` client threads each hold one TCP connection;
    sessions are assigned to connections round-robin and driven to
    completion one after another on their thread.  The outcome digest is
    combined in session-index order, so it is independent of thread
    scheduling, connection count, batch size and server topology.

    With ``verify=False`` the generator runs in pure throughput mode:
    responses get a success prefix check instead of a JSON parse and no
    digest is computed (``outcome_digest`` is empty) — use it when
    measuring server capacity so client-side verification cost does not
    pollute the number.

    Raises:
        ConfigurationError: On invalid parameters (e.g. batching
            requested on protocol v1).
    """
    if sessions < 1:
        raise ConfigurationError(f"sessions must be >= 1, got {sessions}")
    if samples_per_session < 1:
        raise ConfigurationError(
            f"samples_per_session must be >= 1, got {samples_per_session}"
        )
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    if connections < 1:
        raise ConfigurationError(
            f"connections must be >= 1, got {connections}"
        )
    if protocol not in SUPPORTED_PROTOCOLS:
        raise ConfigurationError(
            f"protocol must be one of {SUPPORTED_PROTOCOLS}, got {protocol}"
        )
    if protocol < 2 and batch_size > 1:
        raise ConfigurationError(
            "protocol v1 has no sample_batch op; use --batch 1 or --protocol 2"
        )
    connections = min(connections, sessions)

    per_session_digests: List[Optional[str]] = [None] * sessions
    totals = [0, 0, 0]  # requests, samples, errors
    totals_lock = threading.Lock()

    def worker(connection_index: int, assigned: Sequence[int]) -> None:
        conn = _Connection(host, port)
        try:
            for session_index in assigned:
                requests, samples, errors, digest = _drive_session(
                    conn,
                    session_index,
                    samples_per_session,
                    batch_size,
                    protocol,
                    governor,
                    seed,
                    verify,
                )
                per_session_digests[session_index] = digest
                with totals_lock:
                    totals[0] += requests
                    totals[1] += samples
                    totals[2] += errors
        finally:
            conn.close()

    threads = []
    started = clock()
    for connection_index in range(connections):
        assigned = [
            s for s in range(sessions) if s % connections == connection_index
        ]
        thread = threading.Thread(
            target=worker,
            args=(connection_index, assigned),
            name=f"repro-loadgen-{connection_index}",
        )
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()
    elapsed = clock() - started

    if verify:
        combined = hashlib.sha256()
        for digest in per_session_digests:
            combined.update((digest or "absent").encode("ascii"))
            combined.update(b"\n")
        outcome_digest = combined.hexdigest()
    else:
        outcome_digest = ""
    return LoadgenResult(
        sessions=sessions,
        samples_per_session=samples_per_session,
        batch_size=batch_size,
        connections=connections,
        protocol=protocol,
        requests=totals[0],
        samples=totals[1],
        errors=totals[2],
        elapsed_s=elapsed,
        outcome_digest=outcome_digest,
    )
