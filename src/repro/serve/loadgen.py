"""Deterministic load generator for the serving layer.

``repro serve loadgen`` drives a running server (single-process or
sharded) over TCP with a reproducible workload: every session streams a
seeded plateau-shaped Mem/Uop series — the same synthetic shape the
equivalence property tests use — as protocol-v2 ``sample_batch``
requests (or v1 ``sample`` requests for back-compat testing).

Determinism is the point, not an accident: the sample series depends
only on ``seed`` and the session index, and the generator digests every
outcome row (SHA-256 over interval/phase/prediction/frequency) into a
single hex string.  Two runs against *any* topology — one worker or
eight, batch size 1 or 64 — must produce the same digest, which is how
the scale-out benchmark proves the batched + sharded path is bit-for-bit
equivalent to single-sample serving.

In verify mode every session also finishes with a checkpoint round
trip — ``predict``, ``stats``, ``snapshot``, ``restore``, and a second
``predict`` on the restored twin — so every wire op has an executable
spec and losslessness is asserted end to end, over the wire, under
load.  The extra ops do not touch the outcome digest (only sample
outcomes are digested), so digests stay comparable across verify and
older generators.

**Chaos mode** extends the same determinism to failure injection: a
:class:`ChaosSchedule` kills chosen workers after exact request counts,
and the generator recovers by polling the session back into existence
(auto-restart restores it from its last checkpoint) and replaying the
tail of the series.  Replayed outcomes must be *identical* to the rows
already digested — the checkpoint/replay path is bit-lossless, so the
outcome digest of a chaos run equals the digest of an undisturbed run.
With ``connections=1`` the request counter is driven by a single
thread, so kills land at exact, reproducible points between requests;
with concurrent connections a kill can race an in-flight request and
the server may restore *ahead* of what that client observed (its
response was lost), in which case the skipped rows leave the digest
incomparable — that race is the documented replay-window caveat.

Only throughput numbers (``elapsed_s`` and the derived rates) come from
the injected wall clock; everything the digest covers is clock-free.
"""

from __future__ import annotations

import hashlib
import json
import socket
import threading
import time
from dataclasses import dataclass
from random import Random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.serve.frontends import DEFAULT_CLOCK
from repro.serve.protocol import PROTOCOL_VERSION, SUPPORTED_PROTOCOLS
from repro.serve.session import Clock

#: Plateau levels for the synthetic Mem/Uop series — one per phase band
#: of the default classifier, so every phase gets exercised.
_PLATEAU_LEVELS: Tuple[float, ...] = (0.001, 0.011, 0.02, 0.03, 0.045, 0.06)

#: Error codes the generator treats as transient when a recovery policy
#: is active: the shard exists but cannot answer *right now*.
_RECOVERABLE_ERRORS: Tuple[str, ...] = (
    "worker_unavailable",
    "worker_recovering",
)

#: How many times recovery polls a session before giving up, and how
#: long it sleeps between polls (worker restart + checkpoint restore is
#: typically well under a second).
DEFAULT_RECOVERY_ATTEMPTS = 400
DEFAULT_RECOVERY_DELAY_S = 0.05

#: Injectable sleep — by reference, mirroring ``DEFAULT_CLOCK``, so
#: tests can drop the waiting entirely.
DEFAULT_SLEEP: Callable[[float], None] = time.sleep


def generate_series(n: int, seed: int = 0) -> List[float]:
    """A deterministic plateau-shaped Mem/Uop series of length ``n``.

    Phase-like plateaus (runs of one level, length 4..32) drawn from a
    seeded :class:`random.Random` — stable across processes and runs.
    """
    if n < 0:
        raise ConfigurationError(f"series length must be >= 0, got {n}")
    rng = Random(seed)
    series: List[float] = []
    while len(series) < n:
        level = _PLATEAU_LEVELS[rng.randrange(len(_PLATEAU_LEVELS))]
        length = rng.randint(4, 32)
        series.extend([level] * min(length, n - len(series)))
    return series


@dataclass(frozen=True)
class ChaosEvent:
    """Kill ``worker`` once the generator has issued ``after_requests``.

    The trigger is the generator's *own* request counter — not wall
    time — so a schedule is exactly reproducible run to run (with a
    single connection, to the request).
    """

    after_requests: int
    worker: int

    def __post_init__(self) -> None:
        if self.after_requests < 1:
            raise ConfigurationError(
                f"after_requests must be >= 1, got {self.after_requests}"
            )
        if self.worker < 0:
            raise ConfigurationError(
                f"worker must be >= 0, got {self.worker}"
            )


def parse_chaos_event(spec: str) -> ChaosEvent:
    """Parse a ``REQUESTS:WORKER`` CLI spec into a :class:`ChaosEvent`."""
    parts = spec.split(":")
    if len(parts) != 2:
        raise ConfigurationError(
            f"chaos event must be 'REQUESTS:WORKER', got {spec!r}"
        )
    try:
        after_requests, worker = int(parts[0]), int(parts[1])
    except ValueError:
        raise ConfigurationError(
            f"chaos event must be 'REQUESTS:WORKER' with integers, "
            f"got {spec!r}"
        ) from None
    return ChaosEvent(after_requests=after_requests, worker=worker)


class ChaosSchedule:
    """A deterministic worker-kill schedule driven by the request count.

    ``kill`` is the failure injector (typically
    ``ShardedServer.kill_worker``); each event fires exactly once, the
    first time the generator's cumulative request count reaches its
    threshold.  Thread-safe: with several connections any thread may
    cross a threshold, and the kill runs outside the counter lock so a
    slow terminate cannot stall other connections' accounting.
    """

    def __init__(
        self, kill: Callable[[int], None], events: Sequence[ChaosEvent]
    ) -> None:
        self._kill = kill
        self._pending = sorted(events, key=lambda event: event.after_requests)
        self._fired: List[ChaosEvent] = []
        self._requests = 0
        self._lock = threading.Lock()

    @property
    def requests(self) -> int:
        """Requests noted so far."""
        with self._lock:
            return self._requests

    @property
    def fired(self) -> Tuple[ChaosEvent, ...]:
        """Events that have fired, in firing order."""
        with self._lock:
            return tuple(self._fired)

    @property
    def pending(self) -> Tuple[ChaosEvent, ...]:
        """Events still waiting for their request threshold."""
        with self._lock:
            return tuple(self._pending)

    def note_request(self) -> None:
        """Count one request; fire every event whose threshold passed."""
        to_fire: List[ChaosEvent] = []
        with self._lock:
            self._requests += 1
            while (
                self._pending
                and self._pending[0].after_requests <= self._requests
            ):
                to_fire.append(self._pending.pop(0))
        for event in to_fire:
            self._kill(event.worker)
            with self._lock:
                self._fired.append(event)


@dataclass(frozen=True)
class _RecoveryPolicy:
    """How persistently the generator chases a recovering session."""

    attempts: int
    delay_s: float
    sleep: Callable[[float], None]


@dataclass(frozen=True)
class LoadgenResult:
    """Outcome of one load-generator run.

    ``outcome_digest`` is the topology-independent fingerprint: SHA-256
    over every session's outcome rows, in session order.  Equal digests
    across worker counts and batch sizes certify bit-for-bit equivalent
    serving — including chaos runs, whose replayed rows must reproduce
    the originals exactly.  ``recoveries`` counts resync-and-replay
    episodes; ``replayed_samples`` the samples re-sent because a kill
    rolled the session back to its last checkpoint.
    """

    sessions: int
    samples_per_session: int
    batch_size: int
    connections: int
    protocol: int
    requests: int
    samples: int
    errors: int
    elapsed_s: float
    outcome_digest: str
    recoveries: int = 0
    replayed_samples: int = 0

    @property
    def samples_per_s(self) -> float:
        return self.samples / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def requests_per_s(self) -> float:
        return self.requests / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def to_payload(self) -> Dict[str, object]:
        """JSON-ready summary (machine-readable benchmark record)."""
        return {
            "sessions": self.sessions,
            "samples_per_session": self.samples_per_session,
            "batch_size": self.batch_size,
            "connections": self.connections,
            "protocol": self.protocol,
            "requests": self.requests,
            "samples": self.samples,
            "errors": self.errors,
            "elapsed_s": self.elapsed_s,
            "samples_per_s": self.samples_per_s,
            "requests_per_s": self.requests_per_s,
            "outcome_digest": self.outcome_digest,
            "recoveries": self.recoveries,
            "replayed_samples": self.replayed_samples,
        }


class _Connection:
    """Blocking line-oriented client socket."""

    def __init__(self, host: str, port: int) -> None:
        self._sock = socket.create_connection((host, port))
        self._file = self._sock.makefile("rw", encoding="utf-8", newline="\n")

    def rpc(self, request: Dict[str, object]) -> Dict[str, object]:
        payload = json.loads(self.rpc_raw(request))
        if not isinstance(payload, dict):
            raise ConfigurationError(f"malformed response: {payload!r}")
        return payload

    def rpc_raw(self, request: Dict[str, object]) -> str:
        """One round trip, response returned as its raw line.

        The throughput path uses this to skip response parsing: the
        server's own serializer always leads with the ``ok`` key, so
        success is a prefix check on the raw line.
        """
        self._file.write(json.dumps(request, separators=(",", ":")) + "\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConfigurationError("server closed the connection")
        return line

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()


def _outcome_rows(response: Dict[str, object]) -> List[str]:
    """Digest rows for one sample/sample_batch response."""
    rows: List[str] = []
    if response.get("op") == "sample_batch":
        outcomes = response.get("outcomes")
        if not isinstance(outcomes, list):
            raise ConfigurationError("sample_batch response missing outcomes")
        for outcome in outcomes:
            interval, phase, predicted, freq, degraded, hit = outcome
            rows.append(
                f"{interval}:{phase}:{predicted}:{freq}:"
                f"{int(bool(degraded))}:{'-' if hit is None else int(bool(hit))}"
            )
    else:
        hit = response.get("hit")
        rows.append(
            f"{response['interval']}:{response['phase']}:"
            f"{response['predicted']}:{response['frequency_mhz']}:"
            f"{int(bool(response.get('degraded')))}:"
            f"{'-' if hit is None else int(bool(hit))}"
        )
    return rows


_Rpc = Callable[[Dict[str, object]], Dict[str, object]]


def _verify_checkpoint(
    rpc: _Rpc,
    session_id: str,
    expected_samples: int,
    recoverable: bool = False,
) -> Tuple[int, bool]:
    """Exercise predict/stats/snapshot/restore against a fed session.

    Verify mode is the protocol's executable spec: every wire op must be
    drivable by the generator, and the checkpoint ops carry a semantic
    check — a session restored over the wire must predict exactly what
    the original predicts (losslessness, observed end to end).  Returns
    ``(errors, rolled_back)``; outcome digests are unaffected because
    only sample outcomes are digested.

    With ``recoverable``, a sample count *below* ``expected_samples``
    is not an error: a kill landed inside this epilogue and the
    restarted worker adopted the session from its last checkpoint.  The
    caller replays the tail and runs the epilogue again.
    """
    errors = 0

    def is_rollback(value: object) -> bool:
        return (
            recoverable
            and isinstance(value, int)
            and not isinstance(value, bool)
            and value < expected_samples
        )

    predict = rpc({"op": "predict", "session": session_id})
    if not predict.get("ok"):
        return errors + 1, False

    stats = rpc({"op": "stats", "session": session_id})
    session_stats = stats.get("stats")
    samples = (
        session_stats.get("samples")
        if isinstance(session_stats, dict)
        else None
    )
    if is_rollback(samples):
        return errors, True
    if not stats.get("ok") or samples != expected_samples:
        errors += 1

    snapshot = rpc({"op": "snapshot", "session": session_id})
    if not snapshot.get("ok"):
        return errors + 1, False
    checkpoint = snapshot.get("checkpoint")
    if isinstance(checkpoint, dict) and is_rollback(checkpoint.get("samples")):
        return errors, True

    restore = rpc({"op": "restore", "checkpoint": snapshot["checkpoint"]})
    if not restore.get("ok"):
        return errors + 1, False
    restored_id = restore["session"]
    if restore.get("samples") != expected_samples:
        errors += 1

    twin = rpc({"op": "predict", "session": restored_id})
    if not twin.get("ok") or (
        twin.get("predicted") != predict.get("predicted")
        or twin.get("frequency_mhz") != predict.get("frequency_mhz")
    ):
        errors += 1

    bye = rpc({"op": "bye", "session": restored_id})
    if not bye.get("ok"):
        errors += 1
    return errors, False


def _drive_session(
    conn: _Connection,
    session_index: int,
    samples_per_session: int,
    batch_size: int,
    protocol: int,
    governor: str,
    seed: int,
    verify: bool,
    chaos: Optional[ChaosSchedule] = None,
    policy: Optional[_RecoveryPolicy] = None,
) -> Tuple[int, int, int, str, int, int]:
    """Run one session to completion.

    Returns ``(requests, samples, errors, digest, recoveries,
    replayed)``.  With a recovery policy, ``worker_unavailable`` /
    ``worker_recovering`` answers trigger a resync: poll the session's
    ``stats`` until the restarted worker restores it, then replay the
    series from the restored sample count.  Replayed rows must equal
    the rows already recorded for those intervals — a mismatch counts
    as an error, because it would mean the checkpoint/replay path is
    not lossless.
    """
    requests = 0
    errors = 0
    samples = 0
    recoveries = 0
    replayed = 0
    rows: Dict[int, str] = {}
    series = generate_series(samples_per_session, seed + session_index)

    def call(request: Dict[str, object]) -> Dict[str, object]:
        nonlocal requests
        response = conn.rpc(request)
        requests += 1
        if chaos is not None:
            chaos.note_request()
        return response

    def call_with_recovery(request: Dict[str, object]) -> Dict[str, object]:
        response = call(request)
        if policy is None:
            return response
        attempt = 0
        while (
            not response.get("ok")
            and response.get("error") in _RECOVERABLE_ERRORS
            and attempt < policy.attempts
        ):
            policy.sleep(policy.delay_s)
            attempt += 1
            response = call(request)
        return response

    def resync(session_id: str) -> Optional[int]:
        """Poll until the session answers again; its sample count, or None."""
        assert policy is not None
        for _ in range(policy.attempts):
            response = call({"op": "stats", "session": session_id})
            if response.get("ok"):
                stats = response.get("stats")
                if isinstance(stats, dict):
                    value = stats.get("samples")
                    if isinstance(value, int) and not isinstance(value, bool):
                        return value
                return None
            if response.get("error") not in _RECOVERABLE_ERRORS:
                return None
            policy.sleep(policy.delay_s)
        return None

    response = call_with_recovery(
        {"op": "hello", "protocol": protocol, "governor": governor}
    )
    if not response.get("ok"):
        return requests, samples, errors + 1, "", recoveries, replayed
    session_id = str(response["session"])

    index = 0
    aborted = False
    verified = False
    while True:
        while index < len(series):
            chunk = series[index : index + batch_size]
            if protocol >= 2 and batch_size > 1:
                request: Dict[str, object] = {
                    "op": "sample_batch",
                    "session": session_id,
                    "start_interval": index,
                    "samples": chunk,
                }
            else:
                request = {
                    "op": "sample",
                    "session": session_id,
                    "interval": index,
                    "mem_per_uop": chunk[0],
                }
                chunk = chunk[:1]
            if verify:
                response = call(request)
                if not response.get("ok"):
                    if (
                        policy is not None
                        and response.get("error") in _RECOVERABLE_ERRORS
                    ):
                        resumed = resync(session_id)
                        if resumed is None:
                            errors += 1
                            aborted = True
                            break
                        recoveries += 1
                        replayed += max(0, index - resumed)
                        index = resumed
                        continue
                    errors += 1
                    index += len(chunk)
                    continue
                for offset, row in enumerate(_outcome_rows(response)):
                    interval = index + offset
                    previous = rows.get(interval)
                    if previous is not None and previous != row:
                        # Replay produced a different outcome for an
                        # interval already served — losslessness broken.
                        errors += 1
                    rows[interval] = row
                index += len(chunk)
            else:
                # Throughput mode: the serializer leads with ``ok``, so
                # a prefix check replaces a full JSON parse.
                requests += 1
                if not conn.rpc_raw(request).startswith('{"ok":true'):
                    errors += 1
                    index += len(chunk)
                    continue
                samples += len(chunk)
                index += len(chunk)
        if aborted or policy is None:
            break
        # A kill can land after the last sample but before (or during)
        # the verify epilogue; confirm the server really holds the full
        # series and replay the tail if a restart rolled it back.
        resumed = resync(session_id)
        if resumed is None:
            errors += 1
            aborted = True
            break
        if resumed < len(series):
            recoveries += 1
            replayed += len(series) - resumed
            index = resumed
            continue
        if not verify:
            break
        # Run the epilogue inside the loop: a kill landing *during* it
        # rolls the session back to its last checkpoint, which the
        # epilogue reports as ``rolled_back`` — go around again, where
        # the resync above replays the tail before re-verifying.
        epilogue_errors, rolled_back = _verify_checkpoint(
            call_with_recovery, session_id, len(series), recoverable=True
        )
        if rolled_back:
            continue
        errors += epilogue_errors
        verified = True
        break

    if verify:
        samples = len(rows)

    if verify and not aborted and not verified:
        epilogue_errors, _ = _verify_checkpoint(
            call_with_recovery, session_id, len(series)
        )
        errors += epilogue_errors

    bye_request: Dict[str, object] = {"op": "bye", "session": session_id}
    # After an abandoned recovery the worker is gone for good; don't
    # burn the whole retry budget again on the farewell.
    response = call(bye_request) if aborted else call_with_recovery(bye_request)
    if not response.get("ok"):
        errors += 1

    if verify:
        digest = hashlib.sha256()
        for interval in sorted(rows):
            digest.update(rows[interval].encode("utf-8"))
            digest.update(b"\n")
        hexdigest = digest.hexdigest()
    else:
        hexdigest = ""
    return requests, samples, errors, hexdigest, recoveries, replayed


def run_loadgen(
    host: str,
    port: int,
    *,
    sessions: int = 8,
    samples_per_session: int = 512,
    batch_size: int = 16,
    connections: int = 4,
    protocol: int = PROTOCOL_VERSION,
    governor: str = "gpht",
    seed: int = 0,
    verify: bool = True,
    clock: Clock = DEFAULT_CLOCK,
    chaos: Optional[ChaosSchedule] = None,
    recovery_attempts: int = DEFAULT_RECOVERY_ATTEMPTS,
    recovery_delay_s: float = DEFAULT_RECOVERY_DELAY_S,
    sleep: Callable[[float], None] = DEFAULT_SLEEP,
) -> LoadgenResult:
    """Drive ``host:port`` with a deterministic workload; measure throughput.

    ``connections`` client threads each hold one TCP connection;
    sessions are assigned to connections round-robin and driven to
    completion one after another on their thread.  The outcome digest is
    combined in session-index order, so it is independent of thread
    scheduling, connection count, batch size and server topology.

    With ``verify=False`` the generator runs in pure throughput mode:
    responses get a success prefix check instead of a JSON parse and no
    digest is computed (``outcome_digest`` is empty) — use it when
    measuring server capacity so client-side verification cost does not
    pollute the number.

    With a ``chaos`` schedule (requires verify mode), workers are killed
    at exact request counts and sessions are recovered by resync and
    replay; against a server running with auto-restart and
    checkpointing, the run must finish with zero errors and the *same*
    outcome digest as an undisturbed run — use ``connections=1`` for a
    fully deterministic schedule (see the module docstring for the
    concurrent-connection replay-window caveat).

    Raises:
        ConfigurationError: On invalid parameters (e.g. batching
            requested on protocol v1, or chaos without verify).
    """
    if sessions < 1:
        raise ConfigurationError(f"sessions must be >= 1, got {sessions}")
    if samples_per_session < 1:
        raise ConfigurationError(
            f"samples_per_session must be >= 1, got {samples_per_session}"
        )
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    if connections < 1:
        raise ConfigurationError(
            f"connections must be >= 1, got {connections}"
        )
    if protocol not in SUPPORTED_PROTOCOLS:
        raise ConfigurationError(
            f"protocol must be one of {SUPPORTED_PROTOCOLS}, got {protocol}"
        )
    if protocol < 2 and batch_size > 1:
        raise ConfigurationError(
            "protocol v1 has no sample_batch op; use --batch 1 or --protocol 2"
        )
    if chaos is not None and not verify:
        raise ConfigurationError(
            "chaos schedules require verify mode (replayed outcomes must "
            "be checked against the recorded rows)"
        )
    if recovery_attempts < 1:
        raise ConfigurationError(
            f"recovery_attempts must be >= 1, got {recovery_attempts}"
        )
    if recovery_delay_s < 0:
        raise ConfigurationError(
            f"recovery_delay_s must be >= 0, got {recovery_delay_s}"
        )
    connections = min(connections, sessions)
    policy = (
        _RecoveryPolicy(
            attempts=recovery_attempts, delay_s=recovery_delay_s, sleep=sleep
        )
        if chaos is not None
        else None
    )

    per_session_digests: List[Optional[str]] = [None] * sessions
    totals = [0, 0, 0, 0, 0]  # requests, samples, errors, recoveries, replayed
    totals_lock = threading.Lock()

    def worker(connection_index: int, assigned: Sequence[int]) -> None:
        conn = _Connection(host, port)
        try:
            for session_index in assigned:
                requests, samples, errors, digest, recoveries, replayed = (
                    _drive_session(
                        conn,
                        session_index,
                        samples_per_session,
                        batch_size,
                        protocol,
                        governor,
                        seed,
                        verify,
                        chaos=chaos,
                        policy=policy,
                    )
                )
                per_session_digests[session_index] = digest
                with totals_lock:
                    totals[0] += requests
                    totals[1] += samples
                    totals[2] += errors
                    totals[3] += recoveries
                    totals[4] += replayed
        finally:
            conn.close()

    threads = []
    started = clock()
    for connection_index in range(connections):
        assigned = [
            s for s in range(sessions) if s % connections == connection_index
        ]
        thread = threading.Thread(
            target=worker,
            args=(connection_index, assigned),
            name=f"repro-loadgen-{connection_index}",
        )
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()
    elapsed = clock() - started

    if verify:
        combined = hashlib.sha256()
        for digest in per_session_digests:
            combined.update((digest or "absent").encode("ascii"))
            combined.update(b"\n")
        outcome_digest = combined.hexdigest()
    else:
        outcome_digest = ""
    return LoadgenResult(
        sessions=sessions,
        samples_per_session=samples_per_session,
        batch_size=batch_size,
        connections=connections,
        protocol=protocol,
        requests=totals[0],
        samples=totals[1],
        errors=totals[2],
        elapsed_s=elapsed,
        outcome_digest=outcome_digest,
        recoveries=totals[3],
        replayed_samples=totals[4],
    )
