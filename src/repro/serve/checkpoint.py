"""Versioned session checkpoints: validation and JSON round trip.

A checkpoint is the JSON-able payload produced by
:meth:`repro.serve.session.PhaseSession.snapshot`: the session config,
the predictor's complete mutable state (for the GPHT: GPHR contents and
every PHT entry with its tag, stored prediction and LRU position) and
the scoring/degradation counters.  The format is versioned so an old
server's checkpoint fails loudly on an incompatible reader instead of
silently restoring garbage.

The round trip is *lossless by construction*: every field is a JSON
scalar or a list/object of scalars, and the property tests assert that
``restore(snapshot(s))`` continues bit-for-bit where ``s`` stopped and
that ``snapshot(restore(snapshot(s))) == snapshot(s)``.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.errors import ConfigurationError

#: Current checkpoint format version.  Bump on any incompatible change
#: to the payload layout.
CHECKPOINT_VERSION = 1

#: A checkpoint payload (JSON-able scalars and containers only).
Checkpoint = Dict[str, object]

#: Fields every version-1 checkpoint must carry.
_REQUIRED_FIELDS = ("version", "config", "predictor", "samples")


def validate_checkpoint(payload: Checkpoint) -> None:
    """Structural validation of a checkpoint payload.

    Checks the version and the field skeleton; detailed per-field
    validation happens where each field is consumed (session config,
    predictor state).

    Raises:
        ConfigurationError: On a non-dict payload, a missing field or an
            unsupported version.
    """
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"checkpoint must be a JSON object, got {type(payload).__name__}"
        )
    missing = [key for key in _REQUIRED_FIELDS if key not in payload]
    if missing:
        raise ConfigurationError(
            f"checkpoint is missing required fields: {missing}"
        )
    version = payload["version"]
    if version != CHECKPOINT_VERSION:
        raise ConfigurationError(
            f"unsupported checkpoint version {version!r}; this server "
            f"reads version {CHECKPOINT_VERSION}"
        )
    if not isinstance(payload["config"], dict):
        raise ConfigurationError("checkpoint 'config' must be an object")
    if not isinstance(payload["predictor"], dict):
        raise ConfigurationError("checkpoint 'predictor' must be an object")


def checkpoint_to_json(payload: Checkpoint, indent: int = 0) -> str:
    """Serialize a checkpoint payload to JSON text."""
    if indent:
        return json.dumps(payload, sort_keys=True, indent=indent)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def checkpoint_from_json(text: str) -> Checkpoint:
    """Parse and structurally validate checkpoint JSON.

    Raises:
        ConfigurationError: On invalid JSON or an invalid payload.
    """
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ConfigurationError(f"invalid checkpoint JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ConfigurationError("checkpoint must be a JSON object")
    validate_checkpoint(payload)
    return payload
