"""Versioned session checkpoints: validation and JSON round trip.

A checkpoint is the JSON-able payload produced by
:meth:`repro.serve.session.PhaseSession.snapshot`: the session config,
the predictor's complete mutable state (for the GPHT: GPHR contents and
every PHT entry with its tag, stored prediction and LRU position) and
the scoring/degradation counters.  The format is versioned so an old
server's checkpoint fails loudly on an incompatible reader instead of
silently restoring garbage.

The round trip is *lossless by construction*: every field is a JSON
scalar or a list/object of scalars, and the property tests assert that
``restore(snapshot(s))`` continues bit-for-bit where ``s`` stopped and
that ``snapshot(restore(snapshot(s))) == snapshot(s)``.

:class:`CheckpointStore` makes checkpoints *durable*: one atomically
written JSON file per session id under a shared directory.  It is the
substrate of the sharded server's self-healing — workers persist live
sessions on a request cadence and restore them at (re)boot, so a killed
worker costs clients a bounded replay window instead of their sessions.
"""

from __future__ import annotations

import json
import os
import queue
import threading
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Tuple, Union
from urllib.parse import quote, unquote

from repro.errors import ConfigurationError

#: Current checkpoint format version.  Bump on any incompatible change
#: to the payload layout.
CHECKPOINT_VERSION = 1

#: A checkpoint payload (JSON-able scalars and containers only).
Checkpoint = Dict[str, object]

#: Fields every version-1 checkpoint must carry.
_REQUIRED_FIELDS = ("version", "config", "predictor", "samples")


def validate_checkpoint(payload: Checkpoint) -> None:
    """Structural validation of a checkpoint payload.

    Checks the version and the field skeleton; detailed per-field
    validation happens where each field is consumed (session config,
    predictor state).

    Raises:
        ConfigurationError: On a non-dict payload, a missing field or an
            unsupported version.
    """
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"checkpoint must be a JSON object, got {type(payload).__name__}"
        )
    missing = [key for key in _REQUIRED_FIELDS if key not in payload]
    if missing:
        raise ConfigurationError(
            f"checkpoint is missing required fields: {missing}"
        )
    version = payload["version"]
    if version != CHECKPOINT_VERSION:
        raise ConfigurationError(
            f"unsupported checkpoint version {version!r}; this server "
            f"reads version {CHECKPOINT_VERSION}"
        )
    if not isinstance(payload["config"], dict):
        raise ConfigurationError("checkpoint 'config' must be an object")
    if not isinstance(payload["predictor"], dict):
        raise ConfigurationError("checkpoint 'predictor' must be an object")
    samples = payload["samples"]
    if isinstance(samples, bool) or not isinstance(samples, int):
        raise ConfigurationError(
            "checkpoint 'samples' must be a non-negative integer, "
            f"got {samples!r}"
        )
    if samples < 0:
        raise ConfigurationError(
            f"checkpoint 'samples' must be a non-negative integer, "
            f"got {samples}"
        )


def checkpoint_to_json(payload: Checkpoint, indent: int = 0) -> str:
    """Serialize a checkpoint payload to JSON text."""
    if indent:
        return json.dumps(payload, sort_keys=True, indent=indent)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def checkpoint_from_json(text: str) -> Checkpoint:
    """Parse and structurally validate checkpoint JSON.

    Raises:
        ConfigurationError: On invalid JSON or an invalid payload.
    """
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ConfigurationError(f"invalid checkpoint JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ConfigurationError("checkpoint must be a JSON object")
    validate_checkpoint(payload)
    return payload


#: Suffix of every checkpoint file a :class:`CheckpointStore` manages.
_STORE_SUFFIX = ".ckpt.json"


class StoredCheckpoint(NamedTuple):
    """One durable session checkpoint: id, negotiated protocol, payload."""

    session: str
    protocol: Optional[int]
    checkpoint: Checkpoint


class CheckpointStore:
    """Durable per-session checkpoints: one JSON file per session id.

    The store is the recovery substrate of the sharded server: workers
    persist live sessions here on a request cadence, and a respawned
    worker (or a rebalanced topology) restores them at boot.  Files are
    written atomically — serialize to ``<name>.tmp``, then
    ``os.replace`` — so a crash mid-write can never corrupt the
    previous checkpoint of the same session.

    Writes are offloaded to a single background writer thread by
    default, so the worker's event loop only pays the in-memory
    snapshot cost per checkpoint; the thread preserves per-store
    operation order (a ``save`` queued before a ``delete`` lands
    first).  Pass ``synchronous=True`` (or call :meth:`flush`) when a
    test needs writes to be durable the moment ``save`` returns.  Reads
    (:meth:`load`, :meth:`load_all`) are always synchronous — they only
    happen off the hot path, at worker boot and router recovery.

    Session ids are percent-encoded into file names, so any id the wire
    protocol accepts maps to exactly one flat file under ``root`` and
    can never escape the directory.
    """

    def __init__(
        self, root: Union[str, Path], synchronous: bool = False
    ) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._synchronous = synchronous
        self._queue: "queue.Queue[Optional[Tuple[str, Optional[str]]]]" = (
            queue.Queue()
        )
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        if not synchronous:
            self._thread = threading.Thread(
                target=self._writer_main,
                name="repro-serve-checkpoint-writer",
                daemon=True,
            )
            self._thread.start()

    @property
    def root(self) -> Path:
        """The directory holding the checkpoint files."""
        return self._root

    def _path_for(self, session_id: str) -> Path:
        if not session_id:
            raise ConfigurationError("session id must be a non-empty string")
        return self._root / (quote(session_id, safe="") + _STORE_SUFFIX)

    # -- writes -------------------------------------------------------------

    def save(
        self,
        session_id: str,
        checkpoint: Checkpoint,
        protocol: Optional[int] = None,
    ) -> None:
        """Persist one session's checkpoint (latest wins).

        The payload is validated *before* it is queued, so a malformed
        checkpoint fails loudly at the call site instead of silently in
        the writer thread.
        """
        validate_checkpoint(checkpoint)
        record = json.dumps(
            {
                "session": session_id,
                "protocol": protocol,
                "checkpoint": checkpoint,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        self._submit(session_id, record)

    def delete(self, session_id: str) -> None:
        """Drop a session's checkpoint (no-op when absent)."""
        self._submit(session_id, None)

    def _submit(self, session_id: str, record: Optional[str]) -> None:
        path = self._path_for(session_id)
        if self._synchronous or self._closed:
            self._apply(str(path), record)
        else:
            self._queue.put((str(path), record))

    @staticmethod
    def _apply(path: str, record: Optional[str]) -> None:
        if record is None:
            try:
                os.remove(path)
            except FileNotFoundError:
                pass
        else:
            tmp = path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(record)
            os.replace(tmp, path)

    def _writer_main(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is None:
                    return
                try:
                    self._apply(*item)
                except OSError:  # pragma: no cover - disk-level failure
                    # A failed write must never kill the writer thread:
                    # the previous checkpoint of the session stays valid
                    # (atomic replace) and the next cadence retries.
                    pass
            finally:
                self._queue.task_done()

    def flush(self) -> None:
        """Block until every queued write/delete has hit the disk."""
        if self._thread is not None:
            self._queue.join()

    def close(self) -> None:
        """Drain the writer thread; further writes become synchronous."""
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            self._queue.put(None)
            self._thread.join(timeout=10)
            self._thread = None

    # -- reads --------------------------------------------------------------

    def load(self, session_id: str) -> Optional[StoredCheckpoint]:
        """The latest stored checkpoint for ``session_id``.

        Returns ``None`` when the session has no durable checkpoint.

        Raises:
            ConfigurationError: When the stored file exists but is
                corrupt (truncated write of a non-atomic producer, disk
                damage); recovery paths that prefer to skip corrupt
                entries use :meth:`load_all`.
        """
        path = self._path_for(session_id)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        return self._parse(text)

    def load_all(self) -> List[StoredCheckpoint]:
        """Every stored checkpoint, sorted by session id.

        Corrupt files are skipped (best-effort recovery must not be
        blocked by one damaged entry).
        """
        stored: List[StoredCheckpoint] = []
        for path in sorted(self._root.glob("*" + _STORE_SUFFIX)):
            try:
                stored.append(self._parse(path.read_text(encoding="utf-8")))
            except (OSError, ConfigurationError):
                continue
        stored.sort(key=lambda record: record.session)
        return stored

    def sessions(self) -> Tuple[str, ...]:
        """Ids with a durable checkpoint, sorted (decoded from file names)."""
        return tuple(
            sorted(
                unquote(path.name[: -len(_STORE_SUFFIX)])
                for path in self._root.glob("*" + _STORE_SUFFIX)
            )
        )

    @staticmethod
    def _parse(text: str) -> StoredCheckpoint:
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(
                f"corrupt checkpoint store entry: {exc}"
            ) from None
        if not isinstance(payload, dict):
            raise ConfigurationError(
                "corrupt checkpoint store entry: not an object"
            )
        session = payload.get("session")
        if not isinstance(session, str) or not session:
            raise ConfigurationError(
                "corrupt checkpoint store entry: missing session id"
            )
        protocol = payload.get("protocol")
        if protocol is not None and (
            isinstance(protocol, bool) or not isinstance(protocol, int)
        ):
            raise ConfigurationError(
                "corrupt checkpoint store entry: bad protocol"
            )
        checkpoint = payload.get("checkpoint")
        if not isinstance(checkpoint, dict):
            raise ConfigurationError(
                "corrupt checkpoint store entry: missing checkpoint"
            )
        validate_checkpoint(checkpoint)
        return StoredCheckpoint(session, protocol, checkpoint)
