"""Sharded multi-worker TCP serving: consistent-hash router + workers.

``repro serve tcp --workers N`` scales the single-process asyncio server
out to N worker *processes*.  Each worker runs the ordinary
:func:`repro.serve.frontends.serve_tcp_async` loop with its own
:class:`~repro.serve.manager.SessionManager`; a lightweight asyncio
router accepts client connections, parses just enough of each request
line to find the session id, and forwards the line to the worker that
owns that session's shard.

**Routing rule (the topology contract):** a session id is owned by
worker ``shard_for(session_id, N)`` — a stable CRC-32 hash modulo the
worker count, identical in every process and across runs.  Workers mint
session ids that hash back to themselves
(:func:`mint_shard_session_id`), so session state *never migrates*:
every request that names a session lands on the worker holding its
predictor.  Requests that name no session (``hello``, ``restore``) are
placed round-robin; the worker's self-hashing id then pins all
follow-up traffic.

**Capacity:** per-worker session ceilings are carved out of the global
``max_sessions`` (:func:`worker_ceilings`), summing exactly to it.

**Failure semantics:** when a worker dies, requests routed to its shard
answer the stable error code ``worker_unavailable`` (and a
``worker_died`` trace event is emitted once per failure); sessions on
other shards are unaffected.  The session-less ``stats`` op fans out to
every live worker and answers the aggregated view
(:func:`aggregate_stats`).
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import multiprocessing.connection
import multiprocessing.process
import re
import threading
import zlib
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.errors import ConfigurationError, ReproError
from repro.obs.events import WorkerDied
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.serve.frontends import (
    DEFAULT_CLOCK,
    DEFAULT_QUEUE_DEPTH,
    relay_lines,
    serve_tcp_async,
)
from repro.serve.manager import DEFAULT_MAX_SESSIONS, SessionManager
from repro.serve.protocol import (
    error_response,
    parse_response,
    serialize_response,
)
from repro.serve.session import Payload

#: How long ``start()`` waits for every worker to report its port and
#: for the router to bind, before giving up.
DEFAULT_START_TIMEOUT_S = 30.0

_MetricValue = Union[str, float]
_MetricsSnapshot = Mapping[str, Mapping[str, object]]

#: Fast-path extraction of a top-level ``"session"`` value.  Only
#: applied when the line contains exactly one ``"session"`` key and the
#: value matches a server-minted id (``s<seq>`` or ``s<seq>x<k>``), so a
#: crafted string value elsewhere in the request cannot misroute it.
_SESSION_RE = re.compile(r'"session"\s*:\s*"(s[0-9]+(?:x[0-9]+)?)"')


def shard_for(session_id: str, workers: int) -> int:
    """The worker index owning ``session_id``: stable hash mod workers.

    CRC-32 is used instead of the builtin ``hash`` so the mapping is
    identical in every process (``PYTHONHASHSEED``-independent) and
    across runs — the router and all workers must agree forever.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return zlib.crc32(session_id.encode("utf-8")) % workers


def mint_shard_session_id(seq: int, shard: int, workers: int) -> str:
    """Mint the ``seq``-th session id that consistent-hashes to ``shard``.

    Tries ``s{seq}`` first (so single-worker deployments keep the
    familiar ``s1``, ``s2``, ... ids) and then deterministic suffixed
    candidates until one hashes home.  Expected tries ≈ ``workers``, so
    this is trivially cheap at session-open time.
    """
    if not 0 <= shard < workers:
        raise ConfigurationError(
            f"shard must be in [0, {workers}), got {shard}"
        )
    candidate = f"s{seq}"
    suffix = 0
    while shard_for(candidate, workers) != shard:
        suffix += 1
        candidate = f"s{seq}x{suffix}"
    return candidate


def worker_ceilings(max_sessions: int, workers: int) -> List[int]:
    """Per-worker session ceilings summing exactly to ``max_sessions``."""
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if max_sessions < workers:
        raise ConfigurationError(
            f"max_sessions ({max_sessions}) must be >= workers ({workers}) "
            "so every shard can hold at least one session"
        )
    base, extra = divmod(max_sessions, workers)
    return [base + (1 if index < extra else 0) for index in range(workers)]


def merge_metrics(
    snapshots: Sequence[_MetricsSnapshot],
) -> Dict[str, Dict[str, _MetricValue]]:
    """Merge per-worker ``MetricsRegistry.to_dict()`` snapshots.

    Counters and gauges sum (the serve gauges — e.g. active sessions —
    are population sizes, so summation is the aggregate view);
    histograms pool count/total/min/max and recompute the mean.
    """
    merged: Dict[str, Dict[str, _MetricValue]] = {}
    for snapshot in snapshots:
        for name, payload in snapshot.items():
            kind = payload.get("kind")
            if not isinstance(kind, str):
                raise ConfigurationError(
                    f"metric {name!r} snapshot is missing its kind"
                )
            existing = merged.get(name)
            if existing is not None and existing["kind"] != kind:
                raise ConfigurationError(
                    f"metric {name!r} has conflicting kinds across workers: "
                    f"{existing['kind']!r} vs {kind!r}"
                )
            if kind in ("counter", "gauge"):
                value = _metric_number(name, payload, "value")
                if existing is None:
                    merged[name] = {"kind": kind, "value": value}
                else:
                    existing["value"] = _as_number(existing["value"]) + value
            elif kind == "histogram":
                count = _metric_number(name, payload, "count")
                total = _metric_number(name, payload, "total")
                low = _metric_number(name, payload, "min")
                high = _metric_number(name, payload, "max")
                if existing is None:
                    merged[name] = {
                        "kind": "histogram",
                        "count": count,
                        "total": total,
                        "min": low,
                        "max": high,
                        "mean": (total / count) if count else 0.0,
                    }
                else:
                    old_count = _as_number(existing["count"])
                    new_count = old_count + count
                    new_total = _as_number(existing["total"]) + total
                    existing["count"] = new_count
                    existing["total"] = new_total
                    if count:
                        # An empty snapshot reports min/max as 0.0
                        # (to_dict); only real observations participate.
                        if old_count:
                            existing["min"] = min(
                                _as_number(existing["min"]), low
                            )
                            existing["max"] = max(
                                _as_number(existing["max"]), high
                            )
                        else:
                            existing["min"] = low
                            existing["max"] = high
                    existing["mean"] = (
                        new_total / new_count if new_count else 0.0
                    )
            else:
                raise ConfigurationError(
                    f"metric {name!r} has unknown kind {kind!r}"
                )
    return dict(sorted(merged.items()))


def _as_number(value: _MetricValue) -> float:
    assert isinstance(value, float)  # merged values are always numeric
    return value


def _metric_number(name: str, payload: Mapping[str, object], key: str) -> float:
    value = payload.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"metric {name!r} field {key!r} must be a number, got {value!r}"
        )
    return float(value)


def aggregate_stats(
    per_worker: Sequence[Optional[Mapping[str, object]]],
) -> Payload:
    """Fan-in per-worker ``stats`` payloads into the cluster view.

    ``None`` entries mark workers that did not answer (dead); their
    slot still appears in ``per_worker`` so clients can see the
    topology.  Summable fields sum; metrics merge via
    :func:`merge_metrics`.
    """
    sessions_active = 0
    max_sessions = 0
    requests = 0
    idle_timeout_s: Optional[float] = None
    snapshots: List[_MetricsSnapshot] = []
    for stats in per_worker:
        if stats is None:
            continue
        sessions_active += int(_stats_number(stats, "sessions_active"))
        max_sessions += int(_stats_number(stats, "max_sessions"))
        requests += int(_stats_number(stats, "requests"))
        if idle_timeout_s is None:
            timeout = stats.get("idle_timeout_s")
            if isinstance(timeout, (int, float)) and not isinstance(
                timeout, bool
            ):
                idle_timeout_s = float(timeout)
        metrics = stats.get("metrics")
        if isinstance(metrics, dict):
            snapshots.append(metrics)
    return {
        "workers": len(per_worker),
        "workers_alive": sum(1 for stats in per_worker if stats is not None),
        "sessions_active": sessions_active,
        "max_sessions": max_sessions,
        "requests": requests,
        "idle_timeout_s": idle_timeout_s,
        "per_worker": [
            dict(stats) if stats is not None else None for stats in per_worker
        ],
        "metrics": merge_metrics(snapshots),
    }


def _stats_number(stats: Mapping[str, object], key: str) -> float:
    value = stats.get(key, 0)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return 0.0
    return float(value)


def _worker_main(
    index: int,
    workers: int,
    host: str,
    port_conn: "multiprocessing.connection.Connection",
    max_sessions: int,
    idle_timeout_s: Optional[float],
    queue_depth: int,
) -> None:
    """Worker-process entry: one ordinary TCP server on its own port.

    Binds an ephemeral port, reports it to the parent through the pipe,
    then serves until terminated.  The id minter guarantees every
    session this worker opens hashes back to ``index``, which is the
    whole sharding invariant.
    """
    manager = SessionManager(
        max_sessions=max_sessions,
        idle_timeout_s=idle_timeout_s,
        clock=DEFAULT_CLOCK,
        id_minter=lambda seq: mint_shard_session_id(seq, index, workers),
    )

    async def _run() -> None:
        loop = asyncio.get_running_loop()
        ready: "asyncio.Future[int]" = loop.create_future()
        server_task = asyncio.ensure_future(
            serve_tcp_async(
                manager,
                host=host,
                port=0,
                queue_depth=queue_depth,
                ready=ready,
            )
        )
        port = await ready
        port_conn.send(port)
        port_conn.close()
        await server_task

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        pass


class ShardedServer:
    """N worker processes behind a consistent-hash line router.

    The router runs an asyncio loop on a background thread, so
    :meth:`start`/:meth:`stop` compose with synchronous callers (the
    CLI, tests, the load generator).  Worker processes are spawned via
    :mod:`multiprocessing`; each reports its ephemeral port back through
    a pipe before the router accepts its first client.

    Args:
        workers: Number of worker processes (shards).
        host: Bind address for the router and the workers.
        port: Router port (``0`` picks a free one; :meth:`start` returns
            the bound port).
        max_sessions: *Global* session ceiling, carved into per-worker
            ceilings that sum to it.
        idle_timeout_s: Per-worker idle eviction timeout.
        queue_depth: Per-connection request-queue depth (workers and
            router alike).
        tracer: Trace collector for ``worker_died`` events.
        metrics: Router-side metrics registry (requests routed, worker
            failures); a private one is created when omitted.
    """

    def __init__(
        self,
        workers: int,
        host: str = "127.0.0.1",
        port: int = 0,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        idle_timeout_s: Optional[float] = None,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        tracer: Tracer = NULL_TRACER,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._ceilings = worker_ceilings(max_sessions, workers)
        self._workers = workers
        self._host = host
        self._port = port
        self._idle_timeout_s = idle_timeout_s
        self._queue_depth = queue_depth
        self._tracer = tracer
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._procs: List[multiprocessing.process.BaseProcess] = []
        self._worker_ports: List[int] = []
        self._dead: Set[int] = set()
        self._round_robin = 0
        self._requests = 0
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._router_port: Optional[int] = None
        self._client_tasks: Set["asyncio.Task[None]"] = set()

    # -- lifecycle ----------------------------------------------------------

    @property
    def workers(self) -> int:
        """Number of shards."""
        return self._workers

    @property
    def router_port(self) -> Optional[int]:
        """The router's bound port (``None`` before :meth:`start`)."""
        return self._router_port

    @property
    def worker_ports(self) -> Tuple[int, ...]:
        """Each worker's bound port, by shard index."""
        return tuple(self._worker_ports)

    @property
    def metrics(self) -> MetricsRegistry:
        """Router-side metrics (requests routed, worker failures)."""
        return self._metrics

    def start(self, timeout: float = DEFAULT_START_TIMEOUT_S) -> int:
        """Spawn the workers, start the router; returns the router port.

        Raises:
            ReproError: When a worker fails to report its port or the
                router fails to bind within ``timeout``.
        """
        if self._thread is not None:
            raise ReproError("sharded server already started")
        context = multiprocessing.get_context()
        pipes = []
        for index in range(self._workers):
            parent_conn, child_conn = context.Pipe(duplex=False)
            process = context.Process(
                target=_worker_main,
                args=(
                    index,
                    self._workers,
                    self._host,
                    child_conn,
                    self._ceilings[index],
                    self._idle_timeout_s,
                    self._queue_depth,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._procs.append(process)
            pipes.append(parent_conn)
        for index, parent_conn in enumerate(pipes):
            if not parent_conn.poll(timeout):
                self.stop()
                raise ReproError(
                    f"worker {index} did not report its port within "
                    f"{timeout:.0f}s"
                )
            self._worker_ports.append(int(parent_conn.recv()))
            parent_conn.close()
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve-router", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            self.stop()
            raise ReproError(
                f"router did not start within {timeout:.0f}s"
            )
        assert self._router_port is not None
        return self._router_port

    def stop(self) -> None:
        """Stop the router and terminate every worker process."""
        loop = self._loop
        shutdown = self._shutdown
        if loop is not None and shutdown is not None:
            try:
                loop.call_soon_threadsafe(shutdown.set)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout=10)
        for process in self._procs:
            if process.is_alive():
                process.terminate()
        for process in self._procs:
            process.join(timeout=10)

    def kill_worker(self, index: int) -> None:
        """Terminate one worker (failure-injection hook for tests)."""
        if not 0 <= index < len(self._procs):
            raise ConfigurationError(
                f"no worker {index}; have {len(self._procs)}"
            )
        process = self._procs[index]
        if process.is_alive():
            process.terminate()
        process.join(timeout=10)

    # -- router -------------------------------------------------------------

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._router_main())
        except Exception:  # pragma: no cover - surfaced via start() timeout
            self._started.set()

    async def _router_main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        server = await asyncio.start_server(
            self._on_client, host=self._host, port=self._port
        )
        sockets = server.sockets or []
        if sockets:
            self._router_port = int(sockets[0].getsockname()[1])
        self._started.set()
        async with server:
            await self._shutdown.wait()
        for task in list(self._client_tasks):
            task.cancel()
        if self._client_tasks:
            await asyncio.gather(
                *self._client_tasks, return_exceptions=True
            )

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
        # One lazily opened upstream connection per worker *per client*,
        # so each client's responses stay strictly in request order.
        links: Dict[int, Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = {}

        async def answer(line: str) -> str:
            return await self._route(line, links)

        try:
            await relay_lines(reader, writer, answer, self._queue_depth)
        except asyncio.CancelledError:
            pass
        finally:
            for _, upstream_writer in links.values():
                upstream_writer.close()
            if task is not None:
                self._client_tasks.discard(task)

    async def _route(
        self,
        line: str,
        links: Dict[int, Tuple[asyncio.StreamReader, asyncio.StreamWriter]],
    ) -> str:
        """Pick the shard for one request line and forward it."""
        self._requests += 1
        self._metrics.counter("serve.router_requests").inc()
        # Fast path for the hot ops: a ``sample_batch`` line is mostly a
        # float array the router has no business parsing — when exactly
        # one ``"session"`` key appears and the value looks like a
        # server-minted id, routing needs only that.  Anything ambiguous
        # (no session, several occurrences, weird ids, ``stats``) takes
        # the full-parse path below.
        if line.count('"session"') == 1 and '"op":"stats"' not in line:
            match = _SESSION_RE.search(line)
            if match is not None:
                return await self._forward(
                    shard_for(match.group(1), self._workers), line, links
                )
        try:
            payload = json.loads(line)
        except ValueError as exc:
            return serialize_response(
                error_response("bad_request", f"invalid JSON: {exc}")
            )
        if not isinstance(payload, dict):
            return serialize_response(
                error_response("bad_request", "request must be a JSON object")
            )
        session = payload.get("session")
        if payload.get("op") == "stats" and "session" not in payload:
            return await self._aggregate_stats(links)
        if isinstance(session, str):
            target = shard_for(session, self._workers)
        else:
            # hello/restore (and anything session-less): balanced
            # placement; the worker's self-hashing id pins the session.
            target = self._round_robin
            self._round_robin = (self._round_robin + 1) % self._workers
        return await self._forward(target, line, links)

    async def _forward(
        self,
        worker: int,
        line: str,
        links: Dict[int, Tuple[asyncio.StreamReader, asyncio.StreamWriter]],
    ) -> str:
        if not self._procs[worker].is_alive():
            self._note_worker_down(worker, "process is not running")
            return self._unavailable(worker)
        try:
            link = links.get(worker)
            if link is None:
                link = await asyncio.open_connection(
                    self._host, self._worker_ports[worker]
                )
                links[worker] = link
            upstream_reader, upstream_writer = link
            upstream_writer.write((line + "\n").encode("utf-8"))
            await upstream_writer.drain()
            raw = await upstream_reader.readline()
            if not raw:
                raise ConnectionError("worker closed the connection")
            return raw.decode("utf-8", errors="replace").rstrip("\n")
        except (ConnectionError, OSError) as exc:
            stale = links.pop(worker, None)
            if stale is not None:
                stale[1].close()
            self._note_worker_down(worker, str(exc))
            return self._unavailable(worker)

    def _unavailable(self, worker: int) -> str:
        response = error_response(
            "worker_unavailable",
            f"worker {worker} serving this shard is unavailable; "
            "sessions on other shards are unaffected",
        )
        response["worker"] = worker
        return serialize_response(response)

    def _note_worker_down(self, worker: int, reason: str) -> None:
        self._metrics.counter("serve.worker_unavailable").inc()
        if worker in self._dead:
            return
        self._dead.add(worker)
        self._metrics.counter("serve.workers_died").inc()
        if self._tracer.enabled:
            self._tracer.emit(
                WorkerDied(
                    interval=self._requests, worker=worker, reason=reason
                )
            )

    async def _aggregate_stats(
        self,
        links: Dict[int, Tuple[asyncio.StreamReader, asyncio.StreamWriter]],
    ) -> str:
        per_worker: List[Optional[Mapping[str, object]]] = []
        stats_line = serialize_response({"op": "stats"})
        for worker in range(self._workers):
            answer = await self._forward(worker, stats_line, links)
            try:
                ok, payload = parse_response(answer)
            except ConfigurationError:
                ok, payload = False, {}
            stats = payload.get("stats") if ok else None
            per_worker.append(stats if isinstance(stats, dict) else None)
        return serialize_response(
            {"ok": True, "op": "stats", "stats": aggregate_stats(per_worker)}
        )


def run_sharded(
    workers: int,
    host: str = "127.0.0.1",
    port: int = 8472,
    max_sessions: int = DEFAULT_MAX_SESSIONS,
    idle_timeout_s: Optional[float] = None,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
) -> None:
    """Blocking entry point for ``repro serve tcp --workers N``.

    Starts the sharded server and parks until interrupted.
    """
    server = ShardedServer(
        workers=workers,
        host=host,
        port=port,
        max_sessions=max_sessions,
        idle_timeout_s=idle_timeout_s,
        queue_depth=queue_depth,
    )
    server.start()
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
