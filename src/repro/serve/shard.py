"""Sharded multi-worker TCP serving: consistent-hash router + workers.

``repro serve tcp --workers N`` scales the single-process asyncio server
out to N worker *processes*.  Each worker runs the ordinary
:func:`repro.serve.frontends.serve_tcp_async` loop with its own
:class:`~repro.serve.manager.SessionManager`; a lightweight asyncio
router accepts client connections, parses just enough of each request
line to find the session id, and forwards the line to the worker that
owns that session's shard.

**Routing rule (the topology contract):** a session id is owned by
worker ``shard_for(session_id, N)`` — a stable CRC-32 hash modulo the
worker count, identical in every process and across runs.  Workers mint
session ids that hash back to themselves
(:func:`mint_shard_session_id`), so every request that names a session
lands on the worker holding its predictor.  Requests that name no
session (``hello``, ``restore``) are placed round-robin over the *live*
workers; the worker's self-hashing id then pins all follow-up traffic.
The router additionally keeps a small override table for sessions moved
off their hash home by ``migrate``.

**Capacity:** per-worker session ceilings are carved out of the global
``max_sessions`` (:func:`worker_ceilings`), summing exactly to it.

**Failure semantics and self-healing:** with ``checkpoint_every > 0``
every worker persists its live sessions to a shared
:class:`~repro.serve.checkpoint.CheckpointStore` on a sample cadence.
When a worker dies:

* without ``auto_restart``, requests routed to its shard answer the
  stable error code ``worker_unavailable`` (one ``worker_died`` trace
  event per failure); sessions on other shards are unaffected;
* with ``auto_restart``, the router respawns the process in the
  background — requests meanwhile answer ``worker_recovering`` — and
  the replacement restores the shard's sessions from their latest
  checkpoints at boot (``worker_restarted`` event).  Clients then
  replay at most one checkpoint cadence of samples per session instead
  of losing the session.

**Migration:** the router-level ``migrate`` op moves a live session to
another worker losslessly via drain–snapshot–restore: new traffic for
the session is gated, in-flight requests drain, the source worker
snapshots, the target restores under the same id (and protocol), and
the source closes the original with the reserved ``migrated`` reason so
the durable checkpoint changes owner instead of being deleted.

The session-less ``stats`` op fans out to every live worker and answers
the aggregated view (:func:`aggregate_stats`), including how many
workers are mid-restart.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import multiprocessing.connection
import multiprocessing.process
import re
import shutil
import tempfile
import threading
import zlib
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.errors import ConfigurationError, ReproError
from repro.obs.events import SessionMigrated, WorkerDied, WorkerRestarted
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.serve.checkpoint import CheckpointStore
from repro.serve.frontends import (
    DEFAULT_CLOCK,
    DEFAULT_QUEUE_DEPTH,
    relay_lines,
    serve_tcp_async,
)
from repro.serve.manager import (
    DEFAULT_MAX_SESSIONS,
    MIGRATED_CLOSE_REASON,
    SessionManager,
)
from repro.serve.protocol import (
    error_response,
    parse_response,
    serialize_response,
)
from repro.serve.session import Payload

#: How long ``start()`` waits for every worker to report its port and
#: for the router to bind, before giving up.
DEFAULT_START_TIMEOUT_S = 30.0

#: Checkpoint cadence (samples between durable checkpoints) used when
#: ``auto_restart`` is requested without an explicit ``checkpoint_every``
#: — auto-restart without checkpoints would recover empty workers.
DEFAULT_CHECKPOINT_EVERY = 32

_MetricValue = Union[str, float]
_MetricsSnapshot = Mapping[str, Mapping[str, object]]
_Link = Tuple[asyncio.StreamReader, asyncio.StreamWriter]

#: Fast-path extraction of a top-level ``"session"`` value.  Only
#: applied when the line contains exactly one ``"session"`` key and the
#: value matches a server-minted id (``s<seq>`` or ``s<seq>x<k>``), so a
#: crafted string value elsewhere in the request cannot misroute it.
_SESSION_RE = re.compile(r'"session"\s*:\s*"(s[0-9]+(?:x[0-9]+)?)"')

#: Ops the router must handle itself (cluster ``stats`` fan-out,
#: ``migrate``); lines that may carry one of these never take the
#: forward fast path.  A false positive (the text appearing inside a
#: string value) only costs a full parse, never a misroute.
_ROUTER_OP_RE = re.compile(r'"op"\s*:\s*"(?:stats|migrate)"')


def shard_for(session_id: str, workers: int) -> int:
    """The worker index owning ``session_id``: stable hash mod workers.

    CRC-32 is used instead of the builtin ``hash`` so the mapping is
    identical in every process (``PYTHONHASHSEED``-independent) and
    across runs — the router and all workers must agree forever.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return zlib.crc32(session_id.encode("utf-8")) % workers


def mint_shard_session_id(seq: int, shard: int, workers: int) -> str:
    """Mint the ``seq``-th session id that consistent-hashes to ``shard``.

    Tries ``s{seq}`` first (so single-worker deployments keep the
    familiar ``s1``, ``s2``, ... ids) and then deterministic suffixed
    candidates until one hashes home.  Expected tries ≈ ``workers``, so
    this is trivially cheap at session-open time.
    """
    if not 0 <= shard < workers:
        raise ConfigurationError(
            f"shard must be in [0, {workers}), got {shard}"
        )
    candidate = f"s{seq}"
    suffix = 0
    while shard_for(candidate, workers) != shard:
        suffix += 1
        candidate = f"s{seq}x{suffix}"
    return candidate


def worker_ceilings(max_sessions: int, workers: int) -> List[int]:
    """Per-worker session ceilings summing exactly to ``max_sessions``."""
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if max_sessions < workers:
        raise ConfigurationError(
            f"max_sessions ({max_sessions}) must be >= workers ({workers}) "
            "so every shard can hold at least one session"
        )
    base, extra = divmod(max_sessions, workers)
    return [base + (1 if index < extra else 0) for index in range(workers)]


def merge_metrics(
    snapshots: Sequence[_MetricsSnapshot],
) -> Dict[str, Dict[str, _MetricValue]]:
    """Merge per-worker ``MetricsRegistry.to_dict()`` snapshots.

    Counters and gauges sum (the serve gauges — e.g. active sessions —
    are population sizes, so summation is the aggregate view);
    histograms pool count/total/min/max and recompute the mean.
    """
    merged: Dict[str, Dict[str, _MetricValue]] = {}
    for snapshot in snapshots:
        for name, payload in snapshot.items():
            kind = payload.get("kind")
            if not isinstance(kind, str):
                raise ConfigurationError(
                    f"metric {name!r} snapshot is missing its kind"
                )
            existing = merged.get(name)
            if existing is not None and existing["kind"] != kind:
                raise ConfigurationError(
                    f"metric {name!r} has conflicting kinds across workers: "
                    f"{existing['kind']!r} vs {kind!r}"
                )
            if kind in ("counter", "gauge"):
                value = _metric_number(name, payload, "value")
                if existing is None:
                    merged[name] = {"kind": kind, "value": value}
                else:
                    existing["value"] = _as_number(existing["value"]) + value
            elif kind == "histogram":
                count = _metric_number(name, payload, "count")
                total = _metric_number(name, payload, "total")
                low = _metric_number(name, payload, "min")
                high = _metric_number(name, payload, "max")
                if existing is None:
                    merged[name] = {
                        "kind": "histogram",
                        "count": count,
                        "total": total,
                        "min": low,
                        "max": high,
                        "mean": (total / count) if count else 0.0,
                    }
                else:
                    old_count = _as_number(existing["count"])
                    new_count = old_count + count
                    new_total = _as_number(existing["total"]) + total
                    existing["count"] = new_count
                    existing["total"] = new_total
                    if count:
                        # An empty snapshot reports min/max as 0.0
                        # (to_dict); only real observations participate.
                        if old_count:
                            existing["min"] = min(
                                _as_number(existing["min"]), low
                            )
                            existing["max"] = max(
                                _as_number(existing["max"]), high
                            )
                        else:
                            existing["min"] = low
                            existing["max"] = high
                    existing["mean"] = (
                        new_total / new_count if new_count else 0.0
                    )
            else:
                raise ConfigurationError(
                    f"metric {name!r} has unknown kind {kind!r}"
                )
    return dict(sorted(merged.items()))


def _as_number(value: _MetricValue) -> float:
    assert isinstance(value, float)  # merged values are always numeric
    return value


def _metric_number(name: str, payload: Mapping[str, object], key: str) -> float:
    value = payload.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"metric {name!r} field {key!r} must be a number, got {value!r}"
        )
    return float(value)


def aggregate_stats(
    per_worker: Sequence[Optional[Mapping[str, object]]],
    recovering: Sequence[int] = (),
) -> Payload:
    """Fan-in per-worker ``stats`` payloads into the cluster view.

    ``None`` entries mark workers that did not answer (dead, or still
    restarting); their slot still appears in ``per_worker`` so clients
    can see the topology.  ``recovering`` names the worker indices the
    router is currently respawning — mid-restart the cluster view stays
    well-formed: the recovering slot is ``None``, ``workers_alive``
    excludes it and ``workers_recovering`` counts it.  Summable fields
    sum; metrics merge via :func:`merge_metrics`.
    """
    sessions_active = 0
    max_sessions = 0
    requests = 0
    idle_timeout_s: Optional[float] = None
    snapshots: List[_MetricsSnapshot] = []
    for stats in per_worker:
        if stats is None:
            continue
        sessions_active += int(_stats_number(stats, "sessions_active"))
        max_sessions += int(_stats_number(stats, "max_sessions"))
        requests += int(_stats_number(stats, "requests"))
        if idle_timeout_s is None:
            timeout = stats.get("idle_timeout_s")
            if isinstance(timeout, (int, float)) and not isinstance(
                timeout, bool
            ):
                idle_timeout_s = float(timeout)
        metrics = stats.get("metrics")
        if isinstance(metrics, dict):
            snapshots.append(metrics)
    recovering_set = {
        index for index in recovering if 0 <= index < len(per_worker)
    }
    return {
        "workers": len(per_worker),
        "workers_alive": sum(1 for stats in per_worker if stats is not None),
        "workers_recovering": len(recovering_set),
        "sessions_active": sessions_active,
        "max_sessions": max_sessions,
        "requests": requests,
        "idle_timeout_s": idle_timeout_s,
        "per_worker": [
            dict(stats) if stats is not None else None for stats in per_worker
        ],
        "metrics": merge_metrics(snapshots),
    }


def _stats_number(stats: Mapping[str, object], key: str) -> float:
    value = stats.get(key, 0)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return 0.0
    return float(value)


def _adopt_shard_sessions(
    manager: SessionManager,
    store: CheckpointStore,
    index: int,
    workers: int,
    overrides: Mapping[str, int],
) -> int:
    """Restore this shard's sessions from the checkpoint store at boot.

    A stored session belongs to this worker when the router's override
    table (sessions moved by ``migrate``) or, failing that, the
    consistent hash says so.  Restoring by hash is also what rebalances
    sessions automatically when ``--workers`` changes between runs over
    the same checkpoint directory.  Adoption is best-effort per
    session: a checkpoint this build cannot read, or one past the
    ceiling, is skipped rather than blocking worker boot.
    """
    restored = 0
    for record in store.load_all():
        owner = overrides.get(record.session)
        if owner is None:
            owner = shard_for(record.session, workers)
        if owner != index:
            continue
        try:
            manager.restore_as(record.session, record.checkpoint, record.protocol)
        except ReproError:
            continue
        restored += 1
    return restored


def _worker_main(
    index: int,
    workers: int,
    host: str,
    port_conn: "multiprocessing.connection.Connection",
    max_sessions: int,
    idle_timeout_s: Optional[float],
    queue_depth: int,
    checkpoint_dir: Optional[str],
    checkpoint_every: int,
    overrides: Dict[str, int],
) -> None:
    """Worker-process entry: one ordinary TCP server on its own port.

    Restores its shard's sessions from the checkpoint store (when
    configured), binds an ephemeral port, reports ``(port,
    sessions_restored)`` to the parent through the pipe, then serves
    until terminated.  The id minter guarantees every session this
    worker opens hashes back to ``index``, which is the whole sharding
    invariant.
    """
    store = (
        CheckpointStore(checkpoint_dir) if checkpoint_dir is not None else None
    )
    manager = SessionManager(
        max_sessions=max_sessions,
        idle_timeout_s=idle_timeout_s,
        clock=DEFAULT_CLOCK,
        id_minter=lambda seq: mint_shard_session_id(seq, index, workers),
        checkpoint_store=store,
        checkpoint_every=checkpoint_every,
    )
    restored = 0
    if store is not None:
        restored = _adopt_shard_sessions(
            manager, store, index, workers, overrides
        )

    async def _run() -> None:
        loop = asyncio.get_running_loop()
        ready: "asyncio.Future[int]" = loop.create_future()
        server_task = asyncio.ensure_future(
            serve_tcp_async(
                manager,
                host=host,
                port=0,
                queue_depth=queue_depth,
                ready=ready,
            )
        )
        port = await ready
        port_conn.send((port, restored))
        port_conn.close()
        await server_task

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        pass


class ShardedServer:
    """N worker processes behind a consistent-hash line router.

    The router runs an asyncio loop on a background thread, so
    :meth:`start`/:meth:`stop` compose with synchronous callers (the
    CLI, tests, the load generator).  Worker processes are spawned via
    :mod:`multiprocessing`; each reports its ephemeral port back through
    a pipe before the router accepts its first client.

    Args:
        workers: Number of worker processes (shards).
        host: Bind address for the router and the workers.
        port: Router port (``0`` picks a free one; :meth:`start` returns
            the bound port).
        max_sessions: *Global* session ceiling, carved into per-worker
            ceilings that sum to it.
        idle_timeout_s: Per-worker idle eviction timeout.
        queue_depth: Per-connection request-queue depth (workers and
            router alike).
        tracer: Trace collector for worker lifecycle and migration
            events.
        metrics: Router-side metrics registry (requests routed, worker
            failures, restarts, migrations); a private one is created
            when omitted.
        checkpoint_every: Durable-checkpoint cadence in samples per
            session; ``0`` disables checkpointing (unless
            ``auto_restart`` forces :data:`DEFAULT_CHECKPOINT_EVERY`).
        checkpoint_dir: Directory for the shared checkpoint store.
            ``None`` with checkpointing enabled uses a private temporary
            directory removed on :meth:`stop`; pass an explicit path to
            keep checkpoints across runs (sessions then rebalance onto
            the new topology at the next :meth:`start`).
        auto_restart: Respawn dead workers in the background and restore
            their shard's sessions from the checkpoint store.
    """

    def __init__(
        self,
        workers: int,
        host: str = "127.0.0.1",
        port: int = 0,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        idle_timeout_s: Optional[float] = None,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        tracer: Tracer = NULL_TRACER,
        metrics: Optional[MetricsRegistry] = None,
        checkpoint_every: int = 0,
        checkpoint_dir: Optional[str] = None,
        auto_restart: bool = False,
    ) -> None:
        if checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if auto_restart and checkpoint_every == 0:
            checkpoint_every = DEFAULT_CHECKPOINT_EVERY
        self._ceilings = worker_ceilings(max_sessions, workers)
        self._workers = workers
        self._host = host
        self._port = port
        self._idle_timeout_s = idle_timeout_s
        self._queue_depth = queue_depth
        self._tracer = tracer
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._checkpoint_every = checkpoint_every
        self._checkpoint_dir = checkpoint_dir
        self._auto_restart = auto_restart
        self._checkpoint_path: Optional[str] = None
        self._owns_checkpoint_dir = False
        self._procs: List[multiprocessing.process.BaseProcess] = []
        self._worker_ports: List[int] = []
        self._dead: Set[int] = set()
        self._recovering: Set[int] = set()
        self._overrides: Dict[str, int] = {}
        self._round_robin = 0
        self._requests = 0
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._stopping = False
        self._start_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._router_port: Optional[int] = None
        self._client_tasks: Set["asyncio.Task[None]"] = set()
        self._restart_tasks: Set["asyncio.Task[None]"] = set()
        self._migrating: Dict[str, asyncio.Event] = {}
        self._inflight: Dict[str, int] = {}
        self._drain_events: Dict[str, asyncio.Event] = {}

    # -- lifecycle ----------------------------------------------------------

    @property
    def workers(self) -> int:
        """Number of shards."""
        return self._workers

    @property
    def router_port(self) -> Optional[int]:
        """The router's bound port (``None`` before :meth:`start`)."""
        return self._router_port

    @property
    def worker_ports(self) -> Tuple[int, ...]:
        """Each worker's bound port, by shard index."""
        return tuple(self._worker_ports)

    @property
    def metrics(self) -> MetricsRegistry:
        """Router-side metrics (requests routed, worker failures)."""
        return self._metrics

    @property
    def checkpoint_path(self) -> Optional[str]:
        """The active checkpoint directory (``None`` when disabled)."""
        return self._checkpoint_path

    def _worker_args(
        self, index: int, overrides: Dict[str, int]
    ) -> Tuple[object, ...]:
        return (
            index,
            self._workers,
            self._host,
            None,  # placeholder: the pipe end is appended by the caller
            self._ceilings[index],
            self._idle_timeout_s,
            self._queue_depth,
            self._checkpoint_path,
            self._checkpoint_every,
            overrides,
        )

    def _spawn_worker(
        self,
        index: int,
        overrides: Dict[str, int],
        timeout: float,
    ) -> Tuple[multiprocessing.process.BaseProcess, int, int]:
        """Spawn one worker and wait for ``(port, restored)`` (blocking)."""
        context = multiprocessing.get_context()
        parent_conn, child_conn = context.Pipe(duplex=False)
        args = list(self._worker_args(index, overrides))
        args[3] = child_conn
        process = context.Process(
            target=_worker_main, args=tuple(args), daemon=True
        )
        process.start()
        child_conn.close()
        try:
            if not parent_conn.poll(timeout):
                if process.is_alive():
                    process.terminate()
                process.join(timeout=10)
                raise ReproError(
                    f"worker {index} did not report its port within "
                    f"{timeout:.0f}s"
                )
            port, restored = parent_conn.recv()
        finally:
            parent_conn.close()
        return process, int(port), int(restored)

    def start(self, timeout: float = DEFAULT_START_TIMEOUT_S) -> int:
        """Spawn the workers, start the router; returns the router port.

        Raises:
            ReproError: When a worker fails to report its port or the
                router fails to bind within ``timeout`` (e.g. the
                requested port is already in use) — the underlying bind
                error is chained.
        """
        if self._thread is not None:
            raise ReproError("sharded server already started")
        self._stopping = False
        if self._checkpoint_dir is not None:
            self._checkpoint_path = self._checkpoint_dir
        elif self._checkpoint_every > 0:
            self._checkpoint_path = tempfile.mkdtemp(
                prefix="repro-serve-checkpoints-"
            )
            self._owns_checkpoint_dir = True
        context = multiprocessing.get_context()
        pipes = []
        for index in range(self._workers):
            parent_conn, child_conn = context.Pipe(duplex=False)
            args = list(self._worker_args(index, {}))
            args[3] = child_conn
            process = context.Process(
                target=_worker_main, args=tuple(args), daemon=True
            )
            process.start()
            child_conn.close()
            self._procs.append(process)
            pipes.append(parent_conn)
        for index, parent_conn in enumerate(pipes):
            if not parent_conn.poll(timeout):
                self.stop()
                raise ReproError(
                    f"worker {index} did not report its port within "
                    f"{timeout:.0f}s"
                )
            port, _restored = parent_conn.recv()
            self._worker_ports.append(int(port))
            parent_conn.close()
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve-router", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            self.stop()
            raise ReproError(
                f"router did not start within {timeout:.0f}s"
            )
        if self._router_port is None:
            # The router loop died before binding (port in use, bad
            # host, ...).  Surface the real failure instead of the
            # pre-fix AssertionError.
            error = self._start_error
            self.stop()
            raise ReproError(
                f"router failed to start: {error}"
            ) from error
        return self._router_port

    def stop(self) -> None:
        """Stop the router, terminate workers, and reset all state.

        Idempotent, and safe on a server that never started (or failed
        mid-:meth:`start`); afterwards :meth:`start` works again.
        """
        self._stopping = True
        loop = self._loop
        shutdown = self._shutdown
        if loop is not None and shutdown is not None:
            try:
                loop.call_soon_threadsafe(shutdown.set)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout=30)
        for process in self._procs:
            if process.is_alive():
                process.terminate()
        for process in self._procs:
            process.join(timeout=10)
        if self._owns_checkpoint_dir and self._checkpoint_path is not None:
            shutil.rmtree(self._checkpoint_path, ignore_errors=True)
        self._checkpoint_path = None
        self._owns_checkpoint_dir = False
        self._thread = None
        self._procs = []
        self._worker_ports = []
        self._dead = set()
        self._recovering = set()
        self._overrides = {}
        self._round_robin = 0
        self._started = threading.Event()
        self._start_error = None
        self._loop = None
        self._shutdown = None
        self._router_port = None
        self._client_tasks = set()
        self._restart_tasks = set()
        self._migrating = {}
        self._inflight = {}
        self._drain_events = {}

    def kill_worker(self, index: int) -> None:
        """Terminate one worker (failure-injection hook for tests)."""
        if not 0 <= index < len(self._procs):
            raise ConfigurationError(
                f"no worker {index}; have {len(self._procs)}"
            )
        process = self._procs[index]
        if process.is_alive():
            process.terminate()
        process.join(timeout=10)

    # -- router -------------------------------------------------------------

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._router_main())
        except Exception as error:
            # Keep the failure for start() to re-raise as a clean
            # ReproError; set() unblocks the waiting starter either way.
            self._start_error = error
            self._started.set()

    async def _router_main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        server = await asyncio.start_server(
            self._on_client, host=self._host, port=self._port
        )
        sockets = server.sockets or []
        if sockets:
            self._router_port = int(sockets[0].getsockname()[1])
        self._started.set()
        async with server:
            await self._shutdown.wait()
        for task in list(self._client_tasks):
            task.cancel()
        if self._client_tasks:
            await asyncio.gather(
                *self._client_tasks, return_exceptions=True
            )
        if self._restart_tasks:
            # Restart tasks hold a live executor job (process spawn);
            # let them finish so their cleanup runs — _restart_worker
            # tears the fresh process down again when stopping.
            await asyncio.wait(
                set(self._restart_tasks), timeout=DEFAULT_START_TIMEOUT_S
            )

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
        # One lazily opened upstream connection per worker *per client*,
        # so each client's responses stay strictly in request order.
        links: Dict[int, _Link] = {}

        async def answer(line: str) -> str:
            return await self._route(line, links)

        try:
            await relay_lines(reader, writer, answer, self._queue_depth)
        except asyncio.CancelledError:
            pass
        finally:
            for _, upstream_writer in links.values():
                upstream_writer.close()
            for _, upstream_writer in links.values():
                try:
                    await upstream_writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            if task is not None:
                self._client_tasks.discard(task)

    async def _route(self, line: str, links: Dict[int, _Link]) -> str:
        """Pick the shard for one request line and forward it."""
        self._requests += 1
        self._metrics.counter("serve.router_requests").inc()
        # Fast path for the hot ops: a ``sample_batch`` line is mostly a
        # float array the router has no business parsing — when exactly
        # one ``"session"`` key appears, the value looks like a
        # server-minted id and the op cannot be router-handled, routing
        # needs only that.  Anything ambiguous (no session, several
        # occurrences, weird ids, ``stats``/``migrate``) takes the
        # full-parse path below.
        if line.count('"session"') == 1 and _ROUTER_OP_RE.search(line) is None:
            match = _SESSION_RE.search(line)
            if match is not None:
                return await self._forward_session(match.group(1), line, links)
        try:
            payload = json.loads(line)
        except ValueError as exc:
            return serialize_response(
                error_response("bad_request", f"invalid JSON: {exc}")
            )
        if not isinstance(payload, dict):
            return serialize_response(
                error_response("bad_request", "request must be a JSON object")
            )
        op = payload.get("op")
        if op == "stats" and "session" not in payload:
            return await self._aggregate_stats(links)
        if op == "migrate":
            return await self._migrate(payload, links)
        session = payload.get("session")
        if isinstance(session, str):
            return await self._forward_session(session, line, links)
        # hello/restore (and anything session-less): balanced placement
        # over live workers; the worker's self-hashing id pins the
        # session afterwards.
        target = self._place()
        if target is None:
            return self._no_workers()
        return await self._forward(target, line, links)

    def _place(self, exclude: Optional[int] = None) -> Optional[int]:
        """Round-robin placement over live workers; ``None`` if none.

        Skips dead and mid-restart shards (the pre-fix router cycled
        through dead workers and bounced new sessions off them while
        live workers had free capacity).  A worker discovered dead here
        is noted — which schedules its restart under ``auto_restart``.
        """
        for _ in range(self._workers):
            candidate = self._round_robin
            self._round_robin = (self._round_robin + 1) % self._workers
            if candidate == exclude:
                continue
            if candidate in self._recovering:
                continue
            if not self._procs[candidate].is_alive():
                self._note_worker_down(candidate, "process is not running")
                continue
            if candidate in self._dead:
                continue
            return candidate
        return None

    def _no_workers(self) -> str:
        if self._recovering:
            response = error_response(
                "worker_recovering",
                "no live worker can take the session yet; workers are "
                "restarting — retry shortly",
            )
            response["recovering"] = True
        else:
            response = error_response(
                "worker_unavailable",
                "no live workers available to place the session",
            )
            response["recovering"] = False
        return serialize_response(response)

    async def _forward_session(
        self, session_id: str, line: str, links: Dict[int, _Link]
    ) -> str:
        """Route one session-addressed line, honoring migration state.

        New traffic for a session mid-migration parks on the gate until
        the move finishes (then routes to the new owner); the in-flight
        counter lets ``migrate`` drain outstanding requests before it
        snapshots.
        """
        gate = self._migrating.get(session_id)
        if gate is not None:
            await gate.wait()
        self._inflight[session_id] = self._inflight.get(session_id, 0) + 1
        try:
            worker = self._overrides.get(session_id)
            if worker is None:
                worker = shard_for(session_id, self._workers)
            return await self._forward(worker, line, links)
        finally:
            remaining = self._inflight[session_id] - 1
            if remaining:
                self._inflight[session_id] = remaining
            else:
                del self._inflight[session_id]
                drained = self._drain_events.pop(session_id, None)
                if drained is not None:
                    drained.set()

    async def _forward(
        self, worker: int, line: str, links: Dict[int, _Link]
    ) -> str:
        if worker in self._recovering:
            return self._unavailable(worker)
        if not self._procs[worker].is_alive():
            self._note_worker_down(worker, "process is not running")
            return self._unavailable(worker)
        last_error = "connection failed"
        for attempt in range(2):
            try:
                link = links.get(worker)
                if link is None:
                    link = await asyncio.open_connection(
                        self._host, self._worker_ports[worker]
                    )
                    links[worker] = link
                upstream_reader, upstream_writer = link
                upstream_writer.write((line + "\n").encode("utf-8"))
                await upstream_writer.drain()
                raw = await upstream_reader.readline()
                if not raw:
                    raise ConnectionError("worker closed the connection")
                return raw.decode("utf-8", errors="replace").rstrip("\n")
            except (ConnectionError, OSError) as exc:
                last_error = str(exc)
                stale = links.pop(worker, None)
                if stale is not None:
                    stale[1].close()
                # A dead cached link to a since-restarted worker is not
                # a worker death: retry once on a fresh connection
                # (which resolves the worker's *current* port) before
                # concluding anything about the process.
                if attempt == 0 and self._procs[worker].is_alive():
                    continue
                break
        self._note_worker_down(worker, last_error)
        return self._unavailable(worker)

    def _unavailable(self, worker: int) -> str:
        recovering = worker in self._recovering
        if recovering:
            response = error_response(
                "worker_recovering",
                f"worker {worker} is restarting; its sessions will answer "
                "again shortly — retry",
            )
        else:
            response = error_response(
                "worker_unavailable",
                f"worker {worker} serving this shard is unavailable; "
                "sessions on other shards are unaffected",
            )
        response["worker"] = worker
        response["recovering"] = recovering
        return serialize_response(response)

    def _note_worker_down(self, worker: int, reason: str) -> None:
        self._metrics.counter("serve.worker_unavailable").inc()
        if worker not in self._dead:
            self._dead.add(worker)
            self._metrics.counter("serve.workers_died").inc()
            if self._tracer.enabled:
                self._tracer.emit(
                    WorkerDied(
                        interval=self._requests, worker=worker, reason=reason
                    )
                )
        if (
            self._auto_restart
            and not self._stopping
            and worker not in self._recovering
            and self._loop is not None
        ):
            self._recovering.add(worker)
            task = self._loop.create_task(self._restart_worker(worker))
            self._restart_tasks.add(task)
            task.add_done_callback(self._restart_tasks.discard)

    async def _restart_worker(self, worker: int) -> None:
        """Respawn a dead worker off-loop and swap it into the topology.

        The replacement process restores the shard's sessions from the
        checkpoint store during boot (before it reports its port), so
        by the time the shard leaves the ``recovering`` state its
        sessions answer again.
        """
        overrides = dict(self._overrides)
        loop = asyncio.get_running_loop()
        old = self._procs[worker]

        def respawn() -> Tuple[multiprocessing.process.BaseProcess, int, int]:
            if old.is_alive():  # defensive: marked down but not exited
                old.terminate()
            old.join(timeout=10)
            return self._spawn_worker(worker, overrides, DEFAULT_START_TIMEOUT_S)

        try:
            process, port, restored = await loop.run_in_executor(None, respawn)
        except Exception:
            # Leave the shard dead-but-retriable: the next request that
            # routes here schedules another attempt.
            self._recovering.discard(worker)
            self._metrics.counter("serve.worker_restart_failures").inc()
            return
        if self._stopping:
            process.terminate()
            process.join(timeout=10)
            self._recovering.discard(worker)
            return
        self._procs[worker] = process
        self._worker_ports[worker] = port
        self._dead.discard(worker)
        self._recovering.discard(worker)
        self._metrics.counter("serve.worker_restarts").inc()
        if self._tracer.enabled:
            self._tracer.emit(
                WorkerRestarted(
                    interval=self._requests,
                    worker=worker,
                    sessions_restored=restored,
                )
            )

    # -- migration ----------------------------------------------------------

    async def _drain_session(self, session_id: str) -> None:
        """Wait until no request for ``session_id`` is in flight."""
        while self._inflight.get(session_id, 0):
            event = self._drain_events.get(session_id)
            if event is None:
                event = asyncio.Event()
                self._drain_events[session_id] = event
            await event.wait()

    @staticmethod
    def _parse_answer(answer: str) -> Tuple[bool, Payload]:
        try:
            return parse_response(answer)
        except ConfigurationError:
            return False, {}

    async def _migrate(
        self, payload: Mapping[str, object], links: Dict[int, _Link]
    ) -> str:
        """Drain–snapshot–restore one session onto another worker.

        The move is lossless and identity-preserving: traffic for the
        session is gated, in-flight requests drain, the source worker
        answers ``snapshot`` (carrying the negotiated protocol), the
        target restores under the same id, and only then does the
        source close its copy — with the reserved ``migrated`` reason,
        so the durable checkpoint transfers to the target instead of
        being deleted.  On any failure before the restore succeeds the
        session keeps serving from the source untouched.
        """
        session = payload.get("session")
        if not isinstance(session, str) or not session:
            return serialize_response(
                error_response(
                    "bad_request", "migrate requires a string 'session' field"
                )
            )
        unexpected = set(payload) - {"op", "session", "worker"}
        if unexpected:
            return serialize_response(
                error_response(
                    "bad_request",
                    f"unknown migrate fields: {sorted(unexpected)}",
                )
            )
        explicit: Optional[int] = None
        if "worker" in payload:
            worker_field = payload["worker"]
            if (
                isinstance(worker_field, bool)
                or not isinstance(worker_field, int)
                or not 0 <= worker_field < self._workers
            ):
                return serialize_response(
                    error_response(
                        "bad_request",
                        "field 'worker' must be an integer in "
                        f"[0, {self._workers})",
                    )
                )
            explicit = worker_field
        # Serialize with any in-progress migration of the same session,
        # then gate new traffic and drain what is already in flight.
        while session in self._migrating:
            await self._migrating[session].wait()
        gate = asyncio.Event()
        self._migrating[session] = gate
        try:
            await self._drain_session(session)
            source = self._overrides.get(session)
            if source is None:
                source = shard_for(session, self._workers)
            target = (
                explicit if explicit is not None else self._place(exclude=source)
            )
            if target is None:
                return self._no_workers()
            if target == source:
                return serialize_response(
                    {
                        "ok": True,
                        "op": "migrate",
                        "session": session,
                        "from_worker": source,
                        "to_worker": source,
                        "migrated": False,
                    }
                )
            snapshot_line = serialize_response(
                {"op": "snapshot", "session": session}
            )
            answer = await self._forward(source, snapshot_line, links)
            ok, snapshot = self._parse_answer(answer)
            if not ok:
                return answer  # propagate the worker's error verbatim
            checkpoint = snapshot.get("checkpoint")
            if not isinstance(checkpoint, dict):
                return serialize_response(
                    error_response(
                        "internal",
                        f"worker {source} answered snapshot without a "
                        "checkpoint",
                    )
                )
            restore_payload: Dict[str, object] = {
                "op": "restore",
                "session": session,
                "checkpoint": checkpoint,
            }
            protocol = snapshot.get("protocol")
            if isinstance(protocol, int) and not isinstance(protocol, bool):
                restore_payload["protocol"] = protocol
            answer = await self._forward(
                target, serialize_response(restore_payload), links
            )
            ok, restored = self._parse_answer(answer)
            if not ok:
                return answer  # source copy is untouched and still live
            bye_line = serialize_response(
                {
                    "op": "bye",
                    "session": session,
                    "reason": MIGRATED_CLOSE_REASON,
                }
            )
            answer = await self._forward(source, bye_line, links)
            ok, _closed = self._parse_answer(answer)
            if not ok:
                # The source died between snapshot and close; the target
                # already owns the session and routing flips below, so
                # the stale copy (if the worker comes back) is
                # unreachable and will idle out.
                self._metrics.counter("serve.migration_close_failures").inc()
            if target == shard_for(session, self._workers):
                self._overrides.pop(session, None)
            else:
                self._overrides[session] = target
            samples = restored.get("samples")
            samples_count = (
                samples
                if isinstance(samples, int) and not isinstance(samples, bool)
                else 0
            )
            self._metrics.counter("serve.sessions_migrated").inc()
            if self._tracer.enabled:
                self._tracer.emit(
                    SessionMigrated(
                        interval=self._requests,
                        session=session,
                        from_worker=source,
                        to_worker=target,
                        samples=samples_count,
                    )
                )
            return serialize_response(
                {
                    "ok": True,
                    "op": "migrate",
                    "session": session,
                    "from_worker": source,
                    "to_worker": target,
                    "samples": samples_count,
                    "migrated": True,
                }
            )
        finally:
            self._migrating.pop(session, None)
            gate.set()

    async def _aggregate_stats(self, links: Dict[int, _Link]) -> str:
        per_worker: List[Optional[Mapping[str, object]]] = []
        stats_line = serialize_response({"op": "stats"})
        for worker in range(self._workers):
            answer = await self._forward(worker, stats_line, links)
            ok, payload = self._parse_answer(answer)
            stats = payload.get("stats") if ok else None
            per_worker.append(stats if isinstance(stats, dict) else None)
        return serialize_response(
            {
                "ok": True,
                "op": "stats",
                "stats": aggregate_stats(
                    per_worker, recovering=sorted(self._recovering)
                ),
            }
        )


def run_sharded(
    workers: int,
    host: str = "127.0.0.1",
    port: int = 8472,
    max_sessions: int = DEFAULT_MAX_SESSIONS,
    idle_timeout_s: Optional[float] = None,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
    checkpoint_every: int = 0,
    checkpoint_dir: Optional[str] = None,
    auto_restart: bool = False,
) -> None:
    """Blocking entry point for ``repro serve tcp --workers N``.

    Starts the sharded server and parks until interrupted.
    """
    server = ShardedServer(
        workers=workers,
        host=host,
        port=port,
        max_sessions=max_sessions,
        idle_timeout_s=idle_timeout_s,
        queue_depth=queue_depth,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir,
        auto_restart=auto_restart,
    )
    server.start()
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
