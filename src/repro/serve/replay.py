"""Replay recorded traces through a live session (offline/online bridge).

``repro serve replay`` drives a recorded ``repro.obs`` JSONL trace —
specifically its ``interval_sampled`` events — through a fresh
:class:`~repro.serve.session.PhaseSession` and checks, bit for bit, that
the online service reproduces the offline
:func:`repro.analysis.accuracy.evaluate_predictor` hit/miss sequence on
the same ``Mem/Uop`` series.  This is the serving layer's ground truth:
if the two ever diverge, the service is not running the paper's
predictor.

Optionally the replay snapshots the session mid-stream, round-trips the
checkpoint through JSON and restores into a *new* session before
continuing — proving checkpoints are lossless on real traces, not just
generated ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.accuracy import evaluate_predictor
from repro.errors import ConfigurationError
from repro.obs.events import IntervalSampled, PhaseClassified, TraceEvent
from repro.obs.export import events_from_jsonl
from repro.serve.checkpoint import checkpoint_from_json, checkpoint_to_json
from repro.serve.session import PhaseSession, SessionConfig


@dataclass(frozen=True)
class ReplaySample:
    """One counter sample lifted from a recorded trace.

    ``trace_interval`` is the interval index as recorded; sessions are
    fed by *position* (0-based, contiguous), so the two differ when a
    trace starts mid-run.
    """

    trace_interval: int
    mem_per_uop: float
    upc: float


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of replaying one trace through one session configuration.

    Attributes:
        samples: Number of counter samples replayed.
        governor: Session governor kind.
        policy: DVFS policy name.
        snapshot_at: Sample index after which the session was
            checkpointed and restored (``None`` = straight replay).
        online_predictions: Scored predictions the session emitted.
        offline_predictions: Scored predictions from
            ``evaluate_predictor`` on the same series.
        actuals: Actual phases both sequences are scored against.
        mismatch_index: First scored index where online and offline
            disagree; ``None`` when they match bit-for-bit.
        trace_phases_match: Whether the session's classified phases
            reproduce the ``phase_classified`` events recorded in the
            trace; ``None`` when the trace carries none (or a different
            count, e.g. it was recorded with another governor).
    """

    samples: int
    governor: str
    policy: str
    snapshot_at: Optional[int]
    online_predictions: Tuple[int, ...]
    offline_predictions: Tuple[int, ...]
    actuals: Tuple[int, ...]
    mismatch_index: Optional[int]
    trace_phases_match: Optional[bool]

    @property
    def matches_offline(self) -> bool:
        """True when online == offline, prediction for prediction."""
        return self.mismatch_index is None

    @property
    def accuracy(self) -> float:
        """Prediction accuracy over the replayed trace."""
        if not self.online_predictions:
            return 1.0
        correct = sum(
            p == a for p, a in zip(self.online_predictions, self.actuals)
        )
        return correct / len(self.online_predictions)

    def to_payload(self) -> Dict[str, object]:
        """JSON-able report (``repro serve replay --format json``)."""
        return {
            "samples": self.samples,
            "governor": self.governor,
            "policy": self.policy,
            "snapshot_at": self.snapshot_at,
            "scored": len(self.online_predictions),
            "accuracy": self.accuracy,
            "matches_offline": self.matches_offline,
            "mismatch_index": self.mismatch_index,
            "trace_phases_match": self.trace_phases_match,
        }


def load_trace(path: Path) -> Tuple[TraceEvent, ...]:
    """Read a ``repro.obs`` JSONL trace file into typed events.

    Raises:
        ConfigurationError: When the file is missing or malformed.
    """
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        # UnicodeDecodeError is a ValueError, not an OSError — without
        # this clause a binary/corrupt trace file escaped as a raw stack
        # trace instead of the CLI's one-line error.
        raise ConfigurationError(f"cannot read trace {path}: {error}") from None
    return events_from_jsonl(text)


def extract_samples(events: Sequence[TraceEvent]) -> Tuple[ReplaySample, ...]:
    """Lift the ``interval_sampled`` events out of a trace, in order.

    Raises:
        ConfigurationError: When the trace has no counter samples.
    """
    samples = tuple(
        ReplaySample(
            trace_interval=event.interval,
            mem_per_uop=event.mem_per_uop,
            upc=event.upc,
        )
        for event in events
        if isinstance(event, IntervalSampled)
    )
    if not samples:
        raise ConfigurationError(
            "trace contains no interval_sampled events — nothing to replay "
            "(record one with 'repro engine run --trace-out ...')"
        )
    return samples


def replay_trace(
    events: Sequence[TraceEvent],
    config: Optional[SessionConfig] = None,
    snapshot_at: Optional[int] = None,
    predictor_state: Optional[Dict[str, object]] = None,
) -> ReplayReport:
    """Drive a recorded trace through a session and verify equivalence.

    The session is fed every ``interval_sampled`` event by position.
    With ``snapshot_at = k`` the session is checkpointed after sample
    ``k``, serialized to JSON and back, restored into a brand-new
    session, and the remaining samples continue there — the report then
    also certifies that the checkpoint changed nothing.

    ``predictor_state`` pre-loads a trained model (a
    :class:`repro.learn.ModelArtifact` ``state`` payload, or any
    ``export_state`` snapshot with a clean online stratum) into *both*
    the live session's predictor and the offline reference before the
    first sample — this is how ``repro serve replay --model`` certifies
    that a trained artifact behaves bit-identically online and offline.

    Raises:
        ConfigurationError: On an empty trace, an out-of-range
            ``snapshot_at``, or a ``predictor_state`` that does not fit
            the configured governor.
    """
    cfg = config if config is not None else SessionConfig()
    samples = extract_samples(events)
    if snapshot_at is not None and not 1 <= snapshot_at < len(samples):
        raise ConfigurationError(
            f"snapshot_at must be in [1, {len(samples) - 1}] for this trace, "
            f"got {snapshot_at}"
        )

    session = PhaseSession(cfg)
    if predictor_state is not None:
        session.predictor.restore_state(predictor_state)
    online_predictions: List[int] = []
    actuals: List[int] = []
    pending: Optional[int] = None
    for position, sample in enumerate(samples):
        outcome = session.feed(position, sample.mem_per_uop, sample.upc)
        if pending is not None:
            online_predictions.append(pending)
            actuals.append(outcome.actual_phase)
        pending = outcome.predicted_phase
        if snapshot_at is not None and position + 1 == snapshot_at:
            checkpoint = checkpoint_from_json(
                checkpoint_to_json(session.snapshot())
            )
            session = PhaseSession.from_snapshot(checkpoint)

    reference = cfg.build_predictor()
    if predictor_state is not None:
        # evaluate_predictor resets the reference first; reset() keeps
        # the trained stratum and clears only online history, so the
        # restored model scores from the same state the session started
        # in.
        reference.restore_state(predictor_state)
    offline = evaluate_predictor(
        reference,
        [sample.mem_per_uop for sample in samples],
        session.phase_table,
    )

    mismatch_index: Optional[int] = None
    for index, (online, reference) in enumerate(
        zip(online_predictions, offline.predictions)
    ):
        if online != reference:
            mismatch_index = index
            break
    if mismatch_index is None and len(online_predictions) != len(
        offline.predictions
    ):
        mismatch_index = min(len(online_predictions), len(offline.predictions))

    return ReplayReport(
        samples=len(samples),
        governor=cfg.governor,
        policy=cfg.policy,
        snapshot_at=snapshot_at,
        online_predictions=tuple(online_predictions),
        offline_predictions=offline.predictions,
        actuals=tuple(actuals),
        mismatch_index=mismatch_index,
        trace_phases_match=_check_trace_phases(events, samples, actuals),
    )


def _check_trace_phases(
    events: Sequence[TraceEvent],
    samples: Sequence[ReplaySample],
    actuals: Sequence[int],
) -> Optional[bool]:
    """Cross-check classified phases against the trace's own record.

    The recorded ``phase_classified`` events carry what the *original*
    run classified; when the trace holds exactly one per sample, the
    replayed session must agree on every one after the first (the first
    sample has no scored slot, so ``actuals`` starts at sample 1).
    Returns ``None`` when the trace carries a different shape — e.g. it
    was recorded without a governor, or with several.
    """
    recorded = [
        event.phase for event in events if isinstance(event, PhaseClassified)
    ]
    if len(recorded) != len(samples):
        return None
    return recorded[1:] == list(actuals)
