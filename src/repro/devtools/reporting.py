"""Shared report renderers for the devtools CLIs.

``repro lint`` and ``repro analyze`` emit the same report shape
(:class:`repro.devtools.lint.engine.LintReport`: findings, error
messages, a files-checked count, and exit-code semantics).  This module
is the single place that turns such a report into output, so the two
front-ends cannot drift:

* :func:`render_text` — one ``path:line:col: rule: message`` line per
  finding plus a one-line summary;
* :func:`render_json` — the report's ``to_dict()`` as an indented JSON
  document;
* :func:`render_sarif` — a minimal SARIF 2.1.0 log, the format CI
  services ingest to annotate pull requests with per-line findings.

Renderers are looked up by name via :func:`renderer_for`, so a CLI adds
a format by adding a name here, not by growing another ``if`` ladder.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Tuple

from repro.devtools.lint.engine import LintReport

#: SARIF version emitted by :func:`render_sarif`.
SARIF_VERSION = "2.1.0"
#: Schema URI embedded in SARIF logs (what GitHub code scanning expects).
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Formats every devtools CLI accepts, in help-text order.
OUTPUT_FORMATS: Tuple[str, ...] = ("text", "json", "sarif")


def render_text(report: LintReport, tool: str = "repro lint") -> str:
    """The human-readable report: one line per finding plus a summary."""
    lines = [finding.format() for finding in report.findings]
    lines.extend(f"error: {message}" for message in report.errors)
    noun = "file" if report.files_checked == 1 else "files"
    if not report.findings and not report.errors:
        lines.append(f"{tool}: {report.files_checked} {noun} clean")
    else:
        lines.append(
            f"{tool}: {len(report.findings)} finding(s), "
            f"{len(report.errors)} error(s) in {report.files_checked} {noun}"
        )
    return "\n".join(lines)


def render_json(report: LintReport, tool: str = "repro lint") -> str:
    """The machine-readable report as a JSON document."""
    payload = report.to_dict()
    payload["tool"] = tool
    return json.dumps(payload, indent=2)


def render_sarif(report: LintReport, tool: str = "repro lint") -> str:
    """The report as a SARIF 2.1.0 log for CI annotation.

    Findings become ``warning``-level results; engine errors (unreadable
    or unparsable files) become ``error``-level tool notifications so a
    red run is still visible in SARIF-only consumers.
    """
    rule_ids: List[str] = sorted({f.rule for f in report.findings})
    results = [
        {
            "ruleId": finding.rule,
            "level": "warning",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            # SARIF columns are 1-based; findings are 0-based.
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in report.findings
    ]
    notifications = [
        {"level": "error", "message": {"text": message}}
        for message in report.errors
    ]
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool,
                        "rules": [{"id": rule_id} for rule_id in rule_ids],
                    }
                },
                "results": results,
                "invocations": [
                    {
                        "executionSuccessful": not report.errors,
                        "toolExecutionNotifications": notifications,
                    }
                ],
            }
        ],
    }
    return json.dumps(log, indent=2)


_RENDERERS: Dict[str, Callable[[LintReport, str], str]] = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}


def renderer_for(output_format: str) -> Callable[[LintReport, str], str]:
    """The renderer for ``output_format``.

    Raises:
        ValueError: On a format name outside :data:`OUTPUT_FORMATS`.
    """
    try:
        return _RENDERERS[output_format]
    except KeyError:
        raise ValueError(
            f"unknown output format {output_format!r}; "
            f"expected one of {', '.join(OUTPUT_FORMATS)}"
        ) from None
