"""Developer tooling for the reproduction (not used at simulation time).

Currently one subsystem lives here: :mod:`repro.devtools.lint`, an
AST-based static analysis engine enforcing the paper's domain invariants
(phase-id ranges, the predictor observe/predict contract, replayable
determinism, float-comparison hygiene) across the simulator sources.
"""
