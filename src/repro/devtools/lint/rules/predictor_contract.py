"""Rule R1: classes deriving from ``PhasePredictor`` honour the contract.

The paper's PMI handler drives every predictor through the same
observe/predict cycle (Section 3); a predictor missing ``observe`` or
``predict`` — or reporting no ``name`` for figures — fails only deep
inside a sweep.  A subclass that shadows ``DEFAULT_PHASE`` with a
non-``int`` silently breaks the cold-start guarantee (phase ids are
integers 1..6, Table 1).
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.devtools.lint.engine import (
    Finding,
    LintRule,
    ParsedModule,
    register_rule,
)

#: Methods every concrete predictor must define (the PMI-handler contract).
REQUIRED_MEMBERS: Tuple[str, ...] = ("name", "observe", "predict")

_BASE_CLASS = "PhasePredictor"


def _derives_from_predictor(node: ast.ClassDef) -> bool:
    """Whether the class lists ``PhasePredictor`` as a direct base."""
    for base in node.bases:
        if isinstance(base, ast.Name) and base.id == _BASE_CLASS:
            return True
        if isinstance(base, ast.Attribute) and base.attr == _BASE_CLASS:
            return True
    return False


def _is_int_literal(node: ast.expr) -> bool:
    value = node
    if isinstance(value, ast.UnaryOp) and isinstance(
        value.op, (ast.UAdd, ast.USub)
    ):
        value = value.operand
    return (
        isinstance(value, ast.Constant)
        and isinstance(value.value, int)
        and not isinstance(value.value, bool)
    )


@register_rule
class PredictorContractRule(LintRule):
    """Enforce the observe/predict contract on ``PhasePredictor`` subclasses."""

    name = "predictor-contract"
    description = (
        "classes deriving from PhasePredictor must define "
        "name/observe/predict and keep DEFAULT_PHASE an int"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not _derives_from_predictor(node):
                continue
            defined = {
                stmt.name
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            missing = [m for m in REQUIRED_MEMBERS if m not in defined]
            if missing:
                yield self.finding(
                    module,
                    node,
                    f"predictor {node.name!r} does not implement "
                    f"{', '.join(missing)} (PMI-handler contract)",
                )
            yield from self._check_default_phase(module, node)

    def _check_default_phase(
        self, module: ParsedModule, node: ast.ClassDef
    ) -> Iterator[Finding]:
        for stmt in node.body:
            target = None
            value = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            if (
                isinstance(target, ast.Name)
                and target.id == "DEFAULT_PHASE"
                and value is not None
                and not _is_int_literal(value)
            ):
                yield self.finding(
                    module,
                    stmt,
                    f"predictor {node.name!r} shadows DEFAULT_PHASE with a "
                    "non-int value (phase ids are integers)",
                )
