"""Domain rule registry for the reproduction's lint subsystem.

Importing this package imports every built-in rule module, which
registers its rule class with the engine's global registry (see
:func:`repro.devtools.lint.engine.register_rule`).  :func:`default_rules`
returns one fresh instance of each.
"""

from __future__ import annotations

from typing import List

from repro.devtools.lint.engine import LintRule, registered_rules

# Importing for side effect: each module registers its rule class.
from repro.devtools.lint.rules import (  # noqa: F401
    determinism,
    float_equality,
    mutable_defaults,
    phase_id_range,
    predictor_contract,
    units_docstring,
)

__all__ = ["default_rules"]


def default_rules() -> List[LintRule]:
    """One instance of every registered rule, sorted by rule name."""
    return [
        rule_class() for _, rule_class in sorted(registered_rules().items())
    ]
