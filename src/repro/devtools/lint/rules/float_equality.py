"""Rule R4: no exact float equality in ``core/`` and ``power/``.

Accumulated physical quantities (seconds, joules, watts) are floats, so
``==``/``!=`` against float values is fragile and silently
platform-dependent — exactly the kind of drift that makes a 33-benchmark
sweep irreproducible.  The rule flags equality comparisons where either
operand is *textually* a float — a float literal (``0.0``,
``float("inf")``) — which keeps the heuristic deterministic without
type inference.  Use :mod:`repro.numerics` (``is_zero``,
``approx_equal``) or ``math.isinf``/``math.isclose`` instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.devtools.lint.engine import (
    Finding,
    LintRule,
    ParsedModule,
    register_rule,
)


def _is_float_expression(node: ast.expr) -> bool:
    """Whether ``node`` is textually a float: a literal or ``float(...)``."""
    value = node
    if isinstance(value, ast.UnaryOp) and isinstance(
        value.op, (ast.UAdd, ast.USub)
    ):
        value = value.operand
    if isinstance(value, ast.Constant) and isinstance(value.value, float):
        return True
    return (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "float"
    )


@register_rule
class FloatEqualityRule(LintRule):
    """Flag ``==``/``!=`` against float expressions in core/ and power/."""

    name = "no-float-equality"
    description = (
        "no ==/!= against float literals in core/ or power/; use "
        "repro.numerics.is_zero/approx_equal or math.isinf/isclose"
    )
    packages: Tuple[str, ...] = ("core", "power")

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                pair = (operands[index], operands[index + 1])
                if any(_is_float_expression(side) for side in pair):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        module,
                        node,
                        f"exact float {symbol} comparison; use "
                        "repro.numerics helpers (is_zero/approx_equal) or "
                        "math.isinf/math.isclose",
                    )
