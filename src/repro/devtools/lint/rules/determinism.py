"""Rule R2: simulation packages must stay bit-for-bit replayable.

The reproduction's figures (Fig. 4, 5, 11) are regression-tested against
exact values, which only works because every trace is derived from a
seeded generator.  Wall-clock reads (``time.time()``,
``datetime.now()``) and unseeded global RNG calls (``random.random()``,
``np.random.normal()``) inside ``core/``, ``power/`` or ``workloads/``
would silently break that replayability.  Seeded constructions —
``np.random.default_rng(seed)``, ``random.Random(seed)`` — are allowed.

The trace collectors in ``obs/`` are held to the same bar: tracing is
required to be zero-perturbation and deterministic, so a trace event
must never carry a wall-clock stamp — only simulated time and the
monotonic interval index.

``serve/`` joins the list because its correctness contract is bit-for-bit
equivalence with the offline evaluator: the serving layer never *calls*
a clock itself — frontends pass ``time.monotonic`` in by reference,
which this rule deliberately permits (it flags calls, not references).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.devtools.lint.engine import (
    Finding,
    LintRule,
    ParsedModule,
    register_rule,
)

#: ``time`` module functions that read the wall clock.
_CLOCK_CALLS = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
)

#: ``datetime``/``date`` class methods that read the wall clock.
_DATETIME_METHODS = ("now", "utcnow", "today")

#: RNG constructors that are deterministic *when given a seed argument*.
_SEEDABLE_CONSTRUCTORS = (
    "Random",
    "RandomState",
    "default_rng",
    "SeedSequence",
)


def _dotted_name(node: ast.expr) -> Optional[str]:
    """Flatten ``a.b.c`` attribute chains to ``"a.b.c"`` (else None)."""
    parts = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def _has_seed_argument(call: ast.Call) -> bool:
    if call.args:
        return True
    return any(kw.arg == "seed" for kw in call.keywords)


@register_rule
class DeterminismRule(LintRule):
    """Forbid wall-clock and unseeded-RNG calls in simulation packages."""

    name = "determinism"
    description = (
        "no time.time()/datetime.now()/unseeded random calls in "
        "core/, power/, workloads/, obs/, serve/ or bench/ (simulation, "
        "its traces, the serving layer and the benchmark registry must "
        "be replayable; benchmark timing lives in benchmarks/)"
    )
    packages: Tuple[str, ...] = (
        "core", "power", "workloads", "obs", "serve", "bench",
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            message = self._violation(dotted, node)
            if message is not None:
                yield self.finding(module, node, message)

    def _violation(self, dotted: str, call: ast.Call) -> Optional[str]:
        head, _, tail = dotted.partition(".")
        last = dotted.rsplit(".", 1)[-1]
        if dotted in _CLOCK_CALLS:
            return f"{dotted}() reads the wall clock; simulation time only"
        if last in _DATETIME_METHODS and (
            "datetime" in dotted.split(".") or "date" in dotted.split(".")
        ):
            return f"{dotted}() reads the wall clock; simulation time only"
        is_stdlib_random = head == "random" and tail
        is_np_random = head in ("np", "numpy") and tail.startswith("random.")
        if not (is_stdlib_random or is_np_random):
            return None
        if last in _SEEDABLE_CONSTRUCTORS:
            if _has_seed_argument(call):
                return None
            return (
                f"{dotted}() without a seed is not replayable; "
                "pass an explicit seed"
            )
        return (
            f"{dotted}() uses unseeded global RNG state; use a seeded "
            "np.random.default_rng(seed) / random.Random(seed) instead"
        )
