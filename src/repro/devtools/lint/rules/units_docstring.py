"""Rule R6: unit-bearing function names must document their units.

The paper's power methodology lives and dies by unit discipline
(watts from sense-resistor voltages, joules from P*t integration, MHz
from SpeedStep tables).  A public function in ``power/`` or ``cpu/``
whose *name* advertises a unit — ``average_power_w``, ``power_watts``,
``frequency_hz`` — must say so in its docstring, so callers never have
to guess a scale factor.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple, Union

from repro.devtools.lint.engine import (
    Finding,
    LintRule,
    ParsedModule,
    register_rule,
)

#: Name fragments that advertise a unit when they appear as a whole
#: ``_``-separated part of a function name.
_UNIT_NAME_PARTS = ("w", "j", "ws", "js")

#: Substrings of a name part that advertise a unit anywhere in the name.
_UNIT_NAME_SUBSTRINGS = ("watt", "joule", "hz")

#: Docstring substrings accepted as documenting the unit.
_UNIT_DOC_TERMS = ("watt", "joule", "hz", "hertz")


def _name_mentions_unit(function_name: str) -> bool:
    parts = function_name.lower().split("_")
    if any(part in _UNIT_NAME_PARTS for part in parts):
        return True
    return any(
        token in part for part in parts for token in _UNIT_NAME_SUBSTRINGS
    )


def _docstring_mentions_unit(docstring: str) -> bool:
    lowered = docstring.lower()
    return any(term in lowered for term in _UNIT_DOC_TERMS)


@register_rule
class UnitsDocstringRule(LintRule):
    """Require unit terms in docstrings of unit-named public functions."""

    name = "units-docstring"
    description = (
        "public functions in power/ or cpu/ whose names mention "
        "watts/joules/hz must document the unit in their docstring"
    )
    packages: Tuple[str, ...] = ("power", "cpu")

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            if not _name_mentions_unit(node.name):
                continue
            docstring = ast.get_docstring(node)
            if docstring is None:
                yield self.finding(
                    module,
                    node,
                    f"function {node.name!r} advertises a unit in its name "
                    "but has no docstring",
                )
            elif not _docstring_mentions_unit(docstring):
                yield self.finding(
                    module,
                    node,
                    f"function {node.name!r} advertises a unit in its name "
                    "but its docstring never states the unit "
                    "(watts/joules/hertz)",
                )
