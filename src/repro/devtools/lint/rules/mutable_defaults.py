"""Rule R5: no mutable default argument values.

A list/dict/set default is evaluated once at function definition and
shared across every call — state leaking between benchmark runs is a
classic source of irreproducible sweeps.  Use ``None`` plus an in-body
default instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from repro.devtools.lint.engine import (
    Finding,
    LintRule,
    ParsedModule,
    register_rule,
)

_MUTABLE_DISPLAYS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)

_MUTABLE_CONSTRUCTORS = ("list", "dict", "set", "bytearray")

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_DISPLAYS):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CONSTRUCTORS
    )


@register_rule
class MutableDefaultArgsRule(LintRule):
    """Flag list/dict/set (display or constructor) default arguments."""

    name = "mutable-default-args"
    description = (
        "no mutable default argument values (shared across calls); "
        "default to None and build inside the function"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            yield from self._check_function(module, node)

    def _check_function(
        self, module: ParsedModule, node: _FunctionNode
    ) -> Iterator[Finding]:
        label = (
            "lambda"
            if isinstance(node, ast.Lambda)
            else f"function {node.name!r}"
        )
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                yield self.finding(
                    module,
                    default,
                    f"{label} has a mutable default argument (evaluated "
                    "once, shared across calls); use None instead",
                )
