"""Rule R3: phase-id literals must lie in the paper's 1..6 range.

Table 1 defines exactly six phases, and every component — predictors,
policies, the governor — identifies them by 1-based integer id.  An
integer literal outside 1..6 assigned or compared to a phase-named
variable is almost certainly an off-by-one (0-based indexing creeping
in) or a stale magic number.  Intentional sentinels (such as the GPHT's
``EMPTY_PHASE = 0``) carry an inline suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.lint.engine import (
    Finding,
    LintRule,
    ParsedModule,
    register_rule,
)

#: Valid phase ids per the paper's Table 1.
PHASE_MIN = 1
PHASE_MAX = 6


def _is_phase_identifier(name: str) -> bool:
    lowered = name.lower()
    return (
        lowered in ("phase", "phase_id")
        or lowered.endswith("_phase")
        or lowered.endswith("_phase_id")
    )


def _target_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _int_literal(node: ast.expr) -> Optional[int]:
    value = node
    negate = False
    if isinstance(value, ast.UnaryOp) and isinstance(value.op, ast.USub):
        negate = True
        value = value.operand
    if (
        isinstance(value, ast.Constant)
        and isinstance(value.value, int)
        and not isinstance(value.value, bool)
    ):
        return -value.value if negate else value.value
    return None


@register_rule
class PhaseIdRangeRule(LintRule):
    """Flag phase-named targets bound or equated to out-of-range ints."""

    name = "phase-id-range"
    description = (
        f"integer literals assigned or compared (==/!=) to phase-named "
        f"variables must lie in {PHASE_MIN}..{PHASE_MAX} (Table 1)"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                yield from self._check_assignment(module, node)
            elif isinstance(node, ast.Compare):
                yield from self._check_comparison(module, node)

    def _check_assignment(
        self, module: ParsedModule, node: ast.stmt
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
            value = node.value
        else:  # pragma: no cover - guarded by the caller
            return
        if value is None:
            return
        literal = _int_literal(value)
        if literal is None or PHASE_MIN <= literal <= PHASE_MAX:
            return
        for target in targets:
            target_name = _target_name(target)
            if target_name is not None and _is_phase_identifier(target_name):
                yield self.finding(
                    module,
                    node,
                    f"{target_name} assigned literal {literal}, outside the "
                    f"valid phase range {PHASE_MIN}..{PHASE_MAX}",
                )

    def _check_comparison(
        self, module: ParsedModule, node: ast.Compare
    ) -> Iterator[Finding]:
        operands = [node.left] + list(node.comparators)
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            for named, other in ((left, right), (right, left)):
                named_id = _target_name(named)
                if named_id is None or not _is_phase_identifier(named_id):
                    continue
                literal = _int_literal(other)
                if literal is None or PHASE_MIN <= literal <= PHASE_MAX:
                    continue
                yield self.finding(
                    module,
                    node,
                    f"{named_id} compared to literal {literal}, outside the "
                    f"valid phase range {PHASE_MIN}..{PHASE_MAX}",
                )
