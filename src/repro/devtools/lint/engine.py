"""Core machinery of the domain-aware lint subsystem.

The engine is deliberately dependency-free (stdlib ``ast`` only) so it
runs anywhere the simulator runs.  It provides:

* :class:`LintRule` — the rule interface: a ``name``, a ``description``,
  an optional package scope, and a ``check`` method yielding
  :class:`Finding` objects from a :class:`ParsedModule`;
* :class:`RuleVisitor` — an ``ast.NodeVisitor`` convenience base that
  collects findings for the rule driving it;
* a rule registry (:func:`register_rule`, :func:`registered_rules`)
  that rule modules populate at import time;
* :class:`LintEngine` — parses files once, runs every applicable rule,
  honours inline suppressions, and aggregates a :class:`LintReport`;
* text and JSON reporters plus stable exit-code semantics
  (:data:`EXIT_CLEAN` / :data:`EXIT_FINDINGS` / :data:`EXIT_ERROR`).

Suppression syntax: a finding is silenced by placing
``# repro-lint: disable=<rule>`` (comma-separated rule names, or
``all``) on the offending line.
"""

from __future__ import annotations

import ast
import re
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Sequence,
    Tuple,
    Type,
)

#: Exit code when no findings (and no errors) were produced.
EXIT_CLEAN = 0
#: Exit code when at least one finding survived suppression.
EXIT_FINDINGS = 1
#: Exit code on unreadable or syntactically invalid input.
EXIT_ERROR = 2

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: Path of the offending file, as given to the engine.
        line: 1-based line number.
        col: 0-based column offset.
        rule: Name of the rule that produced the finding.
        message: Human-readable description of the violation.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """Render in the conventional ``path:line:col: rule: message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable representation."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


def parse_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the rule names suppressed on them.

    Recognises ``# repro-lint: disable=<rule>[,<rule>...]``; the special
    name ``all`` suppresses every rule on that line.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        names = frozenset(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        if names:
            suppressions[lineno] = names
    return suppressions


@dataclass(frozen=True)
class ParsedModule:
    """One parsed source file, shared by every rule that inspects it.

    Attributes:
        path: The file's path as given to the engine.
        source: Raw source text.
        tree: Parsed AST of ``source``.
        suppressions: Per-line suppressed rule names (see
            :func:`parse_suppressions`).
    """

    path: str
    source: str
    tree: ast.Module
    suppressions: Dict[int, FrozenSet[str]]

    @classmethod
    def from_source(cls, source: str, path: str = "<string>") -> "ParsedModule":
        """Parse ``source`` into a module (raises ``SyntaxError``)."""
        return cls(
            path=path,
            source=source,
            tree=ast.parse(source, filename=path),
            suppressions=parse_suppressions(source),
        )

    def in_package(self, *names: str) -> bool:
        """Whether any directory component of ``path`` is one of ``names``.

        Package-scoped rules (e.g. determinism inside ``core/``) use this
        so that both ``src/repro/core/x.py`` and test fixtures placed
        under a ``core/`` directory are matched.
        """
        parts = Path(self.path).parts[:-1]
        return any(part in names for part in parts)

    def is_suppressed(self, rule_name: str, line: int) -> bool:
        """Whether ``rule_name`` is suppressed on ``line``."""
        names = self.suppressions.get(line)
        if names is None:
            return False
        return rule_name in names or "all" in names


class LintRule(ABC):
    """One domain rule: inspects a parsed module, yields findings.

    Class attributes:
        name: Stable rule identifier (used in reports and suppressions).
        description: One-line summary shown by ``--list-rules``.
        packages: Directory names the rule is scoped to; empty means the
            rule applies everywhere.
    """

    name: str = ""
    description: str = ""
    packages: Tuple[str, ...] = ()

    def applies_to(self, module: ParsedModule) -> bool:
        """Whether this rule should run on ``module`` (scope check)."""
        if not self.packages:
            return True
        return module.in_package(*self.packages)

    @abstractmethod
    def check(self, module: ParsedModule) -> Iterator[Finding]:
        """Yield every violation of this rule found in ``module``."""

    def finding(self, module: ParsedModule, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``'s location."""
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.name,
            message=message,
        )

    def __repr__(self) -> str:
        return f"<LintRule {self.name}>"


class RuleVisitor(ast.NodeVisitor):
    """``ast.NodeVisitor`` base that accumulates findings for one rule.

    Subclasses implement the usual ``visit_*`` methods and call
    :meth:`report` for each violation; the driving rule then drains
    :attr:`findings`.
    """

    def __init__(self, rule: LintRule, module: ParsedModule) -> None:
        self.rule = rule
        self.module = module
        self.findings: List[Finding] = []

    def report(self, node: ast.AST, message: str) -> None:
        """Record a finding anchored at ``node``."""
        self.findings.append(self.rule.finding(self.module, node, message))


_REGISTRY: Dict[str, Type[LintRule]] = {}


def register_rule(rule_class: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule to the global registry.

    Raises:
        ValueError: On a missing or duplicate rule name.
    """
    if not rule_class.name:
        raise ValueError(f"rule {rule_class.__name__} has no name")
    existing = _REGISTRY.get(rule_class.name)
    if existing is not None and existing is not rule_class:
        raise ValueError(f"duplicate rule name {rule_class.name!r}")
    _REGISTRY[rule_class.name] = rule_class
    return rule_class


def registered_rules() -> Dict[str, Type[LintRule]]:
    """A copy of the rule registry, keyed by rule name."""
    return dict(_REGISTRY)


@dataclass
class LintReport:
    """Aggregated outcome of one engine run.

    Attributes:
        findings: Surviving (unsuppressed) findings, sorted by location.
        files_checked: Number of files successfully parsed and linted.
        errors: Messages for files that could not be read or parsed.
    """

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """Process exit code: errors beat findings beat clean."""
        if self.errors:
            return EXIT_ERROR
        if self.findings:
            return EXIT_FINDINGS
        return EXIT_CLEAN

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable representation of the whole report."""
        return {
            "files_checked": self.files_checked,
            "finding_count": len(self.findings),
            "findings": [f.to_dict() for f in self.findings],
            "errors": list(self.errors),
            "exit_code": self.exit_code,
        }


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` in sorted order.

    Directories are walked recursively; file paths are yielded as given.
    Missing paths are yielded too so the engine can report them.
    """
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


class LintEngine:
    """Runs a set of rules over source files and aggregates a report.

    Args:
        rules: Rule instances to apply (default: every registered rule,
            in name order).
    """

    def __init__(self, rules: Iterable[LintRule] = ()) -> None:
        self._rules: List[LintRule] = list(rules)
        if not self._rules:
            self._rules = [
                rule_class()
                for _, rule_class in sorted(_REGISTRY.items())
            ]

    @property
    def rules(self) -> Tuple[LintRule, ...]:
        """The rules this engine applies, in order."""
        return tuple(self._rules)

    def lint_module(self, module: ParsedModule) -> List[Finding]:
        """Run every applicable rule on a parsed module."""
        findings: List[Finding] = []
        for rule in self._rules:
            if not rule.applies_to(module):
                continue
            for found in rule.check(module):
                if not module.is_suppressed(found.rule, found.line):
                    findings.append(found)
        return sorted(findings)

    def lint_source(self, source: str, path: str = "<string>") -> List[Finding]:
        """Lint raw source text (test and tooling convenience)."""
        return self.lint_module(ParsedModule.from_source(source, path))

    def run(self, paths: Sequence[str]) -> LintReport:
        """Lint every Python file under ``paths``."""
        report = LintReport()
        for file_path in iter_python_files(paths):
            try:
                source = file_path.read_text(encoding="utf-8")
            except OSError as error:
                report.errors.append(f"{file_path}: {error}")
                continue
            try:
                module = ParsedModule.from_source(source, str(file_path))
            except SyntaxError as error:
                report.errors.append(
                    f"{file_path}:{error.lineno or 0}: syntax error: "
                    f"{error.msg}"
                )
                continue
            report.findings.extend(self.lint_module(module))
            report.files_checked += 1
        report.findings.sort()
        return report


def render_text(report: LintReport) -> str:
    """The human-readable report (see :mod:`repro.devtools.reporting`)."""
    from repro.devtools.reporting import render_text as _render_text

    return _render_text(report, tool="repro lint")


def render_json(report: LintReport) -> str:
    """The machine-readable report (see :mod:`repro.devtools.reporting`)."""
    from repro.devtools.reporting import render_json as _render_json

    return _render_json(report, tool="repro lint")
