"""Command-line front-end of the lint subsystem.

Shared by the packaged CLI (``repro lint``) and the module entry point
(``python -m repro.devtools.lint``): both parse the same options and
delegate to :func:`run_lint`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, TextIO

from repro.devtools.lint.engine import EXIT_CLEAN, LintEngine
from repro.devtools.lint.rules import default_rules
from repro.devtools.reporting import OUTPUT_FORMATS, renderer_for

#: Paths linted when none are given on the command line.
DEFAULT_PATHS = ("src",)


def list_rules_text() -> str:
    """A table of every registered rule name and description."""
    rules = default_rules()
    width = max(len(rule.name) for rule in rules)
    lines = [f"{rule.name:<{width}}  {rule.description}" for rule in rules]
    lines.append(
        "\nsuppress a finding inline with: # repro-lint: disable=<rule>"
    )
    return "\n".join(lines)


def run_lint(
    paths: Sequence[str],
    output_format: str = "text",
    stream: Optional[TextIO] = None,
) -> int:
    """Lint ``paths`` and print a report; returns the exit code."""
    out = stream if stream is not None else sys.stdout
    engine = LintEngine(default_rules())
    report = engine.run(list(paths))
    renderer = renderer_for(output_format)
    print(renderer(report, "repro lint"), file=out)
    return report.exit_code


def build_parser(prog: str = "repro lint") -> argparse.ArgumentParser:
    """The argument parser shared by both entry points."""
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Domain-aware static analysis: enforce the paper's phase, "
            "predictor and determinism invariants at lint time."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=OUTPUT_FORMATS,
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every registered rule and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.devtools.lint``."""
    args = build_parser(prog="python -m repro.devtools.lint").parse_args(argv)
    if args.list_rules:
        print(list_rules_text())
        return EXIT_CLEAN
    return run_lint(args.paths, output_format=args.format)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
