"""Domain-aware static analysis for the reproduction.

An AST-based lint engine plus six domain rules enforcing invariants the
paper states but Python cannot check at runtime — phase ids in 1..6
(Table 1), the predictor observe/predict contract, replayable
determinism, float-comparison hygiene, mutable-default hygiene, and
unit-documented power/frequency APIs.

Run it as ``repro lint [paths...]`` or ``python -m repro.devtools.lint``;
suppress a finding inline with ``# repro-lint: disable=<rule>``.
"""

from repro.devtools.lint.cli import main, run_lint
from repro.devtools.lint.engine import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    Finding,
    LintEngine,
    LintReport,
    LintRule,
    ParsedModule,
    RuleVisitor,
    register_rule,
    registered_rules,
    render_json,
    render_text,
)
from repro.devtools.lint.rules import default_rules

__all__ = [
    "EXIT_CLEAN",
    "EXIT_ERROR",
    "EXIT_FINDINGS",
    "Finding",
    "LintEngine",
    "LintReport",
    "LintRule",
    "ParsedModule",
    "RuleVisitor",
    "default_rules",
    "main",
    "register_rule",
    "registered_rules",
    "render_json",
    "render_text",
    "run_lint",
]
