"""Whole-program static analysis for the reproduction (``repro analyze``).

Where :mod:`repro.devtools.lint` checks one file at a time, this
package builds a project-wide view — a module index with dotted names,
an import graph that distinguishes module-scope from deferred imports,
and a best-effort call graph — and runs cross-module analyses on top:

* ``checkpoint-completeness`` — every mutable field round-trips
  through the class's export/restore checkpoint pair;
* ``async-blocking`` — no blocking primitive is reachable from the
  asyncio serve path, interprocedurally;
* ``determinism-taint`` — wall-clock/random/env values never flow into
  persisted outputs, digests, cache keys, or wire payloads;
* ``layering`` — the import DAG (substrate below kernel below
  offline/online layers) plus module-scope cycle detection;
* ``protocol-conformance`` — wire ops dispatched exactly once, error
  codes declared and produced, every op exercised by loadgen.

Findings share the linter's report shape and exit codes; suppressions
require a justification (``# repro-analyze: disable=<rule> -- <why>``).
See ``docs/static_analysis.md`` for the architecture and rule
catalogue.
"""

from repro.devtools.analyze.callgraph import CallGraph, CallSite, FunctionInfo
from repro.devtools.analyze.cli import main, run_analyze
from repro.devtools.analyze.engine import (
    Analysis,
    AnalyzeEngine,
    Suppression,
    parse_analyze_suppressions,
    register_analysis,
    registered_analyses,
)
from repro.devtools.analyze.analyses import default_analyses
from repro.devtools.analyze.project import (
    ImportEdge,
    Project,
    ProjectModule,
    load_project,
)

__all__ = [
    "Analysis",
    "AnalyzeEngine",
    "CallGraph",
    "CallSite",
    "FunctionInfo",
    "ImportEdge",
    "Project",
    "ProjectModule",
    "Suppression",
    "default_analyses",
    "load_project",
    "main",
    "parse_analyze_suppressions",
    "register_analysis",
    "registered_analyses",
    "run_analyze",
]
