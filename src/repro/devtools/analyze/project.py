"""Whole-program project model: parsed modules, dotted names, imports.

The per-file linter (:mod:`repro.devtools.lint`) sees one module at a
time; the analyses in :mod:`repro.devtools.analyze` need the *project*:
which modules exist, what each one imports (and whether the import is
executed at module scope or deferred into a function body), and which
top-level symbols each module defines.  :class:`Project` is that view,
built once and shared by every analysis.

Module names are derived from the filesystem: a file belongs to the
dotted package spelled by the chain of ``__init__.py`` directories above
it (``src/repro/serve/protocol.py`` → ``repro.serve.protocol``).  Tests
build projects from in-memory sources via :meth:`Project.from_sources`.

Like the lint engine, everything here is stdlib-``ast`` only, so the
analyzer runs anywhere the simulator runs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.devtools.lint.engine import ParsedModule, iter_python_files

from repro.devtools.analyze.callgraph import CallGraph


@dataclass(frozen=True)
class ImportEdge:
    """One import statement in one module.

    Attributes:
        target: The imported module's dotted name (relative imports are
            resolved against the importing module's package).
        names: Names bound by a ``from target import a, b`` statement
            (empty for a plain ``import target``).
        line: 1-based line of the import statement.
        deferred: Whether the import sits inside a function body (a lazy
            import, executed at call time) rather than at module scope.
    """

    target: str
    names: Tuple[str, ...]
    line: int
    deferred: bool


@dataclass(frozen=True)
class ProjectModule:
    """One module of the project: dotted name, parse, import edges."""

    name: str
    parsed: ParsedModule
    imports: Tuple[ImportEdge, ...]

    @property
    def parts(self) -> Tuple[str, ...]:
        """The dotted name split into components."""
        return tuple(self.name.split("."))

    @property
    def path(self) -> str:
        """The module's file path as given to the engine."""
        return self.parsed.path


def module_name_for(path: Path) -> str:
    """The dotted module name the filesystem implies for ``path``.

    Walks up from the file while ``__init__.py`` marks each directory as
    a package.  A file outside any package is its bare stem.
    """
    parts: List[str] = []
    if path.name != "__init__.py":
        parts.append(path.stem)
    directory = path.parent
    while (directory / "__init__.py").is_file():
        parts.append(directory.name)
        parent = directory.parent
        if parent == directory:  # filesystem root
            break
        directory = parent
    if not parts:  # a bare __init__.py outside any package chain
        parts.append(path.parent.name)
    return ".".join(reversed(parts))


def _collect_imports(module_name: str, tree: ast.Module) -> Tuple[ImportEdge, ...]:
    """Every import in ``tree``, marked deferred when inside a function."""
    edges: List[ImportEdge] = []
    package = module_name.rsplit(".", 1)[0] if "." in module_name else ""

    def resolve_relative(level: int, target: Optional[str]) -> Optional[str]:
        if level == 0:
            return target
        base_parts = package.split(".") if package else []
        # level=1 is the current package; each extra level climbs one.
        climb = level - 1
        if climb > len(base_parts):
            return None
        base = base_parts[: len(base_parts) - climb]
        if target:
            base = base + target.split(".")
        return ".".join(base) if base else None

    def is_type_checking_guard(node: ast.AST) -> bool:
        # `if TYPE_CHECKING:` blocks never execute at runtime, so their
        # imports are deferred for layering/cycle purposes.
        if not isinstance(node, ast.If):
            return False
        test = node.test
        if isinstance(test, ast.Name):
            return test.id == "TYPE_CHECKING"
        if isinstance(test, ast.Attribute):
            return test.attr == "TYPE_CHECKING"
        return False

    def visit(node: ast.AST, deferred: bool) -> None:
        for child in ast.iter_child_nodes(node):
            child_deferred = deferred or isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ) or is_type_checking_guard(child)
            if isinstance(child, ast.Import):
                for alias in child.names:
                    edges.append(
                        ImportEdge(
                            target=alias.name,
                            names=(),
                            line=child.lineno,
                            deferred=deferred,
                        )
                    )
            elif isinstance(child, ast.ImportFrom):
                target = resolve_relative(child.level, child.module)
                if target is not None:
                    edges.append(
                        ImportEdge(
                            target=target,
                            names=tuple(alias.name for alias in child.names),
                            line=child.lineno,
                            deferred=deferred,
                        )
                    )
            visit(child, child_deferred)

    visit(tree, False)
    return tuple(edges)


class Project:
    """The whole-program view every cross-module analysis runs on."""

    def __init__(self, modules: Sequence[ProjectModule]) -> None:
        self._modules: Dict[str, ProjectModule] = {}
        for module in modules:
            self._modules[module.name] = module
        self._by_path: Dict[str, ProjectModule] = {
            module.path: module for module in self._modules.values()
        }
        self._callgraph: Optional[CallGraph] = None

    # -- construction -------------------------------------------------------

    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "Project":
        """Build a project from ``{dotted_name: source}`` (test helper).

        Raises:
            SyntaxError: When a source does not parse.
        """
        modules = []
        for name, source in sorted(sources.items()):
            path = name.replace(".", "/") + ".py"
            parsed = ParsedModule.from_source(source, path)
            modules.append(
                ProjectModule(
                    name=name,
                    parsed=parsed,
                    imports=_collect_imports(name, parsed.tree),
                )
            )
        return cls(modules)

    # -- lookup -------------------------------------------------------------

    def modules(self) -> Tuple[ProjectModule, ...]:
        """Every module, in sorted dotted-name order."""
        return tuple(
            self._modules[name] for name in sorted(self._modules)
        )

    def get(self, name: str) -> Optional[ProjectModule]:
        """The module with exactly this dotted name, if present."""
        return self._modules.get(name)

    def by_path(self, path: str) -> Optional[ProjectModule]:
        """The module parsed from ``path``, if present."""
        return self._by_path.get(path)

    def find_suffix(self, suffix: str) -> Optional[ProjectModule]:
        """The unique module whose dotted name ends with ``suffix``.

        Used to locate well-known modules (``serve.protocol``,
        ``serve.loadgen``) in both the real tree and fixture projects.
        Returns ``None`` when absent or ambiguous.
        """
        matches = [
            module
            for name, module in self._modules.items()
            if name == suffix or name.endswith("." + suffix)
        ]
        if len(matches) == 1:
            return matches[0]
        return None

    def is_internal(self, dotted: str) -> bool:
        """Whether ``dotted`` names a project module (or package)."""
        if dotted in self._modules:
            return True
        prefix = dotted + "."
        return any(name.startswith(prefix) for name in self._modules)

    @property
    def callgraph(self) -> CallGraph:
        """The project call graph, built on first use and cached."""
        if self._callgraph is None:
            self._callgraph = CallGraph.build(self)
        return self._callgraph


def load_project(
    paths: Sequence[str],
) -> Tuple[Project, List[str], int]:
    """Parse every Python file under ``paths`` into a project.

    Returns ``(project, errors, files_checked)``; unreadable or
    syntactically invalid files are reported in ``errors`` and excluded
    from the project rather than aborting the build.
    """
    modules: List[ProjectModule] = []
    errors: List[str] = []
    seen: Dict[str, str] = {}
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as error:
            errors.append(f"{file_path}: {error}")
            continue
        try:
            parsed = ParsedModule.from_source(source, str(file_path))
        except SyntaxError as error:
            errors.append(
                f"{file_path}:{error.lineno or 0}: syntax error: {error.msg}"
            )
            continue
        name = module_name_for(file_path)
        if name in seen:
            errors.append(
                f"{file_path}: module name {name!r} already provided by "
                f"{seen[name]}"
            )
            continue
        seen[name] = str(file_path)
        modules.append(
            ProjectModule(
                name=name,
                parsed=parsed,
                imports=_collect_imports(name, parsed.tree),
            )
        )
    return Project(modules), errors, len(modules)


def iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[str, Optional[str], ast.AST]]:
    """Yield ``(qualname, class_name, node)`` for every function in a module.

    Nested functions carry dotted qualnames (``outer.inner``);
    ``class_name`` is the *innermost* enclosing class, or ``None`` for
    plain functions.
    """

    def walk(
        node: ast.AST, prefix: str, class_name: Optional[str]
    ) -> Iterator[Tuple[str, Optional[str], ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, class_name, child
                yield from walk(child, qualname + ".", class_name)
            elif isinstance(child, ast.ClassDef):
                yield from walk(
                    child, f"{prefix}{child.name}.", child.name
                )

    yield from walk(tree, "", None)
