"""Protocol conformance: ops and error codes handled exactly once.

The wire protocol is the serve tier's public contract: every request
type (``op``) in ``serve/protocol.py`` must be dispatched by exactly
one ``_op_<name>`` handler, every error code must be declared in the
module's ``ERROR_CODES`` registry and actually produced somewhere in
the serve package, and every op must be exercised by the load
generator so protocol regressions cannot hide behind untested request
types.

Concretely, against the module whose dotted name ends in
``serve.protocol``:

1. every key in the ``_OPS`` dispatch table maps to a handler named
   ``_op_<key>`` (naming is the auditable 1:1 link between wire op and
   implementation);
2. every ``_op_*`` function is registered in ``_OPS`` exactly once —
   an unregistered handler is dead protocol surface;
3. duplicate ``_OPS`` keys (silent dict-literal override) are flagged;
4. every error code passed to ``_ProtocolError``/``_error``/
   ``error_response`` anywhere in the serve package appears in
   ``ERROR_CODES``, and every declared code is produced somewhere
   (no phantom codes in the docs/clients);
5. every op name appears as a string in the ``serve.loadgen`` module —
   the generator's verify mode is the protocol's executable spec.

Projects without a ``serve.protocol`` module (fixture trees for other
analyses) are skipped entirely.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.lint.engine import Finding

from repro.devtools.analyze.callgraph import dotted_parts
from repro.devtools.analyze.engine import Analysis, register_analysis
from repro.devtools.analyze.project import Project, ProjectModule

#: Handler-name prefix that links an op to its implementation.
HANDLER_PREFIX = "_op_"

#: Call names whose first string argument is an error code.
ERROR_EMITTERS: Tuple[str, ...] = (
    "_ProtocolError",
    "_error",
    "error_response",
)

#: Name of the declared error-code registry in the protocol module.
ERROR_REGISTRY = "ERROR_CODES"


def _find_ops_table(
    tree: ast.Module,
) -> Optional[Tuple[ast.AST, List[Tuple[str, int, Optional[str]]]]]:
    """The ``_OPS`` dict literal: (node, [(op, line, handler_name)])."""
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "_OPS"
            and isinstance(stmt.value, ast.Dict)
        ):
            entries: List[Tuple[str, int, Optional[str]]] = []
            for key, value in zip(stmt.value.keys, stmt.value.values):
                if not (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                ):
                    continue
                handler = value.id if isinstance(value, ast.Name) else None
                entries.append((key.value, key.lineno, handler))
            return stmt, entries
    return None


def _declared_error_codes(
    tree: ast.Module,
) -> Optional[Tuple[int, Tuple[str, ...]]]:
    """The ``ERROR_CODES`` declaration: (line, codes)."""
    for stmt in tree.body:
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == ERROR_REGISTRY
                and isinstance(value, (ast.Tuple, ast.List, ast.Set))
            ):
                codes = tuple(
                    elt.value
                    for elt in value.elts
                    if isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)
                )
                return stmt.lineno, codes
    return None


def _emitted_codes(
    module: ProjectModule,
) -> Iterator[Tuple[str, int, int]]:
    """Every ``(code, line, col)`` passed to an error emitter."""
    for node in ast.walk(module.parsed.tree):
        if not isinstance(node, ast.Call):
            continue
        parts = dotted_parts(node.func)
        name = parts[-1] if parts else None
        if name not in ERROR_EMITTERS:
            continue
        if not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            yield first.value, node.lineno, node.col_offset


def _string_constants(tree: ast.Module) -> Set[str]:
    return {
        node.value
        for node in ast.walk(tree)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


@register_analysis
class ProtocolConformanceAnalysis(Analysis):
    """Dispatch-table, error-code, and loadgen-coverage conformance."""

    name = "protocol-conformance"
    description = (
        "every wire op dispatched by exactly one _op_<name> handler, "
        "every error code declared in ERROR_CODES and produced, and "
        "every op exercised by the load generator"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        protocol = project.find_suffix("serve.protocol")
        if protocol is None:
            return
        tree = protocol.parsed.tree

        ops_table = _find_ops_table(tree)
        if ops_table is None:
            yield self.finding(
                path=protocol.path,
                line=1,
                col=0,
                message=(
                    "protocol module defines no _OPS dict literal; the "
                    "dispatch table must be statically auditable"
                ),
            )
        else:
            yield from self._check_dispatch(protocol, ops_table[1])
            yield from self._check_loadgen(project, protocol, ops_table[1])
        yield from self._check_error_codes(project, protocol)

    # -- dispatch table ------------------------------------------------------

    def _check_dispatch(
        self,
        protocol: ProjectModule,
        entries: List[Tuple[str, int, Optional[str]]],
    ) -> Iterator[Finding]:
        handlers: Dict[str, int] = {
            stmt.name: stmt.lineno
            for stmt in protocol.parsed.tree.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name.startswith(HANDLER_PREFIX)
        }
        seen_ops: Dict[str, int] = {}
        registered: Set[str] = set()
        for op, line, handler in entries:
            if op in seen_ops:
                yield self.finding(
                    path=protocol.path,
                    line=line,
                    col=0,
                    message=(
                        f"duplicate _OPS key {op!r} (first registered on "
                        f"line {seen_ops[op]}) silently overrides the "
                        "earlier handler"
                    ),
                )
                continue
            seen_ops[op] = line
            expected = HANDLER_PREFIX + op
            if handler is None:
                yield self.finding(
                    path=protocol.path,
                    line=line,
                    col=0,
                    message=(
                        f"op {op!r} is not dispatched to a named handler "
                        f"function; expected {expected}"
                    ),
                )
                continue
            registered.add(handler)
            if handler != expected:
                yield self.finding(
                    path=protocol.path,
                    line=line,
                    col=0,
                    message=(
                        f"op {op!r} is dispatched to {handler}; the handler "
                        f"must be named {expected} so the wire op and its "
                        "implementation stay auditable 1:1"
                    ),
                )
            elif handler not in handlers:
                yield self.finding(
                    path=protocol.path,
                    line=line,
                    col=0,
                    message=(
                        f"op {op!r} is dispatched to {handler}, which is "
                        "not defined in the protocol module"
                    ),
                )
        for handler, line in sorted(handlers.items()):
            if handler not in registered:
                yield self.finding(
                    path=protocol.path,
                    line=line,
                    col=0,
                    message=(
                        f"handler {handler} is not registered in _OPS: "
                        "dead protocol surface (register it or delete it)"
                    ),
                )

    # -- error codes ---------------------------------------------------------

    def _check_error_codes(
        self, project: Project, protocol: ProjectModule
    ) -> Iterator[Finding]:
        declared = _declared_error_codes(protocol.parsed.tree)
        if declared is None:
            yield self.finding(
                path=protocol.path,
                line=1,
                col=0,
                message=(
                    f"protocol module declares no {ERROR_REGISTRY} "
                    "tuple; error codes must be registered centrally"
                ),
            )
            return
        declared_line, declared_codes = declared
        serve_package = protocol.name.rsplit(".", 1)[0]
        used: Dict[str, Tuple[str, int, int]] = {}
        for module in project.modules():
            if not (
                module.name == serve_package
                or module.name.startswith(serve_package + ".")
            ):
                continue
            for code, line, col in _emitted_codes(module):
                used.setdefault(code, (module.path, line, col))
                if code not in declared_codes:
                    yield self.finding(
                        path=module.path,
                        line=line,
                        col=col,
                        message=(
                            f"error code {code!r} is not declared in "
                            f"{ERROR_REGISTRY}; clients cannot rely on "
                            "undeclared codes"
                        ),
                    )
        for code in declared_codes:
            if code not in used:
                yield self.finding(
                    path=protocol.path,
                    line=declared_line,
                    col=0,
                    message=(
                        f"declared error code {code!r} is never produced "
                        "by the serve package: phantom protocol surface"
                    ),
                )

    # -- loadgen coverage ----------------------------------------------------

    def _check_loadgen(
        self,
        project: Project,
        protocol: ProjectModule,
        entries: List[Tuple[str, int, Optional[str]]],
    ) -> Iterator[Finding]:
        loadgen = project.find_suffix("serve.loadgen")
        if loadgen is None:
            return
        exercised = _string_constants(loadgen.parsed.tree)
        for op, line, _ in entries:
            if op not in exercised:
                yield self.finding(
                    path=protocol.path,
                    line=line,
                    col=0,
                    message=(
                        f"op {op!r} is never exercised by the load "
                        "generator; extend loadgen's verify mode so every "
                        "request type has an executable spec"
                    ),
                )
