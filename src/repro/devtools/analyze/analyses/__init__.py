"""The built-in whole-program analyses.

Importing this package registers every analysis with the engine's
registry (the same import-time pattern the lint rules use); call
:func:`default_analyses` for ready-to-run instances.
"""

from __future__ import annotations

from typing import List

from repro.devtools.analyze.engine import Analysis, registered_analyses

# Imported for their registration side effects.
from repro.devtools.analyze.analyses import (  # noqa: F401
    async_blocking,
    checkpoint,
    layering,
    protocol,
    taint,
)

__all__ = ["default_analyses"]


def default_analyses() -> List[Analysis]:
    """One instance of every registered analysis, in name order."""
    return [
        analysis_class()
        for _, analysis_class in sorted(registered_analyses().items())
    ]
