"""Determinism taint: nondeterminism must not reach persisted outputs.

The repo's determinism contract (bit-for-bit equal results for equal
inputs) is what makes the paper's phase-prediction results comparable
across runs.  The per-file lint rule bans wall-clock and unseeded
randomness *syntactically* inside deterministic packages; this analysis
upgrades that to a flow-sensitive check over the whole project:

* **sources** — wall-clock reads (``time.time``/``monotonic``/...),
  ``datetime.now``-family calls, unseeded ``random`` module calls,
  ``os.urandom``, ``uuid.uuid1``/``uuid4``, ``secrets``, and
  environment reads (``os.environ``/``os.getenv``);
* **propagation** — through assignments, arithmetic, f-strings,
  containers, attribute/subscript access, and calls whose arguments are
  tainted; interprocedurally, a project function whose return value is
  tainted taints its call sites (computed to a fixpoint over the call
  graph);
* **sinks** — serialisation and digesting (``json.dumps``,
  ``pickle.dumps``, ``hashlib`` digests, ``zlib.crc32``), file
  persistence tails (``.write_text``/``.write_bytes``), and the
  project's own persistence/digest helpers (``cache_key``,
  ``serialize_response``, ``events_to_jsonl``, ...).

A tainted value reaching a sink means a timestamp, random draw, or
environment setting is being baked into a cache key, digest, wire
payload, or artifact — the exact channels the determinism suite
diffs across runs.  Wall-clock use that stays in telemetry (latency
histograms, progress logs) never reaches a sink and is not flagged.

Limitations (deliberate, documented): injected clocks
(``clock: Clock = time.monotonic`` passed as a *value*) are opaque —
the analysis tracks calls, not higher-order data flow; and taint
through ``self`` fields is tracked per class, not per instance.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.lint.engine import Finding

from repro.devtools.analyze.callgraph import (
    CallGraph,
    FunctionInfo,
    dotted_parts,
)
from repro.devtools.analyze.engine import Analysis, register_analysis
from repro.devtools.analyze.project import Project

#: Exact dotted calls producing nondeterministic values.
SOURCE_CALLS: Tuple[str, ...] = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.clock_gettime",
    "os.urandom",
    "os.getenv",
    "os.getpid",
    "uuid.uuid1",
    "uuid.uuid4",
)

#: Dotted prefixes producing nondeterministic values.
SOURCE_PREFIXES: Tuple[str, ...] = ("secrets.",)

#: ``datetime``-family method tails that read the wall clock.
SOURCE_DATETIME_TAILS: Tuple[str, ...] = ("now", "utcnow", "today")

#: Exact dotted sink calls (serialisation, digesting).
SINK_CALLS: Tuple[str, ...] = (
    "json.dump",
    "json.dumps",
    "pickle.dump",
    "pickle.dumps",
    "marshal.dump",
    "marshal.dumps",
    "zlib.crc32",
    "zlib.adler32",
)

#: ``hashlib`` constructors; ``.update``/digest calls on their results sink.
HASH_CONSTRUCTOR_PREFIX = "hashlib."

#: Method tails that persist their arguments to disk.
SINK_TAILS: Tuple[str, ...] = ("write_text", "write_bytes")

#: Project-local helpers that persist, digest, or serialise their inputs.
SINK_PROJECT_NAMES: Tuple[str, ...] = (
    "cache_key",
    "serialize_response",
    "serialize_request",
    "events_to_jsonl",
    "events_to_csv",
    "to_json",
    "to_jsonl",
)


def _call_target(
    graph: CallGraph,
    module_name: str,
    class_name: Optional[str],
    fid: str,
    call: ast.Call,
) -> Tuple[Optional[str], Optional[str], str]:
    site = graph.resolve_call(module_name, class_name, fid, call)
    return site.callee, site.external, site.tail


def _is_source_call(
    external: Optional[str], tail: str, call: ast.Call
) -> bool:
    if external is not None:
        if external in SOURCE_CALLS:
            return True
        if any(external.startswith(p) for p in SOURCE_PREFIXES):
            return True
        if external.startswith("random.") or external.startswith(
            "numpy.random."
        ):
            constructor = external.split(".")[-1]
            if constructor in (
                "Random",
                "RandomState",
                "default_rng",
                "seed",
            ) and (call.args or call.keywords):
                return False  # explicitly seeded: deterministic by contract
            return True
        if (
            external.startswith("datetime.")
            and tail in SOURCE_DATETIME_TAILS
        ):
            return True
    # datetime.datetime.now() resolved only as far as an attribute tail.
    if external is None and tail in SOURCE_DATETIME_TAILS and not call.args:
        parts = dotted_parts(call.func)
        if parts is not None and any(
            part in ("datetime", "date") for part in parts[:-1]
        ):
            return True
    return False


def _is_environ_read(node: ast.AST) -> bool:
    """``os.environ[...]`` / ``os.environ.get(...)`` style reads."""
    if isinstance(node, ast.Subscript):
        parts = dotted_parts(node.value)
        return parts is not None and parts[-1] == "environ"
    if isinstance(node, ast.Call):
        parts = dotted_parts(node.func)
        if parts is not None and len(parts) >= 2:
            return parts[-2] == "environ" and parts[-1] in ("get", "items")
    return False


class _FunctionTaint(ast.NodeVisitor):
    """One pass of flow-insensitive-within-loops taint over a function.

    Runs twice per function so names tainted late in a loop body taint
    uses earlier in the next iteration; findings are only emitted on the
    final pass.
    """

    def __init__(
        self,
        analysis: "DeterminismTaintAnalysis",
        graph: CallGraph,
        module_name: str,
        module_path: str,
        class_name: Optional[str],
        fid: str,
        tainted_functions: Set[str],
        tainted_fields: Dict[str, Set[str]],
        emit: bool,
    ) -> None:
        self.analysis = analysis
        self.graph = graph
        self.module_name = module_name
        self.module_path = module_path
        self.class_name = class_name
        self.fid = fid
        self.tainted_functions = tainted_functions
        self.tainted_fields = tainted_fields
        self.emit = emit
        self.tainted: Set[str] = set()
        self.hash_objects: Set[str] = set()
        self.returns_tainted = False
        self.findings: List[Finding] = []

    # -- expression taint ---------------------------------------------------

    def expr_tainted(self, node: Optional[ast.AST]) -> bool:
        if node is None:
            return False
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Call):
            return self.call_tainted(node)
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and self.class_name is not None
            ):
                cid = f"{self.module_name}.{self.class_name}"
                if node.attr in self.tainted_fields.get(cid, ()):
                    return True
            return self.expr_tainted(node.value)
        if isinstance(node, ast.Subscript):
            if _is_environ_read(node):
                return True
            return self.expr_tainted(node.value) or self.expr_tainted(
                node.slice
            )
        if isinstance(node, (ast.BinOp,)):
            return self.expr_tainted(node.left) or self.expr_tainted(
                node.right
            )
        if isinstance(node, ast.UnaryOp):
            return self.expr_tainted(node.operand)
        if isinstance(node, ast.BoolOp):
            return any(self.expr_tainted(value) for value in node.values)
        if isinstance(node, ast.IfExp):
            return self.expr_tainted(node.body) or self.expr_tainted(
                node.orelse
            )
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(self.expr_tainted(elt) for elt in node.elts)
        if isinstance(node, ast.Dict):
            return any(
                self.expr_tainted(part)
                for part in list(node.keys) + list(node.values)
                if part is not None
            )
        if isinstance(node, ast.JoinedStr):
            return any(self.expr_tainted(value) for value in node.values)
        if isinstance(node, ast.FormattedValue):
            return self.expr_tainted(node.value)
        if isinstance(node, ast.Starred):
            return self.expr_tainted(node.value)
        if isinstance(node, ast.Await):
            return self.expr_tainted(node.value)
        if isinstance(node, ast.Compare):
            return False  # comparisons yield booleans; control flow only
        return False

    def call_tainted(self, call: ast.Call) -> bool:
        callee, external, tail = _call_target(
            self.graph, self.module_name, self.class_name, self.fid, call
        )
        if _is_source_call(external, tail, call) or _is_environ_read(call):
            return True
        if callee is not None and callee in self.tainted_functions:
            return True
        args_tainted = any(
            self.expr_tainted(arg) for arg in call.args
        ) or any(
            self.expr_tainted(keyword.value) for keyword in call.keywords
        )
        receiver_tainted = self.expr_tainted(
            call.func.value
        ) if isinstance(call.func, ast.Attribute) else False
        return args_tainted or receiver_tainted

    # -- statements ---------------------------------------------------------

    def _bind(self, target: ast.AST, tainted: bool) -> None:
        if isinstance(target, ast.Name):
            if tainted:
                self.tainted.add(target.id)
            else:
                self.tainted.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, tainted)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, tainted)
        elif isinstance(target, ast.Attribute):
            if (
                tainted
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self.class_name is not None
            ):
                cid = f"{self.module_name}.{self.class_name}"
                self.tainted_fields.setdefault(cid, set()).add(target.attr)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_calls(node.value)
        tainted = self.expr_tainted(node.value)
        if isinstance(node.value, ast.Call):
            _, external, _ = _call_target(
                self.graph,
                self.module_name,
                self.class_name,
                self.fid,
                node.value,
            )
            if external is not None and external.startswith(
                HASH_CONSTRUCTOR_PREFIX
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.hash_objects.add(target.id)
        for target in node.targets:
            self._bind(target, tainted)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_calls(node.value)
            self._bind(node.target, self.expr_tainted(node.value))

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_calls(node.value)
        if self.expr_tainted(node.value):
            self._bind(node.target, True)

    def visit_Return(self, node: ast.Return) -> None:
        self._check_calls(node.value)
        if self.expr_tainted(node.value):
            self.returns_tainted = True

    def visit_For(self, node: ast.For) -> None:
        self._check_calls(node.iter)
        self._bind(node.target, self.expr_tainted(node.iter))
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            self._check_calls(item.context_expr)
            if item.optional_vars is not None:
                self._bind(
                    item.optional_vars,
                    self.expr_tainted(item.context_expr),
                )
        for stmt in node.body:
            self.visit(stmt)

    def visit_Expr(self, node: ast.Expr) -> None:
        self._check_calls(node.value)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return  # nested functions are analysed as their own scope

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return

    # -- sink detection -----------------------------------------------------

    def _check_calls(self, node: Optional[ast.AST]) -> None:
        """Check every call expression under ``node`` against the sinks."""
        if node is None:
            return
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self._check_sink(child)

    def _check_sink(self, call: ast.Call) -> None:
        if not self.emit:
            return
        callee, external, tail = _call_target(
            self.graph, self.module_name, self.class_name, self.fid, call
        )
        sink: Optional[str] = None
        if external is not None and external in SINK_CALLS:
            sink = external
        elif external is not None and external.startswith(
            HASH_CONSTRUCTOR_PREFIX
        ):
            # hashlib.sha256(payload) digests its argument directly.
            sink = external
        elif external is None and tail in SINK_TAILS:
            sink = f"<receiver>.{tail}"
        elif (
            external is None
            and tail in ("update", "hexdigest", "digest")
            and isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id in self.hash_objects
        ):
            sink = f"hashlib digest .{tail}"
        elif callee is not None and (
            callee.rsplit(".", 1)[-1].rsplit(":", 1)[-1]
            in SINK_PROJECT_NAMES
        ):
            sink = callee.rsplit(".", 1)[-1].rsplit(":", 1)[-1]
        elif callee is None and external is None and (
            tail in SINK_PROJECT_NAMES
        ):
            sink = f"<receiver>.{tail}"
        if sink is None:
            return
        # Only the serialised payload matters: json.dump(obj, fh) sinks
        # obj, not the (legitimately env-dependent) destination handle.
        if call.args:
            args: List[ast.AST] = [call.args[0]]
        else:
            args = [kw.value for kw in call.keywords]
        if any(self.expr_tainted(arg) for arg in args):
            self.findings.append(
                self.analysis.finding(
                    path=self.module_path,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        "nondeterministic value (wall clock, randomness, or "
                        f"environment) flows into {sink}; persisted outputs "
                        "and digests must be reproducible across runs"
                    ),
                )
            )


@register_analysis
class DeterminismTaintAnalysis(Analysis):
    """Nondeterministic values flowing into persisted outputs."""

    name = "determinism-taint"
    description = (
        "flow-sensitive taint from wall-clock/random/env sources into "
        "serialised payloads, digests, cache keys and persisted files"
    )

    #: Fixpoint iteration cap for interprocedural taint (call-graph depth).
    MAX_ROUNDS = 5

    def check(self, project: Project) -> Iterator[Finding]:
        graph = project.callgraph
        tainted_functions: Set[str] = set()
        tainted_fields: Dict[str, Set[str]] = {}

        for _ in range(self.MAX_ROUNDS):
            changed = False
            for fid, info in graph.functions.items():
                module = project.get(info.module)
                if module is None:
                    continue
                visitor = self._run(
                    graph,
                    info,
                    module.path,
                    tainted_functions,
                    tainted_fields,
                    emit=False,
                )
                if visitor.returns_tainted and fid not in tainted_functions:
                    tainted_functions.add(fid)
                    changed = True
            if not changed:
                break

        for fid in sorted(graph.functions):
            info = graph.functions[fid]
            module = project.get(info.module)
            if module is None:
                continue
            visitor = self._run(
                graph,
                info,
                module.path,
                tainted_functions,
                tainted_fields,
                emit=True,
            )
            for finding in visitor.findings:
                yield finding

    def _run(
        self,
        graph: CallGraph,
        info: FunctionInfo,
        module_path: str,
        tainted_functions: Set[str],
        tainted_fields: Dict[str, Set[str]],
        emit: bool,
    ) -> _FunctionTaint:
        visitor = _FunctionTaint(
            analysis=self,
            graph=graph,
            module_name=info.module,
            module_path=module_path,
            class_name=info.class_name,
            fid=info.fid,
            tainted_functions=tainted_functions,
            tainted_fields=tainted_fields,
            emit=False,
        )
        body = getattr(info.node, "body", [])
        for stmt in body:
            visitor.visit(stmt)
        if emit:
            visitor.emit = True
            visitor.findings = []
            for stmt in body:
                visitor.visit(stmt)
        return visitor
