"""Async-blocking detection: no synchronous stalls on the serve path.

The asyncio serve tier multiplexes every client on one event loop; a
single blocking call anywhere on a coroutine's call path stalls *all*
sessions, which is both a throughput cliff and — for the paper's
purposes — a perturbation of the measurements the service exists to
keep clean.

This analysis walks the project call graph from every ``async def``
defined in a serve package and flags blocking primitives
(``time.sleep``, ``subprocess``, synchronous file/socket I/O) reachable
through any chain of project-internal calls, not just those written
directly inside the coroutine.  Awaited async callees are traversed
too: a blocking call inside an awaited coroutine blocks the same loop.

Handing work to an executor (``loop.run_in_executor(None, fn)``) passes
``fn`` as a value, not a call, so that legitimate escape hatch creates
no edge and is never flagged.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.lint.engine import Finding

from repro.devtools.analyze.callgraph import CallSite
from repro.devtools.analyze.engine import Analysis, register_analysis
from repro.devtools.analyze.project import Project

#: Exact dotted calls that block the event loop.
BLOCKING_CALLS: Tuple[str, ...] = (
    "time.sleep",
    "os.system",
    "os.popen",
    "os.waitpid",
    "os.wait",
    "socket.create_connection",
    "socket.getaddrinfo",
    "urllib.request.urlopen",
    "select.select",
)

#: Dotted prefixes whose every call blocks (process spawning, sync HTTP).
BLOCKING_PREFIXES: Tuple[str, ...] = (
    "subprocess.",
    "requests.",
    "http.client.",
)

#: Bare-name builtins that block on file or terminal I/O.
BLOCKING_NAMES: Tuple[str, ...] = ("open", "input")

#: Method tails that perform synchronous file I/O on any receiver.
BLOCKING_TAILS: Tuple[str, ...] = (
    "read_text",
    "write_text",
    "read_bytes",
    "write_bytes",
)

#: Package directory names whose ``async def`` functions are roots.
ASYNC_ROOT_PACKAGES: Tuple[str, ...] = ("serve",)


def classify_blocking(site: CallSite) -> Optional[str]:
    """The blocking primitive a call site invokes, or ``None``."""
    if site.callee is not None:
        return None  # resolved project-internal call: traversed, not flagged
    if site.external is not None:
        if site.external in BLOCKING_CALLS:
            return site.external
        for prefix in BLOCKING_PREFIXES:
            if site.external.startswith(prefix):
                return site.external
        if site.external in BLOCKING_NAMES:
            return site.external
        # from-imported primitive called by bare name: "sleep" etc.
        for dotted in BLOCKING_CALLS:
            if site.external == dotted:
                return dotted
    if site.external is None and site.tail in BLOCKING_TAILS:
        return f"<receiver>.{site.tail}"
    return None


@register_analysis
class AsyncBlockingAnalysis(Analysis):
    """Blocking calls reachable from ``async def`` serve handlers."""

    name = "async-blocking"
    description = (
        "no blocking primitive (time.sleep, subprocess, sync file/socket "
        "I/O) may be reachable from an async def in the serve tier"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        graph = project.callgraph
        roots = [
            info
            for info in graph.async_functions()
            if any(
                part in ASYNC_ROOT_PACKAGES
                for part in info.module.split(".")
            )
        ]
        if not roots:
            return

        # Blocking sites grouped by enclosing function.
        blocking_in: Dict[str, List[Tuple[CallSite, str]]] = {}
        for fid, sites in graph.calls_from.items():
            for site in sites:
                primitive = classify_blocking(site)
                if primitive is not None:
                    blocking_in.setdefault(fid, []).append((site, primitive))

        # BFS from every async root; keep one shortest chain per function.
        chain_to: Dict[str, Tuple[str, ...]] = {}
        queue: "deque[str]" = deque()
        for root in roots:
            if root.fid not in chain_to:
                chain_to[root.fid] = (root.fid,)
                queue.append(root.fid)
        while queue:
            fid = queue.popleft()
            for site in graph.calls_from.get(fid, ()):
                callee = site.callee
                if callee is None or callee in chain_to:
                    continue
                chain_to[callee] = chain_to[fid] + (callee,)
                queue.append(callee)

        seen: Set[Tuple[str, int, int]] = set()
        for fid in sorted(chain_to):
            for site, primitive in blocking_in.get(fid, ()):
                info = graph.functions[fid]
                module = project.get(info.module)
                if module is None:
                    continue
                key = (module.path, site.line, site.col)
                if key in seen:
                    continue
                seen.add(key)
                chain = " -> ".join(
                    self._pretty(project, step) for step in chain_to[fid]
                )
                yield self.finding(
                    path=module.path,
                    line=site.line,
                    col=site.col,
                    message=(
                        f"blocking call {primitive}() is reachable from an "
                        f"async serve handler (call chain: {chain}); it "
                        "stalls the event loop for every connected client"
                    ),
                )

    @staticmethod
    def _pretty(project: Project, fid: str) -> str:
        module, _, qualname = fid.partition(":")
        short = module.split(".")[-1]
        return f"{short}.{qualname}"
