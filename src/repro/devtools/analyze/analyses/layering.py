"""Layering conformance: the import DAG the architecture promises.

The repo is layered so the measurement substrate stays deployable
without the serving stack, and the analysis/serving layers can evolve
without destabilising the simulator kernel:

* substrate — ``errors``, ``numerics``, ``pmc``, ``cpu``, ``power``,
  ``obs`` (tracing/metrics, importable from everywhere);
* kernel — ``core`` (phase detection, predictors, governors),
  ``workloads``, ``system``;
* offline — ``exec`` (experiment harness), then ``analysis``
  (post-processing and sweep orchestration, which may drive ``exec``);
* online — ``serve`` (the streaming service);
* tooling — ``cli``, ``devtools``.

Two deliberate deviations from a strict rank ordering are encoded
rather than suppressed, because working code defines the contract:
``obs`` sits *below* ``core`` (predictors emit trace events), so it is
``obs`` that must never import the kernel at module scope; and
``core`` may use ``analysis`` for offline statistics
(``predictors/duration.py``), while ``analysis`` must never reach into
the online or tooling layers.

Checks:

1. **forbidden imports** — each package's deny-list below, enforced on
   every import (deferred ones included, except where noted);
2. **module-scope discipline for obs** — ``obs`` may use ``analysis``
   and ``core`` helpers lazily inside functions but never at import
   time (its package docstring states this contract);
3. **devtools self-containment** — the analyzer may import only itself
   and ``errors``, so it can lint a broken tree without importing it;
4. **no module-level import cycles** — strongly connected components
   over the module-scope import graph.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.lint.engine import Finding

from repro.devtools.analyze.engine import Analysis, register_analysis
from repro.devtools.analyze.project import ImportEdge, Project, ProjectModule

#: Recognised layer (package) names, for locating a module's layer.
KNOWN_LAYERS: Tuple[str, ...] = (
    "analysis",
    "cli",
    "core",
    "cpu",
    "devtools",
    "errors",
    "exec",
    "learn",
    "numerics",
    "obs",
    "pmc",
    "power",
    "serve",
    "system",
    "workloads",
)

#: Packages a given layer may never import, at any scope.
FORBIDDEN_IMPORTS: Dict[str, Tuple[str, ...]] = {
    "core": ("serve", "exec", "cli", "devtools", "system"),
    "pmc": ("serve", "exec", "cli", "devtools", "core", "obs", "analysis"),
    "power": ("serve", "exec", "cli", "devtools", "core", "analysis"),
    "cpu": ("serve", "exec", "cli", "devtools", "core"),
    "workloads": ("serve", "exec", "cli", "devtools"),
    "obs": ("serve", "exec", "cli", "devtools", "system"),
    "system": ("serve", "cli", "devtools"),
    "analysis": ("serve", "cli", "devtools"),
    "exec": ("serve", "cli", "devtools"),
    "learn": ("serve", "cli", "devtools"),
    "serve": ("cli", "devtools", "system"),
}

#: Packages a layer may import only lazily (inside a function body).
DEFERRED_ONLY_IMPORTS: Dict[str, Tuple[str, ...]] = {
    "obs": ("core", "analysis"),
}

#: Layers devtools modules may import from (self-containment rule 3).
DEVTOOLS_ALLOWED: Tuple[str, ...] = ("devtools", "errors")


def layer_of(parts: Tuple[str, ...]) -> Optional[str]:
    """The first recognised layer name in a dotted-name's components."""
    for part in parts:
        if part in KNOWN_LAYERS:
            return part
    return None


def _target_layer(project: Project, target: str) -> Optional[str]:
    """The layer an import target belongs to, if it is project-internal."""
    if not project.is_internal(target):
        return None
    return layer_of(tuple(target.split(".")))


@register_analysis
class LayeringAnalysis(Analysis):
    """Imports that violate the architecture's layering contract."""

    name = "layering"
    description = (
        "enforce the import DAG: measurement substrate below the kernel, "
        "kernel below offline/online layers, tooling self-contained, and "
        "no module-scope import cycles"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules():
            yield from self._check_module(project, module)
        yield from self._check_cycles(project)

    def _check_module(
        self, project: Project, module: ProjectModule
    ) -> Iterator[Finding]:
        source_layer = layer_of(module.parts)
        if source_layer is None:
            return
        forbidden = FORBIDDEN_IMPORTS.get(source_layer, ())
        deferred_only = DEFERRED_ONLY_IMPORTS.get(source_layer, ())
        for edge in module.imports:
            target_layer = _target_layer(project, edge.target)
            if target_layer is None or target_layer == source_layer:
                continue
            if source_layer == "devtools":
                if target_layer not in DEVTOOLS_ALLOWED:
                    yield self.finding(
                        path=module.path,
                        line=edge.line,
                        col=0,
                        message=(
                            f"devtools must stay self-contained (only "
                            f"devtools and errors) so it can analyse a "
                            f"broken tree, but imports "
                            f"{edge.target!r} ({target_layer})"
                        ),
                    )
                continue
            if target_layer in forbidden:
                scope = "lazily" if edge.deferred else "at module scope"
                yield self.finding(
                    path=module.path,
                    line=edge.line,
                    col=0,
                    message=(
                        f"layer {source_layer!r} must not import layer "
                        f"{target_layer!r} ({edge.target!r}, imported "
                        f"{scope}): it breaks the substrate-below-kernel-"
                        "below-serving DAG"
                    ),
                )
            elif target_layer in deferred_only and not edge.deferred:
                yield self.finding(
                    path=module.path,
                    line=edge.line,
                    col=0,
                    message=(
                        f"layer {source_layer!r} may use "
                        f"{target_layer!r} only via deferred (in-function) "
                        f"imports, but imports {edge.target!r} at module "
                        "scope"
                    ),
                )

    # -- cycle detection ----------------------------------------------------

    def _check_cycles(self, project: Project) -> Iterator[Finding]:
        """Tarjan SCCs over the module-scope import graph."""
        graph: Dict[str, List[Tuple[str, ImportEdge]]] = {}
        for module in project.modules():
            edges: List[Tuple[str, ImportEdge]] = []
            for edge in module.imports:
                if edge.deferred:
                    continue
                target = self._resolve_module(project, edge)
                if target is not None and target != module.name:
                    edges.append((target, edge))
            graph[module.name] = edges

        index_counter = [0]
        stack: List[str] = []
        on_stack: Set[str] = set()
        indices: Dict[str, int] = {}
        lowlinks: Dict[str, int] = {}
        sccs: List[List[str]] = []

        def strongconnect(node: str) -> None:
            # Iterative Tarjan: recursion would overflow on deep chains.
            work: List[Tuple[str, int]] = [(node, 0)]
            while work:
                current, edge_index = work.pop()
                if edge_index == 0:
                    indices[current] = index_counter[0]
                    lowlinks[current] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(current)
                    on_stack.add(current)
                recurse = False
                edges = graph.get(current, [])
                for position in range(edge_index, len(edges)):
                    successor = edges[position][0]
                    if successor not in indices:
                        work.append((current, position + 1))
                        work.append((successor, 0))
                        recurse = True
                        break
                    if successor in on_stack:
                        lowlinks[current] = min(
                            lowlinks[current], indices[successor]
                        )
                if recurse:
                    continue
                if lowlinks[current] == indices[current]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == current:
                            break
                    if len(component) > 1:
                        sccs.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    lowlinks[parent] = min(
                        lowlinks[parent], lowlinks[current]
                    )

        for name in sorted(graph):
            if name not in indices:
                strongconnect(name)

        for component in sccs:
            anchor_name = component[0]
            module = project.get(anchor_name)
            if module is None:
                continue
            anchor_line = 1
            for target, edge in graph.get(anchor_name, []):
                if target in component:
                    anchor_line = edge.line
                    break
            yield self.finding(
                path=module.path,
                line=anchor_line,
                col=0,
                message=(
                    "module-scope import cycle: "
                    + " <-> ".join(component)
                    + "; break it with a deferred import or an interface "
                    "module"
                ),
            )

    @staticmethod
    def _resolve_module(
        project: Project, edge: ImportEdge
    ) -> Optional[str]:
        """The project module an edge lands on (follow from-imports)."""
        if project.get(edge.target) is not None:
            return edge.target
        # "from pkg import name": pkg/__init__ or the submodule pkg.name.
        for name in edge.names:
            submodule = f"{edge.target}.{name}"
            if project.get(submodule) is not None:
                return submodule
        if project.is_internal(edge.target):
            # a package without an indexed __init__ (or filtered file)
            candidate = project.get(edge.target + ".__init__")
            if candidate is not None:
                return candidate.name
        return None
