"""Checkpoint-completeness: every mutable field must survive a snapshot.

The paper's live-monitoring pipeline depends on lossless predictor
checkpointing: ``export_state``/``restore_state`` (predictors) and
``snapshot``/``from_snapshot`` (serve sessions) must round-trip *every*
piece of mutable state, or a restored instance silently diverges from
the live one — exactly the failure mode the serve tier's migration and
recovery paths cannot tolerate.

For each class defining both halves of a checkpoint pair, this analysis
collects every ``self.<attr>`` assignment across the class and demands
that each mutable field is

* **read somewhere in the export half** (it contributes to the
  checkpoint payload), and
* **written somewhere in the restore half** (a restored instance gets
  it back) — attribute stores on any receiver count, so classmethod
  restores writing ``session._x = ...`` are recognised.

Fields whose every assignment is a bare ``self._x = param`` copy of an
``__init__`` (or other method) parameter are *configuration wiring*:
they are reconstructed by the constructor on restore and are exempt.
Anything else — defaults, computed values, containers — is mutable
state and must round-trip or carry a justified suppression.

Pairs whose bodies are trivial (a docstring plus ``raise``) are
skipped: those are abstract-interface placeholders, not checkpoints.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.lint.engine import Finding

from repro.devtools.analyze.engine import Analysis, register_analysis
from repro.devtools.analyze.project import Project, ProjectModule

#: The recognised checkpoint pairs, as (export member, restore member).
CHECKPOINT_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("export_state", "restore_state"),
    ("snapshot", "from_snapshot"),
)


@dataclass
class _FieldRecord:
    """Where a field is first assigned and whether it is only wiring."""

    line: int
    col: int
    wiring_only: bool = True


def _is_trivial(func: ast.AST) -> bool:
    """A docstring-plus-``raise`` body: an interface default, not code."""
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    body = list(func.body)
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ):
        body = body[1:]
    return len(body) == 1 and isinstance(body[0], ast.Raise)


def _is_abstract(func: ast.AST) -> bool:
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    for decorator in func.decorator_list:
        name = decorator.attr if isinstance(decorator, ast.Attribute) else (
            decorator.id if isinstance(decorator, ast.Name) else ""
        )
        if name in ("abstractmethod", "abstractproperty"):
            return True
    return False


def _param_names(func: ast.AST) -> Set[str]:
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = func.args
    names = [arg.arg for arg in args.args + args.kwonlyargs]
    names.extend(arg.arg for arg in getattr(args, "posonlyargs", []))
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return set(names)


def _self_attr_target(node: ast.AST) -> Optional[str]:
    """The attribute name when ``node`` is a ``self.<attr>`` target."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _collect_fields(class_node: ast.ClassDef) -> Dict[str, _FieldRecord]:
    """Every ``self.<attr>`` assigned anywhere in the class's methods.

    A field stays ``wiring_only`` while its every assignment is a bare
    ``self._x = param`` copy of the enclosing method's parameter; any
    other assignment shape marks it as real mutable state.
    """
    fields: Dict[str, _FieldRecord] = {}
    for method in class_node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params = _param_names(method)
        for node in ast.walk(method):
            targets: List[Tuple[str, ast.AST, bool]] = []
            if isinstance(node, ast.Assign):
                is_bare_param = isinstance(
                    node.value, ast.Name
                ) and node.value.id in params
                for target in node.targets:
                    attr = _self_attr_target(target)
                    if attr is not None:
                        targets.append((attr, target, is_bare_param))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                attr = _self_attr_target(node.target)
                if attr is not None:
                    is_bare_param = isinstance(
                        node.value, ast.Name
                    ) and node.value.id in params
                    targets.append((attr, node.target, is_bare_param))
            elif isinstance(node, ast.AugAssign):
                attr = _self_attr_target(node.target)
                if attr is not None:
                    targets.append((attr, node.target, False))
            for attr, target, is_bare_param in targets:
                if attr.startswith("__"):
                    continue
                record = fields.get(attr)
                if record is None:
                    fields[attr] = _FieldRecord(
                        line=getattr(target, "lineno", method.lineno),
                        col=getattr(target, "col_offset", 0),
                        wiring_only=is_bare_param,
                    )
                else:
                    record.wiring_only = record.wiring_only and is_bare_param
    return fields


def _attrs_referenced(func: ast.AST, stores_only: bool) -> Set[str]:
    """Attribute names touched (on any receiver) inside ``func``.

    ``stores_only`` restricts to assignment targets — the restore half
    must *write* a field back, not merely mention it.  Any receiver
    expression counts (``self._x``, ``session._x``, ``state._x``) so
    both instance methods and classmethod restores are covered.
    """
    attrs: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute):
            if stores_only and not isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                continue
            attrs.add(node.attr)
    return attrs


@register_analysis
class CheckpointCompletenessAnalysis(Analysis):
    """Fields missing from an export/restore pair."""

    name = "checkpoint-completeness"
    description = (
        "every mutable self.<attr> field must be exported and restored "
        "by the class's checkpoint pair (export_state/restore_state, "
        "snapshot/from_snapshot)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules():
            yield from self._check_module(module)

    def _check_module(self, module: ProjectModule) -> Iterator[Finding]:
        for node in module.parsed.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: ProjectModule, class_node: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = {
            child.name: child
            for child in class_node.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for export_name, restore_name in CHECKPOINT_PAIRS:
            export = methods.get(export_name)
            restore = methods.get(restore_name)
            if export is None or restore is None:
                continue
            if _is_trivial(export) or _is_trivial(restore):
                continue
            if _is_abstract(export) or _is_abstract(restore):
                continue
            yield from self._check_pair(
                module, class_node, export, restore
            )

    def _check_pair(
        self,
        module: ProjectModule,
        class_node: ast.ClassDef,
        export: ast.AST,
        restore: ast.AST,
    ) -> Iterator[Finding]:
        assert isinstance(export, (ast.FunctionDef, ast.AsyncFunctionDef))
        assert isinstance(restore, (ast.FunctionDef, ast.AsyncFunctionDef))
        fields = _collect_fields(class_node)
        exported = _attrs_referenced(export, stores_only=False)
        restored = _attrs_referenced(restore, stores_only=True)
        for attr in sorted(fields):
            record = fields[attr]
            if record.wiring_only:
                continue
            missing: List[str] = []
            if attr not in exported:
                missing.append(f"not read by {export.name!r}")
            if attr not in restored:
                missing.append(f"not written by {restore.name!r}")
            if missing:
                yield self.finding(
                    path=module.path,
                    line=record.line,
                    col=record.col,
                    message=(
                        f"mutable field {class_node.name}.{attr} is "
                        f"{' and '.join(missing)}: a checkpointed instance "
                        "will silently diverge after restore"
                    ),
                )
