"""Command-line front-end of the whole-program analyzer.

Shared by the packaged CLI (``repro analyze``) and the module entry
point (``python -m repro.devtools.analyze``): both parse the same
options and delegate to :func:`run_analyze`.  Output formats and exit
codes match ``repro lint`` (0 clean, 1 findings, 2 errors), so CI can
gate on either tool the same way.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, TextIO

from repro.devtools.lint.engine import EXIT_CLEAN
from repro.devtools.reporting import OUTPUT_FORMATS, renderer_for

from repro.devtools.analyze.engine import AnalyzeEngine
from repro.devtools.analyze.analyses import default_analyses

#: Paths analyzed when none are given on the command line.
DEFAULT_PATHS = ("src",)


def list_analyses_text() -> str:
    """A table of every registered analysis name and description."""
    analyses = default_analyses()
    width = max(len(analysis.name) for analysis in analyses)
    lines = [
        f"{analysis.name:<{width}}  {analysis.description}"
        for analysis in analyses
    ]
    lines.append(
        "\nsuppress a finding inline with: "
        "# repro-analyze: disable=<rule> -- <justification>"
    )
    return "\n".join(lines)


def run_analyze(
    paths: Sequence[str],
    output_format: str = "text",
    stream: Optional[TextIO] = None,
) -> int:
    """Analyze ``paths`` as one project and print a report; returns exit code."""
    out = stream if stream is not None else sys.stdout
    engine = AnalyzeEngine(default_analyses())
    report = engine.run(list(paths))
    renderer = renderer_for(output_format)
    print(renderer(report, "repro analyze"), file=out)
    return report.exit_code


def build_parser(prog: str = "repro analyze") -> argparse.ArgumentParser:
    """The argument parser shared by both entry points."""
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Whole-program static analysis: checkpoint completeness, "
            "async-blocking reachability, determinism taint, layering "
            "and protocol conformance across src/repro."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories forming the project (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=OUTPUT_FORMATS,
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every registered analysis and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.devtools.analyze``."""
    args = build_parser(
        prog="python -m repro.devtools.analyze"
    ).parse_args(argv)
    if args.list_rules:
        print(list_analyses_text())
        return EXIT_CLEAN
    return run_analyze(args.paths, output_format=args.format)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
