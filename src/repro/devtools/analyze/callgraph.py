"""Best-effort whole-program call graph over a :class:`Project`.

Python cannot be resolved exactly without running it; this graph is a
conservative static approximation good enough for the reachability and
taint questions the analyses ask:

* ``name(...)`` resolves through the module symbol table — a top-level
  ``def``, a class (to its ``__init__``), or a ``from x import name``
  (followed into the project when ``x`` is internal, recorded as the
  external dotted path ``x.name`` otherwise);
* ``mod.attr(...)`` resolves through import aliases — internal modules
  yield project functions, external modules yield dotted paths like
  ``time.sleep``;
* ``self.method(...)`` / ``cls.method(...)`` resolve within the
  enclosing class, then through base classes that are themselves
  resolvable project classes;
* anything else (calls on arbitrary expressions, dynamic dispatch)
  stays unresolved but keeps its attribute *tail* so pattern-based
  checks (``.write_text(...)``) can still match.

Function ids are ``"<module>:<qualname>"`` (``repro.serve.shard:ShardedServer._route``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:  # circular at runtime: project builds the callgraph
    from repro.devtools.analyze.project import Project, ProjectModule


def dotted_parts(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """Flatten ``a.b.c`` into ``("a", "b", "c")``; None for other shapes."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return tuple(reversed(parts))
    return None


@dataclass(frozen=True)
class CallSite:
    """One call expression, with its best-effort resolution.

    Attributes:
        caller: Function id of the enclosing function.
        callee: Function id of the resolved *project* callee, if any.
        external: Dotted path of the resolved *external* callee
            (``time.sleep``), or the bare name for unresolved ``name(...)``
            calls; ``None`` for calls on arbitrary expressions.
        tail: The final name of the call target (``drain`` in
            ``writer.drain()``) — always available.
        line: 1-based source line of the call.
        col: 0-based column of the call.
    """

    caller: str
    callee: Optional[str]
    external: Optional[str]
    tail: str
    line: int
    col: int


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    fid: str
    module: str
    qualname: str
    name: str
    is_async: bool
    class_name: Optional[str]
    node: ast.AST
    line: int


@dataclass
class ClassInfo:
    """One class: its methods and (syntactic) base-class names."""

    module: str
    name: str
    methods: Dict[str, str] = field(default_factory=dict)
    bases: Tuple[str, ...] = ()


class _ModuleScope:
    """Name-resolution environment of one module."""

    def __init__(self) -> None:
        # name -> ("func", fid) | ("class", "module.Class") |
        #         ("module", dotted) | ("external", dotted)
        self.symbols: Dict[str, Tuple[str, str]] = {}


class CallGraph:
    """Functions, classes, and resolved call edges of a project."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.calls_from: Dict[str, List[CallSite]] = {}
        self._scopes: Dict[str, _ModuleScope] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, project: "Project") -> "CallGraph":
        """Index every function and resolve every call in ``project``."""
        graph = cls()
        for module in project.modules():
            graph._index_module(module)
        for module in project.modules():
            graph._bind_imports(project, module)
        for module in project.modules():
            graph._resolve_calls(module)
        return graph

    def _index_module(self, module: "ProjectModule") -> None:
        from repro.devtools.analyze.project import iter_functions

        scope = _ModuleScope()
        self._scopes[module.name] = scope
        for qualname, class_name, node in iter_functions(module.parsed.tree):
            assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            fid = f"{module.name}:{qualname}"
            self.functions[fid] = FunctionInfo(
                fid=fid,
                module=module.name,
                qualname=qualname,
                name=node.name,
                is_async=isinstance(node, ast.AsyncFunctionDef),
                class_name=class_name,
                node=node,
                line=node.lineno,
            )
            self.calls_from[fid] = []
            if "." not in qualname:
                scope.symbols[node.name] = ("func", fid)
        for stmt in module.parsed.tree.body:
            if isinstance(stmt, ast.ClassDef):
                cid = f"{module.name}.{stmt.name}"
                methods = {
                    child.name: f"{module.name}:{stmt.name}.{child.name}"
                    for child in stmt.body
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                }
                bases: List[str] = []
                for base in stmt.bases:
                    parts = dotted_parts(base)
                    if parts is not None:
                        bases.append(parts[-1])
                self.classes[cid] = ClassInfo(
                    module=module.name,
                    name=stmt.name,
                    methods=methods,
                    bases=tuple(bases),
                )
                scope.symbols[stmt.name] = ("class", cid)

    def _bind_imports(self, project: "Project", module: "ProjectModule") -> None:
        """Record what each imported name means inside ``module``."""
        scope = self._scopes[module.name]
        tree = module.parsed.tree
        for stmt in ast.walk(tree):
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.asname is not None:
                        target = alias.name
                    else:
                        # "import a.b" binds "a"; only a.b's root resolves.
                        target = alias.name.split(".")[0]
                    kind = "module" if project.is_internal(target) else "external"
                    scope.symbols.setdefault(bound, (kind, target))
            elif isinstance(stmt, ast.ImportFrom):
                target = self._absolute_from(module, stmt)
                if target is None:
                    continue
                internal = project.is_internal(target)
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    if internal:
                        resolved = self._lookup_in_module(
                            project, target, alias.name
                        )
                        if resolved is not None:
                            scope.symbols.setdefault(bound, resolved)
                            continue
                        submodule = f"{target}.{alias.name}"
                        if project.is_internal(submodule):
                            scope.symbols.setdefault(
                                bound, ("module", submodule)
                            )
                            continue
                        scope.symbols.setdefault(bound, ("module", target))
                    else:
                        scope.symbols.setdefault(
                            bound, ("external", f"{target}.{alias.name}")
                        )

    @staticmethod
    def _absolute_from(
        module: "ProjectModule", stmt: ast.ImportFrom
    ) -> Optional[str]:
        if stmt.level == 0:
            return stmt.module
        package_parts = list(module.parts[:-1])
        climb = stmt.level - 1
        if climb > len(package_parts):
            return None
        base = package_parts[: len(package_parts) - climb]
        if stmt.module:
            base = base + stmt.module.split(".")
        return ".".join(base) if base else None

    def _lookup_in_module(
        self, project: "Project", module_name: str, name: str
    ) -> Optional[Tuple[str, str]]:
        """Resolve ``name`` as a def/class at the top of ``module_name``."""
        if project.get(module_name) is None:
            return None
        fid = f"{module_name}:{name}"
        if fid in self.functions and "." not in name:
            return ("func", fid)
        cid = f"{module_name}.{name}"
        if cid in self.classes:
            return ("class", cid)
        return None

    # -- call resolution ----------------------------------------------------

    def _resolve_calls(self, module: "ProjectModule") -> None:
        from repro.devtools.analyze.project import iter_functions

        for qualname, class_name, node in iter_functions(module.parsed.tree):
            fid = f"{module.name}:{qualname}"
            sites = self.calls_from[fid]
            for call in self._iter_own_calls(node):
                sites.append(
                    self.resolve_call(module.name, class_name, fid, call)
                )

    @staticmethod
    def _iter_own_calls(func: ast.AST) -> List[ast.Call]:
        """Call expressions in ``func``, excluding nested function bodies."""
        calls: List[ast.Call] = []

        def visit(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                if isinstance(child, ast.Call):
                    calls.append(child)
                visit(child)

        visit(func)
        return calls

    def resolve_call(
        self,
        module_name: str,
        class_name: Optional[str],
        caller_fid: str,
        call: ast.Call,
    ) -> CallSite:
        """Resolve one call expression into a :class:`CallSite`."""
        scope = self._scopes[module_name]
        func = call.func
        callee: Optional[str] = None
        external: Optional[str] = None
        tail = "<call>"

        if isinstance(func, ast.Name):
            tail = func.id
            entry = scope.symbols.get(func.id)
            if entry is None:
                external = func.id  # unshadowed builtin or unknown name
            else:
                callee, external = self._entry_target(entry, ())
        else:
            parts = dotted_parts(func)
            if parts is not None:
                tail = parts[-1]
                head, rest = parts[0], parts[1:]
                if head in ("self", "cls") and class_name is not None:
                    if len(rest) == 1:
                        callee = self._method_of(
                            f"{module_name}.{class_name}", rest[0]
                        )
                else:
                    entry = scope.symbols.get(head)
                    if entry is not None:
                        callee, external = self._entry_target(entry, rest)
            elif isinstance(func, ast.Attribute):
                tail = func.attr

        return CallSite(
            caller=caller_fid,
            callee=callee,
            external=external,
            tail=tail,
            line=call.lineno,
            col=call.col_offset,
        )

    def _entry_target(
        self, entry: Tuple[str, str], rest: Tuple[str, ...]
    ) -> Tuple[Optional[str], Optional[str]]:
        """(callee_fid, external_dotted) for a symbol plus attribute tail."""
        kind, value = entry
        if kind == "func":
            if not rest:
                return value, None
            return None, None
        if kind == "class":
            if not rest:
                return self._method_of(value, "__init__"), None
            if len(rest) == 1:
                return self._method_of(value, rest[0]), None
            return None, None
        if kind == "module":
            if len(rest) == 1:
                fid = f"{value}:{rest[0]}"
                if fid in self.functions:
                    return fid, None
                cid = f"{value}.{rest[0]}"
                if cid in self.classes:
                    return self._method_of(cid, "__init__"), None
            return None, None
        # external module or external name
        if rest:
            return None, value + "." + ".".join(rest)
        return None, value

    def _method_of(
        self, cid: str, method: str, _seen: Optional[Set[str]] = None
    ) -> Optional[str]:
        """Resolve a method by name on a class or its project bases."""
        seen = _seen if _seen is not None else set()
        if cid in seen:
            return None
        seen.add(cid)
        info = self.classes.get(cid)
        if info is None:
            return None
        fid = info.methods.get(method)
        if fid is not None:
            return fid
        for base_name in info.bases:
            entry = self._scopes[info.module].symbols.get(base_name)
            if entry is not None and entry[0] == "class":
                resolved = self._method_of(entry[1], method, seen)
                if resolved is not None:
                    return resolved
        return None

    # -- queries ------------------------------------------------------------

    def module_symbol(
        self, module_name: str, name: str
    ) -> Optional[Tuple[str, str]]:
        """The (kind, value) a bare name resolves to inside a module."""
        scope = self._scopes.get(module_name)
        if scope is None:
            return None
        return scope.symbols.get(name)

    def async_functions(self) -> List[FunctionInfo]:
        """Every ``async def`` in the project."""
        return [info for info in self.functions.values() if info.is_async]
