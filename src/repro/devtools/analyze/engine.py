"""Whole-program analysis engine: registry, suppressions, reports.

Mirrors the per-file lint engine's shape (same :class:`Finding` and
:class:`LintReport` types, same exit-code semantics) but runs
:class:`Analysis` objects over a whole :class:`Project` instead of
rules over single modules.

Suppression syntax
------------------

Cross-module findings assert *invariants* (lossless checkpoints, a
non-blocking serve path), so silencing one requires saying why::

    self._governor = self._build_governor(...)  # repro-analyze: disable=checkpoint-completeness -- rebuilt from config on restore

A ``repro-analyze: disable=`` comment **without** a ``-- <why>``
justification does not suppress anything; it is itself reported under
the ``suppression`` rule.  This is the mandatory-justification policy:
every silenced finding carries its reasoning in the diff, next to the
code it excuses.
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type

from repro.devtools.lint.engine import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    Finding,
    LintReport,
)

from repro.devtools.analyze.project import Project, load_project

__all__ = [
    "EXIT_CLEAN",
    "EXIT_ERROR",
    "EXIT_FINDINGS",
    "Analysis",
    "AnalyzeEngine",
    "Suppression",
    "parse_analyze_suppressions",
    "register_analysis",
    "registered_analyses",
]

#: Rule name under which malformed suppressions are reported.
SUPPRESSION_RULE = "suppression"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-analyze:\s*disable=([A-Za-z0-9_,\- ]+?)"
    r"(?:\s*--\s*(.*\S))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One inline ``repro-analyze`` suppression comment.

    Attributes:
        line: 1-based line the comment sits on (the suppressed line).
        rules: Rule names it names (``all`` matches every rule).
        justification: The text after ``--``; ``None`` when missing, in
            which case the suppression is inert and reported.
    """

    line: int
    rules: Tuple[str, ...]
    justification: Optional[str]

    @property
    def valid(self) -> bool:
        """Whether this suppression carries a justification."""
        return bool(self.justification)

    def matches(self, rule: str) -> bool:
        """Whether this (valid) suppression silences ``rule``."""
        return self.valid and (rule in self.rules or "all" in self.rules)


def parse_analyze_suppressions(source: str) -> Dict[int, Suppression]:
    """Map 1-based line numbers to their suppression comments."""
    suppressions: Dict[int, Suppression] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        if not rules:
            continue
        suppressions[lineno] = Suppression(
            line=lineno,
            rules=rules,
            justification=match.group(2),
        )
    return suppressions


class Analysis(ABC):
    """One whole-program analysis: inspects a project, yields findings.

    Class attributes:
        name: Stable identifier (reports, suppressions, ``--list-rules``).
        description: One-line summary shown by ``--list-rules``.
    """

    name: str = ""
    description: str = ""

    @abstractmethod
    def check(self, project: Project) -> Iterator[Finding]:
        """Yield every violation this analysis finds in ``project``."""

    def finding(
        self, path: str, line: int, col: int, message: str
    ) -> Finding:
        """Build a finding attributed to this analysis."""
        return Finding(
            path=path, line=line, col=col, rule=self.name, message=message
        )

    def __repr__(self) -> str:
        return f"<Analysis {self.name}>"


_REGISTRY: Dict[str, Type[Analysis]] = {}


def register_analysis(analysis_class: Type[Analysis]) -> Type[Analysis]:
    """Class decorator adding an analysis to the global registry.

    Raises:
        ValueError: On a missing or duplicate analysis name.
    """
    if not analysis_class.name:
        raise ValueError(f"analysis {analysis_class.__name__} has no name")
    existing = _REGISTRY.get(analysis_class.name)
    if existing is not None and existing is not analysis_class:
        raise ValueError(f"duplicate analysis name {analysis_class.name!r}")
    _REGISTRY[analysis_class.name] = analysis_class
    return analysis_class


def registered_analyses() -> Dict[str, Type[Analysis]]:
    """A copy of the analysis registry, keyed by name."""
    return dict(_REGISTRY)


class AnalyzeEngine:
    """Runs analyses over a project and aggregates a report.

    Args:
        analyses: Analysis instances to apply (default: every registered
            analysis, in name order).
    """

    def __init__(self, analyses: Sequence[Analysis] = ()) -> None:
        self._analyses: List[Analysis] = list(analyses)
        if not self._analyses:
            self._analyses = [
                analysis_class()
                for _, analysis_class in sorted(_REGISTRY.items())
            ]

    @property
    def analyses(self) -> Tuple[Analysis, ...]:
        """The analyses this engine applies, in order."""
        return tuple(self._analyses)

    def analyze_project(self, project: Project) -> List[Finding]:
        """Run every analysis; apply suppressions; report malformed ones."""
        suppressions_by_path: Dict[str, Dict[int, Suppression]] = {
            module.path: parse_analyze_suppressions(module.parsed.source)
            for module in project.modules()
        }
        findings: List[Finding] = []
        for analysis in self._analyses:
            for found in analysis.check(project):
                per_line = suppressions_by_path.get(found.path, {})
                suppression = per_line.get(found.line)
                if suppression is not None and suppression.matches(found.rule):
                    continue
                findings.append(found)
        for path, per_line in suppressions_by_path.items():
            for suppression in per_line.values():
                if not suppression.valid:
                    findings.append(
                        Finding(
                            path=path,
                            line=suppression.line,
                            col=0,
                            rule=SUPPRESSION_RULE,
                            message=(
                                "suppression without justification has no "
                                "effect; write '# repro-analyze: "
                                f"disable={','.join(suppression.rules)} "
                                "-- <why this is safe>'"
                            ),
                        )
                    )
        return sorted(findings)

    def run(self, paths: Sequence[str]) -> LintReport:
        """Analyze every Python file under ``paths`` as one project."""
        project, errors, files_checked = load_project(list(paths))
        report = LintReport(files_checked=files_checked, errors=errors)
        report.findings.extend(self.analyze_project(project))
        report.findings.sort()
        return report
