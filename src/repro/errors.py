"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration problems from runtime
simulation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters.

    Examples: a phase table whose bin edges are not monotonically
    increasing, a PMC programmed with an unknown event, or a DVFS request
    for a frequency the platform does not support.
    """


class SimulationError(ReproError):
    """The simulated machine reached an inconsistent state at runtime.

    This signals a bug in the caller's wiring of components (for example
    running a workload on a machine whose PMI handler was never
    registered) rather than bad input values.
    """


class CounterOverflowError(SimulationError):
    """A performance counter was advanced past its configured capacity
    without an interrupt handler being available to service the overflow.
    """
