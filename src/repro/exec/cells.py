"""Cell evaluators: the computations behind every sweep cell.

A *cell kind* is a named, pure function from an
:class:`~repro.exec.spec.ExperimentSpec` to a flat JSON-able metrics
mapping.  Kinds are registered in :data:`CELL_KINDS` so worker
processes can evaluate any spec after pickling it — the dispatch is by
name, never by closure.

Three kinds cover the paper's evaluation space:

* ``predictor_accuracy`` — replay a benchmark's ``Mem/Uop`` series
  through one named predictor (Figures 4/5 and the depth ablation);
* ``comparison`` — baseline-vs-managed machine runs under a named
  governor/policy (Figures 11-13);
* ``pinned_frequency`` — one run pinned at a single operating point
  (Figure 7).

Per-process series/trace memoisation: within one sweep a benchmark's
trace is generated exactly once per process and shared by every cell
that replays it (series generation costs ~6x a predictor evaluation),
regardless of how many PHT sizes or governors cross it.
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, List, Optional, Tuple, Union, cast

import numpy as np

from repro.analysis.accuracy import evaluate_predictor_batch
from repro.analysis.witnesses import spec_phase_witnesses
from repro.core.dvfs_policy import DVFSPolicy, derive_bounded_policy
from repro.core.governor import (
    Governor,
    PhasePredictionGovernor,
    ReactiveGovernor,
    StaticGovernor,
)
from repro.core.objectives import derive_objective_policy
from repro.core.phases import PhaseTable
from repro.core.predictors import GPHTPredictor, PhasePredictor, paper_predictor_suite
from repro.cpu.frequency import SpeedStepTable
from repro.errors import ConfigurationError
from repro.exec.spec import ExperimentSpec
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.system.metrics import ComparisonMetrics, RunResult
from repro.workloads.segments import WorkloadTrace
from repro.workloads.spec2000 import benchmark

#: One cell's result: a flat mapping of JSON-able scalars.
CellValue = Dict[str, Union[str, int, float, bool, None]]

#: A registered cell evaluator: spec + trace collector -> metrics.
CellEvaluator = Callable[[ExperimentSpec, Tracer], CellValue]

#: Registered cell evaluators by kind name.
CELL_KINDS: Dict[str, CellEvaluator] = {}


def register_cell_kind(
    name: str,
) -> Callable[[CellEvaluator], CellEvaluator]:
    """Class-of-computation registrar for :data:`CELL_KINDS`."""

    def decorate(fn: CellEvaluator) -> CellEvaluator:
        CELL_KINDS[name] = fn
        return fn

    return decorate


def evaluate_cell(
    spec: ExperimentSpec, tracer: Tracer = NULL_TRACER
) -> CellValue:
    """Evaluate one spec through its registered kind.

    This is the (picklable, module-level) function every runner backend
    calls, in-process or in a worker.  ``tracer`` records the runtime
    events of the cell's simulated runs (``repro run --trace`` uses it);
    worker processes always run with the default no-op tracer, since a
    live collector cannot cross a process boundary.  Tracing is
    zero-perturbation: the returned value is identical either way.
    """
    try:
        fn = CELL_KINDS[spec.kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown cell kind {spec.kind!r}; known: {sorted(CELL_KINDS)}"
        ) from None
    return fn(spec, tracer)


# ---------------------------------------------------------------------------
# Per-process workload memoisation (the "generate each trace once" audit)
# ---------------------------------------------------------------------------


@functools.lru_cache(maxsize=256)
def _mem_series(
    benchmark_name: str, n_intervals: int, seed: Optional[int]
) -> "np.ndarray":
    """One benchmark's ``Mem/Uop`` series, generated once per process.

    The array is marked read-only so the shared copy cannot be mutated
    by one cell under another cell's feet.
    """
    series = benchmark(benchmark_name).mem_series(n_intervals, seed=seed)
    series.flags.writeable = False
    return series


@functools.lru_cache(maxsize=64)
def _trace(
    benchmark_name: str, n_intervals: int, seed: Optional[int]
) -> WorkloadTrace:
    """One benchmark's workload trace, generated once per process."""
    return benchmark(benchmark_name).trace(n_intervals=n_intervals, seed=seed)


def clear_workload_memos() -> None:
    """Drop the per-process series/trace memos (test isolation hook)."""
    _mem_series.cache_clear()
    _trace.cache_clear()


def workload_memo_stats() -> Dict[str, int]:
    """Generation counts for the memoised workloads (observability)."""
    series_info = _mem_series.cache_info()
    trace_info = _trace.cache_info()
    return {
        "series_generated": series_info.misses,
        "series_reused": series_info.hits,
        "traces_generated": trace_info.misses,
        "traces_reused": trace_info.hits,
    }


# ---------------------------------------------------------------------------
# Named component factories (shared with the CLI)
# ---------------------------------------------------------------------------


def build_predictor(name: str) -> PhasePredictor:
    """Construct a predictor from its display name.

    Accepts every member of the paper's Figure 4 suite plus any
    ``GPHT_<depth>_<entries>`` configuration.
    """
    if name.startswith("GPHT_"):
        parts = name.split("_")
        if len(parts) == 3:
            try:
                return GPHTPredictor(int(parts[1]), int(parts[2]))
            except ValueError:
                pass
    for predictor in paper_predictor_suite():
        if predictor.name == name:
            return predictor
    known = [p.name for p in paper_predictor_suite()]
    raise ConfigurationError(
        f"unknown predictor {name!r}; known: {known} or GPHT_<depth>_<entries>"
    )


#: Governor registry names accepted by :func:`build_governor`.
GOVERNOR_NAMES: Tuple[str, ...] = ("gpht", "reactive")

#: Policy registry names accepted by :func:`build_policy`.
POLICY_NAMES: Tuple[str, ...] = ("table2", "bounded", "energy", "edp", "ed2p")


def build_policy(name: str) -> DVFSPolicy:
    """Construct a phase-to-DVFS policy from its registry name."""
    if name == "table2":
        return DVFSPolicy.paper_default()
    if name == "bounded":
        return derive_bounded_policy(
            0.05, witnesses_by_phase=spec_phase_witnesses()
        )
    if name in ("energy", "edp", "ed2p"):
        return derive_objective_policy(name)
    raise ConfigurationError(
        f"unknown policy {name!r}; known: table2, bounded, energy, edp, ed2p"
    )


def build_governor(
    governor: str,
    policy: str = "table2",
    gphr_depth: int = 8,
    pht_entries: int = 128,
    record_decisions: bool = True,
) -> Governor:
    """Construct a managed governor from registry names.

    ``record_decisions=False`` keeps the governor's memory bounded for
    long-running use (``repro.serve`` sessions); decisions are identical
    either way.
    """
    dvfs_policy = build_policy(policy)
    if governor == "gpht":
        return PhasePredictionGovernor(
            GPHTPredictor(gphr_depth, pht_entries),
            dvfs_policy,
            record_decisions=record_decisions,
        )
    if governor == "reactive":
        return ReactiveGovernor(
            dvfs_policy, record_decisions=record_decisions
        )
    raise ConfigurationError(
        f"unknown governor {governor!r}; known: gpht, reactive"
    )


def _phase_table(spec: ExperimentSpec) -> Optional[PhaseTable]:
    """Rebuild an optional custom phase table from spec parameters."""
    edges = spec.param("phase_edges")
    if edges is None:
        return None
    if not isinstance(edges, tuple):
        raise ConfigurationError(
            f"phase_edges must be a tuple of floats, got {edges!r}"
        )
    return PhaseTable(tuple(float(cast(float, e)) for e in edges))


# ---------------------------------------------------------------------------
# Cell kinds
# ---------------------------------------------------------------------------


@register_cell_kind("predictor_accuracy")
def _cell_predictor_accuracy(
    spec: ExperimentSpec, tracer: Tracer = NULL_TRACER
) -> CellValue:
    """Replay the benchmark's series through one named predictor."""
    predictor_name = spec.param("predictor")
    if not isinstance(predictor_name, str):
        raise ConfigurationError(
            f"predictor_accuracy needs a 'predictor' name, got {predictor_name!r}"
        )
    series = _mem_series(spec.benchmark, spec.n_intervals, spec.seed)
    predictor = build_predictor(predictor_name)
    # Batch path; bit-identical to the scalar evaluator (and delegates
    # back to it when tracing), so cached cell values stay compatible.
    result = evaluate_predictor_batch(
        predictor, series, _phase_table(spec), tracer=tracer
    )
    return {
        "predictor": result.predictor_name,
        "accuracy": result.accuracy,
        "misprediction_rate": result.misprediction_rate,
        "correct": result.correct,
        "total": result.total,
    }


def comparison_summary(
    comparison: ComparisonMetrics, managed: RunResult
) -> CellValue:
    """Flatten a baseline-vs-managed comparison to JSON-able scalars."""
    baseline = comparison.baseline
    return {
        "governor": managed.governor_name,
        "edp_improvement": comparison.edp_improvement,
        "power_savings": comparison.power_savings,
        "energy_savings": comparison.energy_savings,
        "performance_degradation": comparison.performance_degradation,
        "baseline_power_w": baseline.average_power_w,
        "managed_power_w": managed.average_power_w,
        "baseline_bips": baseline.bips,
        "managed_bips": managed.bips,
        "prediction_accuracy": managed.prediction_accuracy(),
        "transition_count": managed.transition_count,
        "handler_overhead_fraction": managed.handler_overhead_fraction,
        "n_intervals": len(managed.intervals),
    }


@register_cell_kind("comparison")
def _cell_comparison(
    spec: ExperimentSpec, tracer: Tracer = NULL_TRACER
) -> CellValue:
    """Baseline-vs-managed machine runs under a named governor.

    Only the managed run is traced — the baseline is pinned fastest and
    makes no decisions worth recording.
    """
    governor_name = spec.param("governor", "gpht")
    policy_name = spec.param("policy", "table2")
    if not isinstance(governor_name, str) or not isinstance(policy_name, str):
        raise ConfigurationError(
            "comparison needs string 'governor' and 'policy' parameters"
        )
    gphr_depth = int(cast(int, spec.param("gphr_depth", 8)))
    pht_entries = int(cast(int, spec.param("pht_entries", 128)))
    machine = spec.machine.build()
    trace = _trace(spec.benchmark, spec.n_intervals, spec.seed)
    baseline = machine.run(trace, StaticGovernor(machine.speedstep.fastest))
    managed = machine.run(
        trace,
        build_governor(governor_name, policy_name, gphr_depth, pht_entries),
        tracer=tracer,
    )
    value = comparison_summary(
        ComparisonMetrics(baseline=baseline, managed=managed), managed
    )
    value["policy"] = policy_name
    return value


#: Model names the ``learned_accuracy`` cell accepts.
LEARNED_MODELS: Tuple[str, ...] = ("tree", "markov", "gpht", "last_value")

#: Default seed for the training series of a ``learned_accuracy`` cell.
#: Deliberately distinct from the evaluation seed (``spec.seed``,
#: default ``None`` -> the benchmark's own seed), so learned models are
#: always scored on a held-out realisation of the workload.
DEFAULT_TRAIN_SEED = 101


@register_cell_kind("learned_accuracy")
def _cell_learned_accuracy(
    spec: ExperimentSpec, tracer: Tracer = NULL_TRACER
) -> CellValue:
    """Train a learned predictor, then score it on a held-out series.

    Parameters (all via ``spec.param``):

    * ``model`` — one of :data:`LEARNED_MODELS`; ``gpht`` and
      ``last_value`` skip training and serve as the table-lookup
      baselines of the accuracy-vs-overhead comparison;
    * ``train_intervals`` / ``train_seed`` — the training series
      (defaults: ``spec.n_intervals`` / :data:`DEFAULT_TRAIN_SEED`);
    * ``history_length``, ``max_depth``, ``min_samples_leaf`` (tree),
      ``order``, ``alpha`` (markov), ``gphr_depth``, ``pht_entries``
      (gpht) — model hyperparameters.

    ``overhead_units`` is the model's worst-case structure probes per
    prediction (tree depth, markov order, one GPHT lookup, zero for
    last-value) — a deterministic, cache-stable cost proxy that needs
    no wall-clock timing inside the cell.
    """
    # Imported lazily: repro.learn sits above exec in the layer order
    # and registers no cells of its own; only this evaluator needs it.
    from repro.core.predictors import LastValuePredictor
    from repro.learn.dataset import phase_dataset_from_series
    from repro.learn.predictors import (
        DecisionTreePhasePredictor,
        MarkovKPredictor,
    )

    model = spec.param("model")
    if model not in LEARNED_MODELS:
        raise ConfigurationError(
            f"learned_accuracy needs a 'model' in {LEARNED_MODELS}, got "
            f"{model!r}"
        )
    train_intervals = int(
        cast(int, spec.param("train_intervals", spec.n_intervals))
    )
    train_seed = int(cast(int, spec.param("train_seed", DEFAULT_TRAIN_SEED)))
    table = _phase_table(spec)
    trained = False
    overhead_units = 0.0
    predictor: PhasePredictor
    if model == "tree":
        history_length = int(cast(int, spec.param("history_length", 4)))
        dataset = phase_dataset_from_series(
            _mem_series(spec.benchmark, train_intervals, train_seed),
            history_length=history_length,
            phase_table=table,
        )
        tree_predictor = DecisionTreePhasePredictor(
            history_length=history_length
        )
        tree = tree_predictor.fit(
            dataset,
            max_depth=int(cast(int, spec.param("max_depth", 8))),
            min_samples_leaf=int(
                cast(int, spec.param("min_samples_leaf", 2))
            ),
        )
        predictor = tree_predictor
        overhead_units = float(tree.depth)
        trained = True
    elif model == "markov":
        order = int(cast(int, spec.param("order", 3)))
        dataset = phase_dataset_from_series(
            _mem_series(spec.benchmark, train_intervals, train_seed),
            history_length=max(order, 1),
            phase_table=table,
        )
        markov_predictor = MarkovKPredictor(
            order=order,
            alpha=float(cast(float, spec.param("alpha", 0.5))),
        )
        markov_predictor.fit(dataset)
        predictor = markov_predictor
        overhead_units = float(order)
        trained = True
    elif model == "gpht":
        predictor = GPHTPredictor(
            int(cast(int, spec.param("gphr_depth", 8))),
            int(cast(int, spec.param("pht_entries", 128))),
        )
        overhead_units = 1.0
    else:
        predictor = LastValuePredictor()
    series = _mem_series(spec.benchmark, spec.n_intervals, spec.seed)
    result = evaluate_predictor_batch(predictor, series, table, tracer=tracer)
    return {
        "model": model,
        "predictor": result.predictor_name,
        "accuracy": result.accuracy,
        "misprediction_rate": result.misprediction_rate,
        "correct": result.correct,
        "total": result.total,
        "overhead_units": overhead_units,
        "trained": trained,
        "train_intervals": train_intervals,
        "train_seed": train_seed,
    }


@register_cell_kind("pinned_frequency")
def _cell_pinned_frequency(
    spec: ExperimentSpec, tracer: Tracer = NULL_TRACER
) -> CellValue:
    """One run pinned at a single operating point (Figure 7 style)."""
    frequency_mhz = int(cast(int, spec.param("frequency_mhz", 0)))
    machine = spec.machine.build()
    matches = [
        point
        for point in machine.speedstep
        if point.frequency_mhz == frequency_mhz
    ]
    if not matches:
        known = [p.frequency_mhz for p in machine.speedstep]
        raise ConfigurationError(
            f"no operating point at {frequency_mhz} MHz; known: {known}"
        )
    point = matches[0]
    trace = _trace(spec.benchmark, spec.n_intervals, spec.seed)
    run = machine.run(
        trace, StaticGovernor(point), initial_point=point, tracer=tracer
    )
    records = [m.record for m in run.intervals]
    return {
        "frequency_mhz": frequency_mhz,
        "bips": run.bips,
        "power_w": run.average_power_w,
        "upc": sum(r.upc for r in records) / len(records),
        "mem_per_uop": sum(r.mem_per_uop for r in records) / len(records),
    }


def pinned_frequency_points() -> List[int]:
    """Default-platform operating frequencies, in table order."""
    return [point.frequency_mhz for point in SpeedStepTable()]
