"""Typed sweep and comparison-suite results.

These dataclasses replace the nested ``Dict[str, Dict[int, float]]``
blobs the sweep helpers used to return.  A result knows its axes, its
cells, the fixed parameters of the sweep and the provenance of its
execution (backend, cache hit-rate, timing), and serialises losslessly
through ``to_payload``/``from_payload``.

Migration shims: ``to_dict()`` renders the *old* nested-dict shape, and
dict-style access on the result object itself (``result["applu_in"]``,
iteration, ``len``) still works but emits a :class:`DeprecationWarning`
— see ``docs/execution_engine.md`` for the migration table.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ConfigurationError
from repro.exec.spec import CODE_VERSION

#: Scalar cell-metric values (JSON-able).
MetricValue = Union[str, int, float, bool, None]
#: One axis coordinate of a cell key.
KeyValue = Union[str, int, float]
#: Fixed sweep-parameter values (scalars or tuples of scalars).
ParameterValue = Union[MetricValue, Tuple[MetricValue, ...]]


def _parameter_from_json(value: Any) -> ParameterValue:
    """Restore tuple-valued parameters after a JSON round-trip."""
    if isinstance(value, list):
        return tuple(value)
    return value  # type: ignore[no-any-return]

@dataclass(frozen=True)
class Provenance:
    """How a result was produced (excluded from result equality).

    Attributes:
        runner: Backend identifier (``serial``, ``process-pool-4``,
            ``inline`` for non-engine computation).
        total_cells: Cells in the batch.
        cache_hits: Cells replayed from the result cache.
        executed: Cells actually computed.
        wall_seconds: Batch wall-clock.
        cell_seconds: Summed per-cell evaluation time.
        cache_corrupt: Cache entries found corrupt during the batch and
            quarantined (0 for results predating this field).
        code_version: Cache/code version tag at execution time.
    """

    runner: str
    total_cells: int
    cache_hits: int
    executed: int
    wall_seconds: float
    cell_seconds: float
    cache_corrupt: int = 0
    code_version: str = CODE_VERSION

    @property
    def hit_rate(self) -> float:
        """Fraction of cells served from the cache, in [0, 1]."""
        if self.total_cells == 0:
            return 0.0
        return self.cache_hits / self.total_cells

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready plain-dict form."""
        return {
            "runner": self.runner,
            "total_cells": self.total_cells,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "wall_seconds": self.wall_seconds,
            "cell_seconds": self.cell_seconds,
            "cache_corrupt": self.cache_corrupt,
            "code_version": self.code_version,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Provenance":
        """Inverse of :meth:`to_dict`."""
        return cls(
            runner=str(payload["runner"]),
            total_cells=int(payload["total_cells"]),
            cache_hits=int(payload["cache_hits"]),
            executed=int(payload["executed"]),
            wall_seconds=float(payload["wall_seconds"]),
            cell_seconds=float(payload["cell_seconds"]),
            cache_corrupt=int(payload.get("cache_corrupt", 0)),
            code_version=str(payload.get("code_version", CODE_VERSION)),
        )

    @classmethod
    def inline(cls, total_cells: int, wall_seconds: float) -> "Provenance":
        """Provenance for direct (non-engine) computation."""
        return cls(
            runner="inline",
            total_cells=total_cells,
            cache_hits=0,
            executed=total_cells,
            wall_seconds=wall_seconds,
            cell_seconds=wall_seconds,
        )


def _metrics_tuple(
    metrics: Mapping[str, MetricValue]
) -> Tuple[Tuple[str, MetricValue], ...]:
    return tuple(sorted(metrics.items()))


@dataclass(frozen=True)
class SweepCell:
    """One cell of a sweep: its coordinates and its metrics.

    Attributes:
        key: Axis coordinates, in the sweep's axis order.
        metrics: Sorted ``(name, value)`` metric pairs.
    """

    key: Tuple[KeyValue, ...]
    metrics: Tuple[Tuple[str, MetricValue], ...]

    @classmethod
    def create(
        cls,
        key: Sequence[KeyValue],
        metrics: Mapping[str, MetricValue],
    ) -> "SweepCell":
        """Build a cell from loose key/metrics collections."""
        return cls(key=tuple(key), metrics=_metrics_tuple(metrics))

    def metric(self, name: str) -> MetricValue:
        """Look up one metric by name."""
        for metric_name, value in self.metrics:
            if metric_name == name:
                return value
        raise ConfigurationError(
            f"cell {self.key} has no metric {name!r}; "
            f"known: {[m for m, _ in self.metrics]}"
        )

    def float_metric(self, name: str) -> float:
        """Look up one numeric metric by name."""
        value = self.metric(name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigurationError(
                f"metric {name!r} of cell {self.key} is not numeric: {value!r}"
            )
        return float(value)

    def metrics_dict(self) -> Dict[str, MetricValue]:
        """The metrics as a plain dict."""
        return dict(self.metrics)


@dataclass(frozen=True)
class SweepResult:
    """Typed outcome of one sweep.

    Attributes:
        name: Sweep identifier (``pht_entries``, ``frequencies``, ...).
        axes: Names of the key coordinates, e.g. ``("benchmark",
            "pht_entries")``.
        cells: All cells, in deterministic sweep order.
        parameters: Fixed sweep parameters as sorted ``(name, value)``
            pairs (e.g. ``gphr_depth``, ``n_intervals``); values are
            scalars or tuples of scalars.
        metric: Primary metric rendered by the legacy nested-dict shape
            (``None`` exposes each cell's full metrics mapping instead).
        provenance: Execution provenance; excluded from equality so
            serial, parallel and cache-replayed results compare equal.
    """

    name: str
    axes: Tuple[str, ...]
    cells: Tuple[SweepCell, ...]
    parameters: Tuple[Tuple[str, ParameterValue], ...] = ()
    metric: Optional[str] = None
    provenance: Optional[Provenance] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.axes:
            raise ConfigurationError("a sweep result needs at least one axis")
        for cell in self.cells:
            if len(cell.key) != len(self.axes):
                raise ConfigurationError(
                    f"cell key {cell.key} does not match axes {self.axes}"
                )

    # -- typed accessors ----------------------------------------------------

    def axis_values(self, axis: str) -> Tuple[KeyValue, ...]:
        """Distinct coordinates of one axis, in first-seen order."""
        try:
            position = self.axes.index(axis)
        except ValueError:
            raise ConfigurationError(
                f"unknown axis {axis!r}; axes: {self.axes}"
            ) from None
        seen: List[KeyValue] = []
        for cell in self.cells:
            value = cell.key[position]
            if value not in seen:
                seen.append(value)
        return tuple(seen)

    def cell(self, *key: KeyValue) -> SweepCell:
        """The cell at exact coordinates ``key``."""
        wanted = tuple(key)
        for cell in self.cells:
            if cell.key == wanted:
                return cell
        raise ConfigurationError(
            f"no cell at {wanted} in sweep {self.name!r}"
        )

    def value(self, *key: KeyValue, metric: Optional[str] = None) -> float:
        """One numeric metric at coordinates ``key``.

        Args:
            key: Axis coordinates.
            metric: Metric name (default: the sweep's primary metric).
        """
        name = metric if metric is not None else self.metric
        if name is None:
            raise ConfigurationError(
                f"sweep {self.name!r} has no primary metric; pass metric="
            )
        return self.cell(*key).float_metric(name)

    def parameter(
        self, name: str, default: ParameterValue = None
    ) -> ParameterValue:
        """Look up one fixed sweep parameter."""
        for key, value in self.parameters:
            if key == name:
                return value
        return default

    def with_provenance(self, provenance: Optional[Provenance]) -> "SweepResult":
        """A copy carrying different provenance."""
        return replace(self, provenance=provenance)

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> Dict[Any, Any]:
        """The legacy nested-dict shape of this sweep.

        Two axes with a primary metric give ``{row: {col: value}}`` (the
        old ``sweep_pht_entries`` shape); one axis without a primary
        metric gives ``{key: {metric: value}}`` (the old
        ``sweep_frequencies`` shape), and so on.
        """
        nested: Dict[Any, Any] = {}
        for cell in self.cells:
            payload: Any
            if self.metric is not None:
                payload = cell.metric(self.metric)
            else:
                payload = cell.metrics_dict()
            node = nested
            for coordinate in cell.key[:-1]:
                node = node.setdefault(coordinate, {})
            node[cell.key[-1]] = payload
        return nested

    @classmethod
    def from_dict(
        cls,
        nested: Mapping[Any, Any],
        name: str,
        axes: Sequence[str],
        metric: Optional[str] = None,
        parameters: Optional[Mapping[str, ParameterValue]] = None,
        provenance: Optional[Provenance] = None,
    ) -> "SweepResult":
        """Rebuild a result from its legacy nested-dict shape.

        Round-trips with :meth:`to_dict`:
        ``SweepResult.from_dict(r.to_dict(), r.name, r.axes, r.metric,
        dict(r.parameters)) == r``.
        """
        axes_tuple = tuple(axes)
        cells: List[SweepCell] = []

        def walk(node: Mapping[Any, Any], prefix: Tuple[KeyValue, ...]) -> None:
            depth = len(prefix)
            for coordinate, payload in node.items():
                key = prefix + (coordinate,)
                if depth + 1 < len(axes_tuple):
                    walk(payload, key)
                elif metric is not None:
                    cells.append(
                        SweepCell.create(key, {metric: payload})
                    )
                else:
                    cells.append(SweepCell.create(key, dict(payload)))

        walk(nested, ())
        return cls(
            name=name,
            axes=axes_tuple,
            cells=tuple(cells),
            parameters=tuple(sorted((parameters or {}).items())),
            metric=metric,
            provenance=provenance,
        )

    def to_payload(self) -> Dict[str, Any]:
        """Exact, lossless serialisation (inverse of :meth:`from_payload`)."""
        return {
            "name": self.name,
            "axes": list(self.axes),
            "metric": self.metric,
            "parameters": [[k, v] for k, v in self.parameters],
            "cells": [
                {"key": list(cell.key), "metrics": cell.metrics_dict()}
                for cell in self.cells
            ],
            "provenance": (
                self.provenance.to_dict() if self.provenance is not None else None
            ),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "SweepResult":
        """Inverse of :meth:`to_payload`."""
        provenance = payload.get("provenance")
        return cls(
            name=str(payload["name"]),
            axes=tuple(str(axis) for axis in payload["axes"]),
            cells=tuple(
                SweepCell(
                    key=tuple(cell["key"]),
                    metrics=_metrics_tuple(cell["metrics"]),
                )
                for cell in payload["cells"]
            ),
            parameters=tuple(
                (str(k), _parameter_from_json(v))
                for k, v in payload.get("parameters", [])
            ),
            metric=payload.get("metric"),
            provenance=(
                Provenance.from_dict(provenance)
                if provenance is not None
                else None
            ),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """The payload as a JSON string."""
        return json.dumps(self.to_payload(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        """Inverse of :meth:`to_json`."""
        return cls.from_payload(json.loads(text))


@dataclass(frozen=True)
class ComparisonCell:
    """One benchmark's baseline-vs-managed summary metrics.

    Attributes:
        benchmark: Benchmark name.
        metrics: Sorted ``(name, value)`` metric pairs (see
            :func:`repro.exec.cells.comparison_summary` for the keys).
    """

    benchmark: str
    metrics: Tuple[Tuple[str, MetricValue], ...]

    @classmethod
    def create(
        cls, benchmark: str, metrics: Mapping[str, MetricValue]
    ) -> "ComparisonCell":
        """Build a cell from a loose metrics mapping."""
        return cls(benchmark=benchmark, metrics=_metrics_tuple(metrics))

    def metric(self, name: str) -> MetricValue:
        """Look up one metric by name."""
        for metric_name, value in self.metrics:
            if metric_name == name:
                return value
        raise ConfigurationError(
            f"comparison cell {self.benchmark!r} has no metric {name!r}"
        )

    def float_metric(self, name: str) -> float:
        """Look up one numeric metric by name."""
        value = self.metric(name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigurationError(
                f"metric {name!r} of {self.benchmark!r} is not numeric: "
                f"{value!r}"
            )
        return float(value)

    def metrics_dict(self) -> Dict[str, MetricValue]:
        """The metrics as a plain dict."""
        return dict(self.metrics)

    @property
    def edp_improvement(self) -> float:
        """Fractional EDP improvement (positive = managed wins)."""
        return self.float_metric("edp_improvement")

    @property
    def power_savings(self) -> float:
        """Fractional mean-power reduction."""
        return self.float_metric("power_savings")

    @property
    def energy_savings(self) -> float:
        """Fractional energy reduction."""
        return self.float_metric("energy_savings")

    @property
    def performance_degradation(self) -> float:
        """Fractional BIPS loss of the managed run."""
        return self.float_metric("performance_degradation")

    @property
    def handler_overhead_fraction(self) -> float:
        """Fraction of run time spent in the PMI handler."""
        return self.float_metric("handler_overhead_fraction")

    @property
    def prediction_accuracy(self) -> float:
        """Online prediction accuracy of the managed run."""
        return self.float_metric("prediction_accuracy")


@dataclass(frozen=True)
class ComparisonSuiteResult:
    """Typed outcome of a baseline-vs-managed suite over benchmarks.

    Attributes:
        name: Suite identifier.
        governor: Managed governor registry name.
        policy: Policy registry name.
        n_intervals: Trace length per run.
        cells: Per-benchmark comparison summaries, in suite order.
        provenance: Execution provenance (excluded from equality).
    """

    name: str
    governor: str
    policy: str
    n_intervals: int
    cells: Tuple[ComparisonCell, ...]
    provenance: Optional[Provenance] = field(default=None, compare=False)

    @property
    def benchmarks(self) -> Tuple[str, ...]:
        """Benchmark names in suite order."""
        return tuple(cell.benchmark for cell in self.cells)

    def cell(self, benchmark: str) -> ComparisonCell:
        """One benchmark's summary."""
        for cell in self.cells:
            if cell.benchmark == benchmark:
                return cell
        raise ConfigurationError(
            f"no benchmark {benchmark!r} in suite {self.name!r}; "
            f"have: {list(self.benchmarks)}"
        )

    def value(self, benchmark: str, metric: str) -> float:
        """One numeric metric of one benchmark."""
        return self.cell(benchmark).float_metric(metric)

    def mean(self, metric: str) -> float:
        """Suite mean of one numeric metric."""
        if not self.cells:
            raise ConfigurationError(f"suite {self.name!r} has no cells")
        return sum(cell.float_metric(metric) for cell in self.cells) / len(
            self.cells
        )

    def to_dict(self) -> Dict[str, Dict[str, MetricValue]]:
        """Nested-dict shape: ``{benchmark: {metric: value}}``."""
        return {cell.benchmark: cell.metrics_dict() for cell in self.cells}

    @classmethod
    def from_dict(
        cls,
        nested: Mapping[str, Mapping[str, MetricValue]],
        name: str,
        governor: str,
        policy: str,
        n_intervals: int,
        provenance: Optional[Provenance] = None,
    ) -> "ComparisonSuiteResult":
        """Rebuild a suite from its :meth:`to_dict` shape."""
        return cls(
            name=name,
            governor=governor,
            policy=policy,
            n_intervals=n_intervals,
            cells=tuple(
                ComparisonCell.create(benchmark, dict(metrics))
                for benchmark, metrics in nested.items()
            ),
            provenance=provenance,
        )

    def to_payload(self) -> Dict[str, Any]:
        """Exact, lossless serialisation (inverse of :meth:`from_payload`)."""
        return {
            "name": self.name,
            "governor": self.governor,
            "policy": self.policy,
            "n_intervals": self.n_intervals,
            "cells": [
                {"benchmark": cell.benchmark, "metrics": cell.metrics_dict()}
                for cell in self.cells
            ],
            "provenance": (
                self.provenance.to_dict() if self.provenance is not None else None
            ),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ComparisonSuiteResult":
        """Inverse of :meth:`to_payload`."""
        provenance = payload.get("provenance")
        return cls(
            name=str(payload["name"]),
            governor=str(payload["governor"]),
            policy=str(payload["policy"]),
            n_intervals=int(payload["n_intervals"]),
            cells=tuple(
                ComparisonCell(
                    benchmark=str(cell["benchmark"]),
                    metrics=_metrics_tuple(cell["metrics"]),
                )
                for cell in payload["cells"]
            ),
            provenance=(
                Provenance.from_dict(provenance)
                if provenance is not None
                else None
            ),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """The payload as a JSON string."""
        return json.dumps(self.to_payload(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "ComparisonSuiteResult":
        """Inverse of :meth:`to_json`."""
        return cls.from_payload(json.loads(text))
