"""repro.exec — the parallel sweep execution engine.

Every headline figure in the paper is a *sweep*: a cross-product of
benchmarks, predictor configurations and operating conditions, each
cell of which is an independent, deterministic computation.  This
package turns that observation into infrastructure:

* :class:`ExperimentSpec` — a frozen, hashable description of one cell
  (benchmark, predictor/governor config, machine config, trace length,
  seed) with a stable content hash;
* :class:`Runner` — the scheduling interface, with
  :class:`SerialRunner` and :class:`ProcessPoolRunner` backends;
* :class:`ResultCache` — an on-disk content-addressed memo of completed
  cells keyed by spec hash + code version, so re-running a figure only
  computes the cells that changed;
* :class:`ExecutionEngine` — ties the three together and reports
  per-cell timing, completion counts and cache hit-rate through
  progress hooks;
* :class:`SweepResult` / :class:`ComparisonSuiteResult` — the typed
  result objects returned by :mod:`repro.analysis.sweeps` and
  :func:`repro.system.experiment.run_comparison_suite`.

Determinism is a hard contract: the same spec list produces bit-equal
results whether executed serially, across processes, or replayed from
the cache (see ``tests/exec/test_determinism.py``).
"""

from repro.exec.cache import CacheStats, NullCache, ResultCache, default_cache_dir
from repro.exec.cells import (
    CELL_KINDS,
    GOVERNOR_NAMES,
    POLICY_NAMES,
    build_governor,
    build_policy,
    build_predictor,
    evaluate_cell,
)
from repro.exec.engine import ExecutionEngine, ExecutionReport, make_engine
from repro.exec.progress import (
    CellEvent,
    ExecutionStats,
    RecordingProgress,
    StderrProgress,
)
from repro.exec.results import (
    ComparisonCell,
    ComparisonSuiteResult,
    Provenance,
    SweepCell,
    SweepResult,
)
from repro.exec.runner import ProcessPoolRunner, Runner, SerialRunner, runner_for
from repro.exec.spec import CODE_VERSION, ExperimentSpec, MachineConfig

__all__ = [
    # spec
    "ExperimentSpec",
    "MachineConfig",
    "CODE_VERSION",
    # cells
    "CELL_KINDS",
    "GOVERNOR_NAMES",
    "POLICY_NAMES",
    "evaluate_cell",
    "build_predictor",
    "build_policy",
    "build_governor",
    # runners
    "Runner",
    "SerialRunner",
    "ProcessPoolRunner",
    "runner_for",
    # cache
    "ResultCache",
    "NullCache",
    "CacheStats",
    "default_cache_dir",
    # engine
    "ExecutionEngine",
    "ExecutionReport",
    "make_engine",
    # observability
    "CellEvent",
    "ExecutionStats",
    "RecordingProgress",
    "StderrProgress",
    # results
    "Provenance",
    "SweepCell",
    "SweepResult",
    "ComparisonCell",
    "ComparisonSuiteResult",
]
