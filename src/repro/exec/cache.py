"""Content-addressed on-disk cache of completed sweep cells.

Each completed cell is persisted as one JSON file under a two-level
fan-out directory, addressed by the spec's SHA-256 content hash (which
mixes in :data:`~repro.exec.spec.CODE_VERSION`, so upgrading the
package invalidates everything).  Entries embed the full spec for
collision paranoia and human debuggability: a hit is only returned when
the stored spec round-trips equal to the requested one.

JSON float serialisation is exact (``repr`` round-trip), so a cache
replay is bit-identical to a fresh computation — the determinism suite
asserts this.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.errors import ReproError
from repro.exec.cells import CellValue
from repro.exec.spec import CODE_VERSION, ExperimentSpec

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro").expanduser()


@dataclass
class CacheStats:
    """Running hit/miss/write counters for one cache instance.

    Attributes:
        hits: Lookups answered from disk.
        misses: Lookups that required computation.
        writes: Entries persisted.
        corrupt: Entries found corrupt or mismatching and quarantined
            (each also counts as a miss).
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from disk, in [0, 1]."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class ResultCache:
    """Content-addressed JSON store of completed cell values.

    Args:
        root: Cache directory (default: :func:`default_cache_dir`).
        code_version: Version tag mixed into every key.
    """

    def __init__(
        self,
        root: Optional[Path] = None,
        code_version: str = CODE_VERSION,
    ) -> None:
        self._root = Path(root) if root is not None else default_cache_dir()
        self._code_version = code_version
        self.stats = CacheStats()

    @property
    def root(self) -> Path:
        """The cache root directory."""
        return self._root

    def _path(self, spec: ExperimentSpec) -> Path:
        key = spec.cache_key(self._code_version)
        return self._root / key[:2] / f"{key}.json"

    def get(self, spec: ExperimentSpec) -> Optional[CellValue]:
        """Return the cached value for ``spec``, or ``None`` on a miss.

        A missing file is a plain miss.  An entry that exists but is
        corrupt or mismatching (truncated write, hash collision, format
        drift) is a miss *and* is quarantined on the spot — renamed to
        ``<key>.corrupt`` so it stops shadowing the slot even if the
        recompute never finishes — and counted in ``stats.corrupt``.
        """
        path = self._path(spec)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            entry = json.loads(raw)
            stored = ExperimentSpec.from_dict(entry["spec"])
            if stored != spec or entry.get("code_version") != self._code_version:
                raise ValueError("cache entry does not match spec")
            value = entry["value"]
            if not isinstance(value, dict):
                raise ValueError("cache entry value is not a mapping")
        except (ReproError, ValueError, KeyError, TypeError):
            self._quarantine(path)
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move a corrupt entry aside (delete it if even that fails)."""
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass

    def put(self, spec: ExperimentSpec, value: CellValue) -> None:
        """Persist one completed cell (atomic rename, last writer wins)."""
        path = self._path(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "code_version": self._code_version,
            "key": spec.cache_key(self._code_version),
            "spec": spec.to_dict(),
            "value": value,
        }
        handle = tempfile.NamedTemporaryFile(
            "w",
            encoding="utf-8",
            dir=str(path.parent),
            prefix=path.stem,
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(handle.name, path)
        except OSError:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self.stats.writes += 1

    def __len__(self) -> int:
        """Number of live entries on disk (quarantined files excluded)."""
        if not self._root.is_dir():
            return 0
        return sum(1 for _ in self._root.glob("*/*.json"))


@dataclass
class NullCache:
    """Cache interface that never stores anything (``--no-cache``)."""

    stats: CacheStats = field(default_factory=CacheStats)

    def get(self, spec: ExperimentSpec) -> Optional[CellValue]:
        """Always a miss."""
        self.stats.misses += 1
        return None

    def put(self, spec: ExperimentSpec, value: CellValue) -> None:
        """Discard the value."""
