"""Frozen experiment specifications and their content hashes.

An :class:`ExperimentSpec` describes one cell of a sweep completely:
which computation to run (``kind``), on which benchmark, for how many
intervals, with which scalar parameters, on which machine
configuration, and under which seed.  Specs are frozen and hashable so
they can key in-memory result maps, travel across process boundaries,
and address the on-disk cache via :meth:`ExperimentSpec.cache_key` — a
stable SHA-256 over the spec's canonical JSON plus the package version,
so a code upgrade invalidates every cached cell.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.pmc.interrupt import DEFAULT_PMI_GRANULARITY_UOPS
from repro.system.lkm import DEFAULT_HANDLER_OVERHEAD_S
from repro.system.machine import Machine

#: Version string mixed into every cache key; bumping the package
#: version (or this format tag) invalidates all previously cached cells.
CODE_VERSION = "repro-1.0.0/spec-v1"

#: Scalar value types allowed in spec parameters — everything must be
#: hashable and JSON-stable.
ParamScalar = Union[str, int, float, bool, None]
ParamValue = Union[ParamScalar, Tuple[ParamScalar, ...]]


def _check_param_value(name: str, value: object) -> ParamValue:
    """Validate one parameter value, normalising lists to tuples."""
    if isinstance(value, (list, tuple)):
        items = tuple(value)
        for item in items:
            if not isinstance(item, (str, int, float, bool)) and item is not None:
                raise ConfigurationError(
                    f"spec parameter {name!r} contains a non-scalar "
                    f"element: {item!r}"
                )
        return items
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ConfigurationError(
        f"spec parameter {name!r} must be a scalar or tuple of scalars, "
        f"got {type(value).__name__}"
    )


@dataclass(frozen=True)
class MachineConfig:
    """Hashable description of a simulated platform.

    Only configurations expressible by value can participate in the
    engine; experiments on a hand-built :class:`Machine` (custom timing
    or power models) use the inline paths of the sweep helpers instead.

    Attributes:
        granularity_uops: PMI pacing in retired micro-ops.
        handler_overhead_s: PMI handler cost per invocation in seconds.
    """

    granularity_uops: int = DEFAULT_PMI_GRANULARITY_UOPS
    handler_overhead_s: float = DEFAULT_HANDLER_OVERHEAD_S

    def build(self) -> Machine:
        """Construct the described machine."""
        return Machine(
            granularity_uops=self.granularity_uops,
            handler_overhead_s=self.handler_overhead_s,
        )

    def to_dict(self) -> Dict[str, Union[int, float]]:
        """Plain-dict form used in canonical JSON."""
        return {
            "granularity_uops": self.granularity_uops,
            "handler_overhead_s": self.handler_overhead_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MachineConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(
            granularity_uops=int(payload["granularity_uops"]),
            handler_overhead_s=float(payload["handler_overhead_s"]),
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """One fully described, independently executable sweep cell.

    Attributes:
        kind: Registered cell kind (see :mod:`repro.exec.cells`).
        benchmark: Benchmark name from the SPEC2000 registry.
        n_intervals: Trace/series length in sampling intervals.
        params: Sorted ``(name, value)`` pairs of kind-specific scalar
            parameters.
        machine: Platform configuration.
        seed: Optional RNG seed override (``None`` uses the benchmark's
            deterministic per-name seed).
    """

    kind: str
    benchmark: str
    n_intervals: int
    params: Tuple[Tuple[str, ParamValue], ...] = ()
    machine: MachineConfig = field(default_factory=MachineConfig)
    seed: Optional[int] = None

    @classmethod
    def create(
        cls,
        kind: str,
        benchmark: str,
        n_intervals: int,
        machine: Optional[MachineConfig] = None,
        seed: Optional[int] = None,
        **params: object,
    ) -> "ExperimentSpec":
        """Build a spec, validating and canonically ordering parameters."""
        if n_intervals <= 0:
            raise ConfigurationError(
                f"n_intervals must be > 0, got {n_intervals}"
            )
        normalised = tuple(
            (name, _check_param_value(name, value))
            for name, value in sorted(params.items())
        )
        return cls(
            kind=kind,
            benchmark=benchmark,
            n_intervals=n_intervals,
            params=normalised,
            machine=machine if machine is not None else MachineConfig(),
            seed=seed,
        )

    def param(self, name: str, default: ParamValue = None) -> ParamValue:
        """Look up one parameter by name."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    def with_params(self, **params: object) -> "ExperimentSpec":
        """A copy of this spec with parameters added or replaced."""
        merged: Dict[str, ParamValue] = dict(self.params)
        for name, value in params.items():
            merged[name] = _check_param_value(name, value)
        return ExperimentSpec(
            kind=self.kind,
            benchmark=self.benchmark,
            n_intervals=self.n_intervals,
            params=tuple(sorted(merged.items())),
            machine=self.machine,
            seed=self.seed,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready plain-dict form (canonical field order)."""
        return {
            "kind": self.kind,
            "benchmark": self.benchmark,
            "n_intervals": self.n_intervals,
            "params": [[name, list(value) if isinstance(value, tuple) else value]
                       for name, value in self.params],
            "machine": self.machine.to_dict(),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentSpec":
        """Inverse of :meth:`to_dict`."""
        params = tuple(
            (str(name), _check_param_value(str(name), value))
            for name, value in payload.get("params", [])
        )
        seed = payload.get("seed")
        return cls(
            kind=str(payload["kind"]),
            benchmark=str(payload["benchmark"]),
            n_intervals=int(payload["n_intervals"]),
            params=params,
            machine=MachineConfig.from_dict(payload["machine"]),
            seed=int(seed) if seed is not None else None,
        )

    def canonical_json(self) -> str:
        """Deterministic JSON serialisation used for hashing."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def cache_key(self, code_version: str = CODE_VERSION) -> str:
        """Stable content address of this spec under ``code_version``."""
        digest = hashlib.sha256()
        digest.update(code_version.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(self.canonical_json().encode("utf-8"))
        return digest.hexdigest()

    def label(self) -> str:
        """Short human-readable identifier for progress lines."""
        parts = [f"{name}={value}" for name, value in self.params]
        suffix = f" [{', '.join(parts)}]" if parts else ""
        return f"{self.kind}:{self.benchmark}{suffix}"
