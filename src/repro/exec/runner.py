"""Runner backends: how a batch of specs gets scheduled.

A :class:`Runner` maps a list of specs to their cell values, yielding
``(index, value, seconds)`` triples as cells complete.  Completion
order is a scheduling detail — the engine reassembles results by index,
so every backend produces the same result set (the determinism suite
holds serial and process-pool execution to bit-equality).

Two backends:

* :class:`SerialRunner` — in-process, in order; zero overhead, and the
  only backend that can see in-process monkeypatching (tests) or
  non-default machine objects.
* :class:`ProcessPoolRunner` — fan-out over a
  :class:`concurrent.futures.ProcessPoolExecutor`; specs are pickled to
  workers, which dispatch through the module-level
  :func:`repro.exec.cells.evaluate_cell`.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from typing import Dict, Iterator, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.exec.cells import CellValue, evaluate_cell
from repro.exec.spec import ExperimentSpec

#: One completed cell: position in the submitted batch, its value, and
#: the wall-clock seconds its evaluation took.
CompletedCell = Tuple[int, CellValue, float]


def _timed_evaluate(spec: ExperimentSpec) -> Tuple[CellValue, float]:
    """Evaluate one cell, returning its value and elapsed seconds."""
    started = time.perf_counter()
    value = evaluate_cell(spec)
    return value, time.perf_counter() - started


class Runner(ABC):
    """Scheduling strategy for a batch of independent cells."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Short backend identifier recorded in result provenance."""

    @abstractmethod
    def run_cells(
        self, specs: Sequence[ExperimentSpec]
    ) -> Iterator[CompletedCell]:
        """Evaluate every spec, yielding completions as they happen."""


class SerialRunner(Runner):
    """Evaluate cells one after another in the calling process."""

    @property
    def name(self) -> str:
        """Backend identifier."""
        return "serial"

    def run_cells(
        self, specs: Sequence[ExperimentSpec]
    ) -> Iterator[CompletedCell]:
        """Evaluate in submission order."""
        for index, spec in enumerate(specs):
            value, seconds = _timed_evaluate(spec)
            yield index, value, seconds


class ProcessPoolRunner(Runner):
    """Fan cells out over a pool of worker processes.

    Args:
        jobs: Worker process count (>= 1).
        max_pending: Upper bound on queued-but-unfinished submissions,
            keeping memory flat for very large sweeps.
    """

    def __init__(self, jobs: int, max_pending: int = 256) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        self.jobs = jobs
        self.max_pending = max_pending

    @property
    def name(self) -> str:
        """Backend identifier, e.g. ``process-pool-4``."""
        return f"process-pool-{self.jobs}"

    def run_cells(
        self, specs: Sequence[ExperimentSpec]
    ) -> Iterator[CompletedCell]:
        """Evaluate across the pool, yielding in completion order."""
        if not specs:
            return
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            pending: Dict["Future[Tuple[CellValue, float]]", int] = {}
            queue = iter(enumerate(specs))
            exhausted = False
            while pending or not exhausted:
                while not exhausted and len(pending) < self.max_pending:
                    try:
                        index, spec = next(queue)
                    except StopIteration:
                        exhausted = True
                        break
                    pending[pool.submit(_timed_evaluate, spec)] = index
                if not pending:
                    continue
                done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
                for future in done:
                    index = pending.pop(future)
                    value, seconds = future.result()
                    yield index, value, seconds


def runner_for(jobs: int) -> Runner:
    """Pick the backend for a ``--jobs`` value (1 = serial)."""
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1:
        return SerialRunner()
    return ProcessPoolRunner(jobs)
