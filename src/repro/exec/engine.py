"""The execution engine: cache check, fan-out, collect, memoise.

:class:`ExecutionEngine` is the one entry point every sweep helper and
CLI command drives.  A batch of :class:`~repro.exec.spec.ExperimentSpec`
cells is partitioned into cache hits and misses; misses are scheduled
on the configured :class:`~repro.exec.runner.Runner`, persisted into
the cache as they complete, and the whole batch is reassembled keyed by
spec, so results are independent of completion order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.exec.cache import CacheStats, NullCache, ResultCache
from repro.exec.cells import CellValue
from repro.exec.progress import CellEvent, ExecutionStats, ProgressHook
from repro.exec.results import Provenance
from repro.exec.runner import Runner, SerialRunner, runner_for
from repro.exec.spec import ExperimentSpec
from repro.obs.events import CellFinished, CellStarted
from repro.obs.tracer import NULL_TRACER, Tracer

#: Anything with the cache interface (get/put/stats).
CellCache = Union[ResultCache, NullCache]


@dataclass(frozen=True)
class ExecutionReport:
    """Results of one engine batch, keyed by spec.

    Attributes:
        values: Cell metrics per spec (every requested spec present).
        stats: Aggregate batch accounting.
        runner_name: Backend that executed the misses.
    """

    values: Mapping[ExperimentSpec, CellValue]
    stats: ExecutionStats
    runner_name: str

    def value(self, spec: ExperimentSpec) -> CellValue:
        """Metrics of one cell."""
        return self.values[spec]

    def provenance(self) -> Provenance:
        """Condense the batch accounting into result provenance."""
        return Provenance(
            runner=self.runner_name,
            total_cells=self.stats.total,
            cache_hits=self.stats.cache_hits,
            executed=self.stats.executed,
            wall_seconds=self.stats.wall_seconds,
            cell_seconds=self.stats.cell_seconds,
            cache_corrupt=self.stats.cache_corrupt,
        )


@dataclass
class ExecutionEngine:
    """Schedules sweep cells over a runner behind a result cache.

    Attributes:
        runner: Scheduling backend (default: serial).
        cache: Result memo (default: :class:`NullCache`, i.e. always
            recompute; pass a :class:`ResultCache` to persist).
        hooks: Progress hooks fired once per completed cell.
        tracer: Trace collector for cell lifecycle events
            (``CellStarted``/``CellFinished``, stamped with the cell's
            batch position).  Default: the no-op ``NULL_TRACER``.
    """

    runner: Runner = field(default_factory=SerialRunner)
    cache: CellCache = field(default_factory=NullCache)
    hooks: Tuple[ProgressHook, ...] = ()
    tracer: Tracer = NULL_TRACER

    def run(self, specs: Sequence[ExperimentSpec]) -> ExecutionReport:
        """Evaluate every spec, serving repeats and cached cells free.

        Duplicate specs in the batch are evaluated once.  Returns a
        report whose ``values`` mapping covers every requested spec.
        """
        batch: List[ExperimentSpec] = []
        seen: Dict[ExperimentSpec, None] = {}
        for spec in specs:
            if spec not in seen:
                seen[spec] = None
                batch.append(spec)

        started = time.perf_counter()
        stats = ExecutionStats(total=len(batch))
        values: Dict[ExperimentSpec, CellValue] = {}
        completed = 0
        tracer = self.tracer
        position = {spec: i for i, spec in enumerate(batch)}
        corrupt_before = self.cache.stats.corrupt

        pending: List[ExperimentSpec] = []
        for spec in batch:
            cached = self.cache.get(spec)
            if cached is not None:
                values[spec] = cached
                stats.cache_hits += 1
                completed += 1
                if tracer.enabled:
                    tracer.emit(self._cell_finished(spec, position, True, 0.0))
                self._fire(
                    CellEvent(
                        spec=spec,
                        value=cached,
                        seconds=0.0,
                        cached=True,
                        completed=completed,
                        total=len(batch),
                    )
                )
            else:
                pending.append(spec)

        if tracer.enabled:
            for spec in pending:
                tracer.emit(
                    CellStarted(
                        interval=position[spec],
                        label=spec.label(),
                        kind=spec.kind,
                        benchmark=spec.benchmark,
                    )
                )

        for index, value, seconds in self.runner.run_cells(pending):
            spec = pending[index]
            values[spec] = value
            self.cache.put(spec, value)
            stats.executed += 1
            stats.cell_seconds += seconds
            completed += 1
            if tracer.enabled:
                tracer.emit(self._cell_finished(spec, position, False, seconds))
            self._fire(
                CellEvent(
                    spec=spec,
                    value=value,
                    seconds=seconds,
                    cached=False,
                    completed=completed,
                    total=len(batch),
                )
            )

        stats.wall_seconds = time.perf_counter() - started
        stats.cache_corrupt = self.cache.stats.corrupt - corrupt_before
        return ExecutionReport(
            values=values, stats=stats, runner_name=self.runner.name
        )

    @property
    def cache_stats(self) -> CacheStats:
        """The cache's running counters."""
        return self.cache.stats

    def _fire(self, event: CellEvent) -> None:
        for hook in self.hooks:
            hook(event)

    @staticmethod
    def _cell_finished(
        spec: ExperimentSpec,
        position: Mapping[ExperimentSpec, int],
        cached: bool,
        seconds: float,
    ) -> CellFinished:
        return CellFinished(
            interval=position[spec],
            label=spec.label(),
            kind=spec.kind,
            benchmark=spec.benchmark,
            cached=cached,
            seconds=seconds,
        )


def make_engine(
    jobs: int = 1,
    cache: Optional[CellCache] = None,
    hooks: Tuple[ProgressHook, ...] = (),
    tracer: Optional[Tracer] = None,
) -> ExecutionEngine:
    """Convenience constructor mirroring the CLI flags.

    Args:
        jobs: Worker count (1 = serial).
        cache: Result cache (``None`` = no caching).
        hooks: Progress hooks.
        tracer: Trace collector for cell events (``None`` = no-op).
    """
    return ExecutionEngine(
        runner=runner_for(jobs),
        cache=cache if cache is not None else NullCache(),
        hooks=hooks,
        tracer=tracer if tracer is not None else NULL_TRACER,
    )
