"""Execution observability: per-cell events and aggregate statistics.

The engine reports progress through *hooks*: callables receiving one
:class:`CellEvent` per completed cell (cached or computed).  Hooks are
importable by anything that drives the engine — the CLI uses
:class:`StderrProgress`; the benchmark suites can attach their own to
collect per-cell timing.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, List, TextIO

from repro.exec.cells import CellValue
from repro.exec.spec import ExperimentSpec


@dataclass(frozen=True)
class CellEvent:
    """One completed cell, as seen by progress hooks.

    Attributes:
        spec: The cell's specification.
        value: Its computed (or replayed) metrics.
        seconds: Evaluation wall-clock (0.0 for cache hits).
        cached: Whether the value came from the result cache.
        completed: Cells finished so far, including this one.
        total: Cells in the whole batch.
    """

    spec: ExperimentSpec
    value: CellValue
    seconds: float
    cached: bool
    completed: int
    total: int


#: A progress hook: called once per completed cell, in completion order.
ProgressHook = Callable[[CellEvent], None]


@dataclass
class ExecutionStats:
    """Aggregate accounting for one engine batch.

    Attributes:
        total: Cells requested.
        cache_hits: Cells answered from the result cache.
        executed: Cells actually computed.
        wall_seconds: End-to-end batch wall-clock.
        cell_seconds: Summed per-cell evaluation time (> wall_seconds
            under parallel execution).
        cache_corrupt: Cache entries found corrupt during this batch and
            quarantined (already included in the miss count).
    """

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    wall_seconds: float = 0.0
    cell_seconds: float = 0.0
    cache_corrupt: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of cells served from the cache, in [0, 1]."""
        if self.total == 0:
            return 0.0
        return self.cache_hits / self.total

    def summary(self) -> str:
        """One-line human-readable account of the batch."""
        text = (
            f"{self.total} cells: {self.cache_hits} cached "
            f"({self.hit_rate:.1%} hit rate), {self.executed} executed, "
            f"{self.wall_seconds:.2f}s wall, {self.cell_seconds:.2f}s cpu"
        )
        if self.cache_corrupt:
            text += f", {self.cache_corrupt} corrupt quarantined"
        return text


class StderrProgress:
    """Progress hook printing one line per completed cell to stderr.

    Args:
        stream: Destination (default ``sys.stderr``).
        per_cell: Emit a line per cell; when ``False`` only the batch
            summary (via :meth:`finish`) is printed.
    """

    def __init__(
        self, stream: TextIO = sys.stderr, per_cell: bool = True
    ) -> None:
        self._stream = stream
        self._per_cell = per_cell

    def __call__(self, event: CellEvent) -> None:
        """Render one completed cell."""
        if not self._per_cell:
            return
        source = "cache" if event.cached else f"{event.seconds * 1000:.1f}ms"
        print(
            f"[{event.completed}/{event.total}] {event.spec.label()} "
            f"({source})",
            file=self._stream,
        )

    def finish(self, stats: ExecutionStats) -> None:
        """Render the batch summary."""
        print(stats.summary(), file=self._stream)


@dataclass
class RecordingProgress:
    """Progress hook that records every event (testing/benchmarks)."""

    events: List[CellEvent] = field(default_factory=list)

    def __call__(self, event: CellEvent) -> None:
        """Append the event."""
        self.events.append(event)
