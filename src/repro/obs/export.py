"""Lossless trace export: JSONL and CSV, plus text summaries.

JSONL is the primary interchange format — one ``event.to_dict()`` object
per line, round-tripping exactly through :func:`events_from_jsonl`
because every event field is a JSON scalar.  CSV flattens the stream
into the union of all field columns (``event`` first, then sorted),
leaving cells blank where an event type lacks a field.

``summary_text`` renders the :func:`repro.obs.metrics.trace_metrics`
registry as the repo's standard text tables.  The table helper lives in
``repro.analysis.reporting``, whose package ``__init__`` eagerly imports
the predictor stack — importing it at module scope from here would close
an import cycle (``core.predictors`` -> ``repro.obs`` -> ``analysis`` ->
``core.predictors``), so it is imported inside the function instead.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.events import TraceEvent, event_from_dict
from repro.obs.metrics import trace_metrics


def events_to_jsonl(events: Iterable[TraceEvent]) -> str:
    """Serialize events as JSON Lines (trailing newline when non-empty)."""
    lines = [
        json.dumps(event.to_dict(), sort_keys=False, separators=(",", ":"))
        for event in events
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def events_from_jsonl(text: str) -> Tuple[TraceEvent, ...]:
    """Parse a JSONL trace back into typed events (exact round trip)."""
    events: List[TraceEvent] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            payload = json.loads(stripped)
        except ValueError as exc:
            raise ConfigurationError(
                f"line {lineno}: invalid JSON in trace: {exc}"
            ) from None
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"line {lineno}: trace line must be a JSON object"
            )
        events.append(event_from_dict(payload))
    return tuple(events)


def trace_columns(events: Sequence[TraceEvent]) -> Tuple[str, ...]:
    """CSV header: ``event``, ``interval``, then the sorted field union."""
    names = set()
    for event in events:
        names.update(event.to_dict())
    names.discard("event")
    names.discard("interval")
    return ("event", "interval") + tuple(sorted(names))


def events_to_csv(events: Sequence[TraceEvent]) -> str:
    """Flatten events into CSV over the union of columns (lossless)."""
    columns = trace_columns(events)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns), restval="")
    writer.writeheader()
    for event in events:
        writer.writerow(event.to_dict())
    return buffer.getvalue()


def summary_payload(events: Sequence[TraceEvent]) -> Dict[str, Any]:
    """The trace's derived metrics as a JSON-ready mapping.

    Mirrors :func:`summary_text`'s split — ``event_counts`` holds the
    per-type tallies, ``metrics`` the remaining derived instruments —
    but carries the registry's typed snapshot (counters as ints,
    gauges/histograms as their ``to_dict`` entries) instead of the
    rendered table strings.
    """
    registry = trace_metrics(events)
    event_counts: Dict[str, Any] = {}
    metrics: Dict[str, Any] = {}
    for name, entry in registry.to_dict().items():
        if name.startswith("events."):
            event_counts[name.split(".", 1)[1]] = int(float(entry["value"]))
        else:
            metrics[name] = entry
    return {
        "events": len(events),
        "event_counts": event_counts,
        "metrics": metrics,
    }


def summary_text(events: Sequence[TraceEvent]) -> str:
    """Render the trace's derived metrics as text tables."""
    # Imported lazily: repro.analysis's package __init__ pulls in the
    # predictor stack, which itself imports repro.obs (cycle otherwise).
    from repro.analysis.reporting import format_table

    registry = trace_metrics(events)
    counts = [
        (name.split(".", 1)[1], value)
        for name, value in registry.rows()
        if name.startswith("events.")
    ]
    other = [row for row in registry.rows() if not row[0].startswith("events.")]
    sections = [
        format_table(
            ("event type", "count"),
            [(kind, count) for kind, count in counts],
            title=f"Trace summary ({len(events)} events)",
        )
    ]
    if other:
        sections.append(
            format_table(("metric", "value"), other, title="Derived metrics")
        )
    return "\n\n".join(sections)
