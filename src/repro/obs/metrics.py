"""Counter/gauge/histogram registry and trace-derived metrics.

Two layers:

* :class:`MetricsRegistry` — a plain get-or-create registry of named
  :class:`Counter`/:class:`Gauge`/:class:`Histogram` instruments, usable
  on its own by any component;
* :func:`trace_metrics` — folds a recorded event stream into the
  registry, computing the headline observability numbers: predictor PHT
  hit rate, per-phase residency, DVFS transitions per 1k intervals,
  sweep-cell cache hit rate and per-cell wall time.

Like the collectors, this module must stay deterministic: metric values
derive only from the events passed in, never from clocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple, Type, TypeVar, Union

from repro.errors import ConfigurationError
from repro.obs.events import (
    CellFinished,
    DVFSTransition,
    IntervalSampled,
    PhaseClassified,
    PMIHandled,
    PredictionMade,
    TraceEvent,
    WorkerDied,
)


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        self.value += amount


@dataclass
class Gauge:
    """Last-written value."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """Streaming summary: count / total / min / max / mean."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


Instrument = Union[Counter, Gauge, Histogram]

_I = TypeVar("_I", Counter, Gauge, Histogram)


class MetricsRegistry:
    """Get-or-create registry of named instruments."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def _get_or_create(self, name: str, cls: Type[_I]) -> _I:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}"
                )
            return existing
        instrument = cls(name=name)
        self._instruments[name] = instrument
        return instrument

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._instruments))

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def to_dict(self) -> Dict[str, Dict[str, Union[str, float]]]:
        """JSON-ready snapshot keyed by metric name (sorted)."""
        out: Dict[str, Dict[str, Union[str, float]]] = {}
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                out[name] = {"kind": "counter", "value": float(instrument.value)}
            elif isinstance(instrument, Gauge):
                out[name] = {"kind": "gauge", "value": instrument.value}
            else:
                out[name] = {
                    "kind": "histogram",
                    "count": float(instrument.count),
                    "total": instrument.total,
                    "min": instrument.min if instrument.count else 0.0,
                    "max": instrument.max if instrument.count else 0.0,
                    "mean": instrument.mean,
                }
        return out

    def rows(self) -> List[Tuple[str, str]]:
        """(name, rendered value) rows for text tables, sorted by name."""
        rendered: List[Tuple[str, str]] = []
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                rendered.append((name, str(instrument.value)))
            elif isinstance(instrument, Gauge):
                rendered.append((name, f"{instrument.value:.6g}"))
            else:
                if instrument.count:
                    rendered.append(
                        (
                            name,
                            f"n={instrument.count} mean={instrument.mean:.6g} "
                            f"min={instrument.min:.6g} max={instrument.max:.6g}",
                        )
                    )
                else:
                    rendered.append((name, "n=0"))
        return rendered


def trace_metrics(events: Iterable[TraceEvent]) -> MetricsRegistry:
    """Fold a recorded event stream into a :class:`MetricsRegistry`."""
    registry = MetricsRegistry()
    intervals = 0
    transitions = 0
    pht_hits = 0
    pht_misses = 0
    cells_total = 0
    cells_cached = 0

    for event in events:
        registry.counter(f"events.{event.event_type}").inc()
        if isinstance(event, IntervalSampled):
            intervals += 1
            registry.histogram("interval.mem_per_uop").observe(event.mem_per_uop)
            registry.histogram("interval.upc").observe(event.upc)
        elif isinstance(event, PhaseClassified):
            registry.counter(f"phase.residency.{event.phase}").inc()
        elif isinstance(event, PredictionMade):
            if event.pht_hit:
                pht_hits += 1
            else:
                pht_misses += 1
            if event.warmup:
                registry.counter("predictor.warmup_lookups").inc()
            if event.installed:
                registry.counter("predictor.pht_installs").inc()
            if event.evicted:
                registry.counter("predictor.pht_evictions").inc()
            registry.gauge("predictor.pht_occupancy").set(float(event.occupancy))
        elif isinstance(event, DVFSTransition):
            transitions += 1
            registry.histogram("dvfs.transition_s").observe(event.transition_s)
        elif isinstance(event, PMIHandled):
            registry.histogram("pmi.handler_seconds").observe(event.handler_seconds)
        elif isinstance(event, CellFinished):
            cells_total += 1
            if event.cached:
                cells_cached += 1
            else:
                registry.histogram("cells.seconds").observe(event.seconds)
        elif isinstance(event, WorkerDied):
            registry.counter("serve.workers_died").inc()

    registry.counter("predictor.pht_hits").inc(pht_hits)
    registry.counter("predictor.pht_misses").inc(pht_misses)
    lookups = pht_hits + pht_misses
    if lookups:
        registry.gauge("predictor.pht_hit_rate").set(pht_hits / lookups)
    registry.counter("dvfs.transitions").inc(transitions)
    if intervals:
        registry.gauge("dvfs.transitions_per_1k_intervals").set(
            1000.0 * transitions / intervals
        )
    registry.counter("cells.total").inc(cells_total)
    registry.counter("cells.cached").inc(cells_cached)
    if cells_total:
        registry.gauge("cells.cache_hit_rate").set(cells_cached / cells_total)
    return registry
