"""Runtime observability: structured tracing and metrics (``repro.obs``).

The software analogue of the paper's measurement rig (Section 6): where
the original toggles parallel-port sync bits so counter, DVFS and DAQ
power timelines can be joined, this package stamps every event with a
monotonic interval index and records them in a bounded ring buffer.

Layout:

* :mod:`repro.obs.events` — typed, JSON-scalar trace events;
* :mod:`repro.obs.tracer` — ``NULL_TRACER`` no-op default and the
  bounded :class:`~repro.obs.tracer.RingBufferTracer` collector;
* :mod:`repro.obs.metrics` — counter/gauge/histogram registry and
  trace-derived metrics (:func:`~repro.obs.metrics.trace_metrics`);
* :mod:`repro.obs.export` — lossless JSONL/CSV export and summaries.

This package must not import :mod:`repro.core` or :mod:`repro.analysis`
at module scope — the predictor base class imports the tracer, so any
such import closes a cycle.  Tracing is zero-perturbation: enabling it
must never change a simulated result (see the tracing determinism
property tests).
"""

from repro.obs.events import (
    EVENT_TYPES,
    CellFinished,
    CellStarted,
    DVFSTransition,
    IntervalSampled,
    PhaseClassified,
    PMIHandled,
    PredictionMade,
    TraceEvent,
    event_from_dict,
    event_types,
)
from repro.obs.export import (
    events_from_jsonl,
    events_to_csv,
    events_to_jsonl,
    summary_payload,
    summary_text,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    trace_metrics,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    RingBufferTracer,
    Tracer,
)

__all__ = [
    "EVENT_TYPES",
    "CellFinished",
    "CellStarted",
    "Counter",
    "DVFSTransition",
    "Gauge",
    "Histogram",
    "IntervalSampled",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PMIHandled",
    "PhaseClassified",
    "PredictionMade",
    "RingBufferTracer",
    "TraceEvent",
    "Tracer",
    "event_from_dict",
    "event_types",
    "events_from_jsonl",
    "events_to_csv",
    "events_to_jsonl",
    "summary_payload",
    "summary_text",
    "trace_metrics",
]
