"""Typed trace events for the runtime observability layer.

The paper's instrumentation (Section 6) synchronises three timelines —
performance-counter samples, the kernel module's DVFS decisions and the
external DAQ power trace — via sync bits on the parallel port toggled at
phase boundaries.  The simulated analogue is the **monotonic interval
index** carried by every event: all events emitted while handling PMI
*n* are stamped ``interval == n``, so independently recorded streams can
be joined exactly, the same way the paper joins counter and power traces
on the toggling phase bit.

Design constraints:

* every event is a frozen dataclass whose fields are JSON scalars
  (``str``/``int``/``float``/``bool``) — this keeps the JSONL and CSV
  exports lossless and the round trip exact;
* each event class declares a stable ``event_type`` string and registers
  itself in :data:`EVENT_TYPES`, so serialized traces can be re-hydrated
  into typed events by :func:`event_from_dict`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import ClassVar, Dict, Tuple, Type, TypeVar, Union

from repro.errors import ConfigurationError

#: JSON-scalar payload value — every event field must be one of these.
Scalar = Union[str, int, float, bool]

#: Registry of event-type string -> event class, populated by
#: :func:`register_event`.
EVENT_TYPES: Dict[str, Type["TraceEvent"]] = {}

_E = TypeVar("_E", bound=Type["TraceEvent"])


def register_event(cls: _E) -> _E:
    """Class decorator: register ``cls`` under its ``event_type``."""
    key = cls.event_type
    if not key:
        raise ConfigurationError(f"{cls.__name__} must declare a non-empty event_type")
    if key in EVENT_TYPES:
        raise ConfigurationError(f"duplicate event_type {key!r}")
    EVENT_TYPES[key] = cls
    return cls


@dataclass(frozen=True)
class TraceEvent:
    """Base class for all trace events.

    ``interval`` is the monotonic interval index (the software analogue
    of the paper's parallel-port sync bits).  Events emitted outside the
    PMI handler — e.g. sweep-cell lifecycle events — use their batch
    position instead, keeping the field monotone within a stream.
    """

    event_type: ClassVar[str] = ""

    interval: int

    def to_dict(self) -> Dict[str, Scalar]:
        """Flat JSON-ready payload; ``event`` key first."""
        payload: Dict[str, Scalar] = {"event": self.event_type}
        for field in dataclasses.fields(self):
            payload[field.name] = getattr(self, field.name)
        return payload


def event_from_dict(payload: Dict[str, object]) -> TraceEvent:
    """Re-hydrate a :meth:`TraceEvent.to_dict` payload into a typed event."""
    try:
        kind = payload["event"]
    except KeyError:
        raise ConfigurationError("trace event payload missing 'event' key") from None
    cls = EVENT_TYPES.get(str(kind))
    if cls is None:
        raise ConfigurationError(f"unknown trace event type {kind!r}")
    fields = {f.name for f in dataclasses.fields(cls)}
    kwargs = {str(k): v for k, v in payload.items() if k != "event"}
    unexpected = set(kwargs) - fields
    if unexpected:
        raise ConfigurationError(
            f"unexpected fields for {kind!r}: {sorted(unexpected)}"
        )
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(f"malformed {kind!r} event: {exc}") from None


@register_event
@dataclass(frozen=True)
class IntervalSampled(TraceEvent):
    """Counters read at a PMI — one per 100M-µop interval.

    ``frequency_mhz`` is the operating frequency *during* the sampled
    interval (before any decision taken at this PMI applies).
    """

    event_type: ClassVar[str] = "interval_sampled"

    time_s: float
    uops: int
    mem_transactions: int
    instructions: int
    tsc_cycles: int
    mem_per_uop: float
    upc: float
    frequency_mhz: float


@register_event
@dataclass(frozen=True)
class PhaseClassified(TraceEvent):
    """Governor classified the sampled Mem/Uop metric into a phase id."""

    event_type: ClassVar[str] = "phase_classified"

    governor: str
    metric: float
    phase: int


@register_event
@dataclass(frozen=True)
class PredictionMade(TraceEvent):
    """GPHT lookup outcome, with PHT install/evict detail.

    ``warmup`` marks lookups made while the GPHR still contains
    ``EMPTY_PHASE`` padding; these count as misses but install nothing
    (see the warm-up fix in ``core/predictors/gpht.py``).  ``occupancy``
    is the PHT occupancy *after* any install performed by this lookup.
    """

    event_type: ClassVar[str] = "prediction_made"

    predictor: str
    predicted_phase: int
    pht_hit: bool
    installed: bool
    evicted: bool
    warmup: bool
    occupancy: int


@register_event
@dataclass(frozen=True)
class DVFSTransition(TraceEvent):
    """Operating-point change requested by the governor at this PMI.

    Only emitted when the requested point differs from the current one
    (same-point requests are free and unlogged, matching
    ``DVFSInterface.request``).
    """

    event_type: ClassVar[str] = "dvfs_transition"

    from_mhz: float
    to_mhz: float
    from_voltage_v: float
    to_voltage_v: float
    transition_s: float
    predicted_phase: int


@register_event
@dataclass(frozen=True)
class PMIHandled(TraceEvent):
    """PMI handler completed (Figure 8 flow): total cost accounting."""

    event_type: ClassVar[str] = "pmi_handled"

    time_s: float
    handler_seconds: float
    transition_s: float


@register_event
@dataclass(frozen=True)
class CellStarted(TraceEvent):
    """Sweep cell dispatched for execution (``interval`` = batch index)."""

    event_type: ClassVar[str] = "cell_started"

    label: str
    kind: str
    benchmark: str


@register_event
@dataclass(frozen=True)
class CellFinished(TraceEvent):
    """Sweep cell completed or served from cache (``interval`` = batch index)."""

    event_type: ClassVar[str] = "cell_finished"

    label: str
    kind: str
    benchmark: str
    cached: bool
    seconds: float


@register_event
@dataclass(frozen=True)
class SessionOpened(TraceEvent):
    """A ``repro.serve`` phase-prediction session was opened.

    ``interval`` is the server's request sequence number (monotone per
    server, the serving analogue of the PMI interval index).
    """

    event_type: ClassVar[str] = "session_opened"

    session: str
    governor: str
    policy: str


@register_event
@dataclass(frozen=True)
class SessionClosed(TraceEvent):
    """A session ended: explicit ``bye`` or idle eviction."""

    event_type: ClassVar[str] = "session_closed"

    session: str
    reason: str
    samples: int


@register_event
@dataclass(frozen=True)
class SessionDegraded(TraceEvent):
    """A session crossed its latency budget (or recovered from it).

    ``active`` is the degradation state *after* this event;
    ``latency_s`` is the measured per-sample latency that triggered the
    change (0.0 on recovery by cool-down).
    """

    event_type: ClassVar[str] = "session_degraded"

    session: str
    active: bool
    latency_s: float


@register_event
@dataclass(frozen=True)
class WorkerDied(TraceEvent):
    """A shard worker process stopped answering (``repro.serve.shard``).

    Emitted once per worker failure by the router when it first detects
    the death — via a broken forwarding connection or the process no
    longer running.  ``interval`` is the router's request sequence
    number; requests routed to the dead shard answer
    ``worker_unavailable`` while other shards keep serving.
    """

    event_type: ClassVar[str] = "worker_died"

    worker: int
    reason: str


@register_event
@dataclass(frozen=True)
class WorkerRestarted(TraceEvent):
    """A dead shard worker was respawned by the router (auto-restart).

    Emitted after the replacement process reported its port and
    restored its shard's sessions from the checkpoint store.
    ``sessions_restored`` counts the sessions the new process adopted;
    clients replay at most one checkpoint cadence of samples per
    restored session.
    """

    event_type: ClassVar[str] = "worker_restarted"

    worker: int
    sessions_restored: int


@register_event
@dataclass(frozen=True)
class SessionMigrated(TraceEvent):
    """A live session moved workers via drain–snapshot–restore.

    Emitted by the router once the session is live on ``to_worker`` and
    closed on ``from_worker``; ``samples`` is the sample count carried
    across, so the move is provably lossless in the trace.
    """

    event_type: ClassVar[str] = "session_migrated"

    session: str
    from_worker: int
    to_worker: int
    samples: int


@register_event
@dataclass(frozen=True)
class SessionRestored(TraceEvent):
    """A session was re-opened under its original id from a checkpoint.

    Emitted by the session manager for recovery adoptions (worker boot
    restoring its shard from the checkpoint store) and migration
    restores — alongside the ordinary ``session_opened`` event.
    """

    event_type: ClassVar[str] = "session_restored"

    session: str
    samples: int


def event_types() -> Tuple[str, ...]:
    """All registered event-type strings, sorted."""
    return tuple(sorted(EVENT_TYPES))
