"""Trace collectors: a no-op default and a bounded ring buffer.

The hot path (the PMI handler, the GPHT lookup) is instrumented with
the pattern::

    if tracer.enabled:
        tracer.emit(SomeEvent(...))

so a disabled run pays exactly one attribute load per site and builds
no event objects.  ``NULL_TRACER`` is the shared disabled singleton;
callers that want a trace substitute a :class:`RingBufferTracer`.

Collectors are deterministic by construction: they never read clocks or
randomness (enforced by ``repro lint``'s determinism rule, which covers
the ``repro.obs`` package), and recording must never change a simulated
result — the tracing-determinism property tests hold the whole pipeline
to that.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque, Dict, Tuple

from repro.errors import ConfigurationError
from repro.obs.events import TraceEvent

#: Default ring capacity: ~64k events covers >13k traced intervals at
#: the typical 4-5 events per interval.
DEFAULT_CAPACITY = 1 << 16


class Tracer:
    """Collector interface.  The base class is the disabled no-op."""

    #: Hot-path guard — sites skip event construction when ``False``.
    enabled: bool = False

    @property
    def interval(self) -> int:
        """Current interval index, ``-1`` before any ``begin_interval``."""
        return -1

    def begin_interval(self, index: int) -> None:
        """Mark the start of interval ``index`` (monotonic sync point)."""

    def emit(self, event: TraceEvent) -> None:
        """Record ``event``; the no-op base discards it."""


class NullTracer(Tracer):
    """Explicitly-named disabled tracer (identical to the base class)."""


#: Shared disabled singleton — the default everywhere a tracer is optional.
NULL_TRACER = NullTracer()


class RingBufferTracer(Tracer):
    """Bounded in-memory collector: keeps the most recent events.

    The buffer is a ``deque(maxlen=capacity)`` so a long run degrades to
    "last *capacity* events" instead of unbounded memory; :attr:`dropped`
    reports how many events fell off the front.
    """

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"tracer capacity must be >= 1, got {capacity}"
            )
        self._capacity = capacity
        self._buffer: Deque[TraceEvent] = deque(maxlen=capacity)
        self._emitted = 0
        self._interval = -1

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def interval(self) -> int:
        return self._interval

    @property
    def emitted(self) -> int:
        """Total events emitted, including any since dropped."""
        return self._emitted

    @property
    def dropped(self) -> int:
        """Events lost to the ring bound (oldest first)."""
        return self._emitted - len(self._buffer)

    def begin_interval(self, index: int) -> None:
        # Indexes are monotone within one run but restart at 0 when the
        # same tracer records several runs back to back, so no
        # monotonicity is enforced here — only validity.
        if index < 0:
            raise ConfigurationError(
                f"interval index must be >= 0, got {index}"
            )
        self._interval = index

    def emit(self, event: TraceEvent) -> None:
        self._buffer.append(event)
        self._emitted += 1

    def events(self) -> Tuple[TraceEvent, ...]:
        """Snapshot of the retained events, oldest first."""
        return tuple(self._buffer)

    def counts_by_type(self) -> Dict[str, int]:
        """Retained-event histogram keyed by ``event_type``."""
        counts: Counter[str] = Counter(
            event.event_type for event in self._buffer
        )
        return dict(sorted(counts.items()))

    def clear(self) -> None:
        """Drop all retained events and reset counters and the interval."""
        self._buffer.clear()
        self._emitted = 0
        self._interval = -1

    def __len__(self) -> int:
        return len(self._buffer)
