"""UPC-based phase classification — the Section 4 pitfall, made concrete.

The paper warns: "Directly using UPC in phase classification is not
reliable for dynamic management, as the resulting phases vary with
different power management settings."  This module implements exactly
that unreliable scheme so the warning can be demonstrated quantitatively
(see ``benchmarks/test_ext_upc_pitfall.py``): a UPC-derived metric, a
phase table binned on it, and a metric extractor pluggable into
:class:`~repro.core.governor.PhasePredictionGovernor`.

The metric is *CPU slack*, ``max(0, UPC_REFERENCE - UPC)``: it grows as
the observed UPC falls, so — like ``Mem/Uop`` — larger values mean "more
memory bound" and the standard monotone phase-to-DVFS policies apply
unchanged.  Unlike ``Mem/Uop``, observed UPC rises when the core slows
down, so a slowed-down memory phase *looks* more CPU-bound, the governor
speeds back up, and the classification oscillates with its own actions.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.governor import IntervalCounters
from repro.core.phases import PhaseTable

#: UPC of a fully CPU-bound workload on this platform (zero slack).
UPC_REFERENCE = 2.0

#: UPC breakpoints separating the six phases, chosen so that at the
#: highest frequency they classify the behaviour space similarly to the
#: paper's Mem/Uop bins (high UPC = phase 1, very low UPC = phase 6).
UPC_BREAKPOINTS: Tuple[float, ...] = (1.40, 1.00, 0.70, 0.45, 0.25)


def upc_slack_metric(counters: IntervalCounters) -> float:
    """The UPC-derived classification metric (CPU slack)."""
    return max(0.0, UPC_REFERENCE - counters.upc)


def upc_phase_table() -> PhaseTable:
    """A six-phase table binned on the UPC slack metric.

    Phase 1 covers UPC above the first breakpoint (little slack), phase
    6 covers UPC below the last one (mostly stalled).
    """
    edges = tuple(UPC_REFERENCE - upc for upc in UPC_BREAKPOINTS)
    return PhaseTable(edges)
