"""Duration-based phase predictor — extension baseline.

Implements the prediction style of the paper's reference [14] (Isci,
Martonosi & Buyuktosunoglu: "Long-term Workload Phases: Duration
Predictions and Applications to DVFS"): learn how long each phase
typically persists and which phase usually follows it; predict that the
current phase continues while its run is statistically likely to
continue, and switch to the learned successor once the run has outlived
its typical duration.

Compared to the GPHT this predictor sees durations and one-step
transitions but no deeper patterns — a useful mid-point between the
statistical predictors and global pattern history.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import DefaultDict, Optional

from repro.analysis.durations import DurationStatistics
from repro.core.predictors._checkpoint import (
    as_int,
    as_opt_int,
    check_config,
    check_kind,
    count_pairs,
)
from repro.core.predictors.base import (
    PhaseObservation,
    PhasePredictor,
    PredictorState,
)
from repro.errors import ConfigurationError


class DurationPredictor(PhasePredictor):
    """Run-length + successor phase predictor.

    Args:
        continuation_threshold: Predict the current phase persists while
            its empirical continuation probability at the current run
            length is at least this value; below it, predict the
            most-likely successor.
    """

    def __init__(self, continuation_threshold: float = 0.5) -> None:
        if not 0.0 < continuation_threshold <= 1.0:
            raise ConfigurationError(
                "continuation_threshold must be in (0, 1], got "
                f"{continuation_threshold}"
            )
        self._threshold = continuation_threshold
        self._durations = DurationStatistics()
        self._successors: DefaultDict[int, "Counter[int]"] = defaultdict(
            Counter
        )
        self._current: Optional[int] = None
        self._elapsed = 0

    @property
    def name(self) -> str:
        return f"Duration_{self._threshold:g}"

    @property
    def durations(self) -> DurationStatistics:
        """The run-length statistics learned so far."""
        return self._durations

    @property
    def current_run_length(self) -> int:
        """Length of the in-progress run (0 before any observation)."""
        return self._elapsed

    def observe(self, observation: PhaseObservation) -> None:
        phase = observation.phase
        if self._current is None:
            self._current = phase
            self._elapsed = 1
            return
        if phase == self._current:
            self._elapsed += 1
            return
        # The previous run just completed: learn its duration and its
        # successor, then start the new run.
        self._durations.record(self._current, self._elapsed)
        self._successors[self._current][phase] += 1
        self._current = phase
        self._elapsed = 1

    def predict(self) -> int:
        if self._current is None:
            return self.DEFAULT_PHASE
        continuation = self._durations.continuation_probability(
            self._current, self._elapsed
        )
        if continuation >= self._threshold:
            return self._current
        successors = self._successors.get(self._current)
        if not successors:
            return self._current
        return successors.most_common(1)[0][0]

    def reset(self) -> None:
        self._durations = DurationStatistics()
        self._successors = defaultdict(Counter)
        self._current = None
        self._elapsed = 0

    # -- checkpointing ------------------------------------------------------

    def export_state(self) -> PredictorState:
        """Lossless JSON-able snapshot: duration histograms, successor
        counts (Counter insertion order — ``most_common`` ties break on
        it) and the in-progress run.
        """
        return {
            "kind": "duration",
            "continuation_threshold": self._threshold,
            "durations": self._durations.to_payload(),
            "successors": [
                [source, [[target, n] for target, n in counts.items()]]
                for source, counts in self._successors.items()
            ],
            "current": self._current,
            "elapsed": self._elapsed,
        }

    def restore_state(self, state: PredictorState) -> None:
        check_kind(state, "duration")
        check_config(
            state, (("continuation_threshold", self._threshold),)
        )
        durations = DurationStatistics.from_payload(state.get("durations"))
        raw = state.get("successors")
        if not isinstance(raw, list):
            raise ConfigurationError("checkpoint 'successors' must be a list")
        successors: DefaultDict[int, "Counter[int]"] = defaultdict(Counter)
        for entry in raw:
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise ConfigurationError(
                    f"malformed successor checkpoint entry: {entry!r}"
                )
            source, pairs = entry
            if isinstance(source, bool) or not isinstance(source, int):
                raise ConfigurationError(
                    f"successor source must be an int, got {source!r}"
                )
            counts = successors[source]
            for target, n in count_pairs(pairs, "successor"):
                counts[target] = n
        elapsed = as_int(state.get("elapsed"), "elapsed")
        if elapsed < 0:
            raise ConfigurationError(f"elapsed must be >= 0, got {elapsed}")
        self._durations = durations
        self._successors = successors
        self._current = as_opt_int(state.get("current"), "current")
        self._elapsed = elapsed
