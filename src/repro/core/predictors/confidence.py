"""GPHT with saturating confidence counters — extension variant.

Hardware branch predictors rarely act on a single observation: two-bit
saturating counters add hysteresis so one anomalous outcome does not
flip a well-established prediction.  The paper's GPHT updates its stored
prediction from the single most recent outcome; this variant asks
whether branch-predictor-style hysteresis helps at phase granularity.

Each PHT entry carries a saturating confidence counter alongside its
prediction:

* a correct outcome increments confidence (up to ``max_confidence``);
* a wrong outcome decrements it; only when confidence is exhausted is
  the stored prediction replaced with the new outcome;
* predictions are *used* only at or above ``use_threshold`` — a
  low-confidence entry falls back to last-value, like a tag miss.

The trade-off it probes: hysteresis absorbs one-off jitter (a stretched
motif element) but reacts a step late to genuine pattern changes.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from repro.core.predictors._checkpoint import (
    as_int,
    as_opt_int,
    check_config,
    check_kind,
    int_list,
)
from repro.core.predictors.base import (
    PhaseObservation,
    PhasePredictor,
    PredictorState,
)
from repro.core.predictors.gpht import EMPTY_PHASE
from repro.errors import ConfigurationError


@dataclass
class _Entry:
    """One PHT entry: prediction plus saturating confidence."""

    prediction: Optional[int] = None
    confidence: int = 0


class ConfidenceGPHTPredictor(PhasePredictor):
    """GPHT variant with per-entry saturating confidence counters.

    Args:
        gphr_depth: Global history register length.
        pht_entries: Pattern history table capacity (LRU replaced).
        max_confidence: Saturation ceiling of the counters (2-bit
            counters correspond to 3).
        use_threshold: Minimum confidence at which a stored prediction
            overrides the last-value fallback (>= 1).
    """

    def __init__(
        self,
        gphr_depth: int = 8,
        pht_entries: int = 128,
        max_confidence: int = 3,
        use_threshold: int = 1,
    ) -> None:
        if gphr_depth < 1:
            raise ConfigurationError(
                f"GPHR depth must be >= 1, got {gphr_depth}"
            )
        if pht_entries < 1:
            raise ConfigurationError(
                f"PHT must have >= 1 entries, got {pht_entries}"
            )
        if max_confidence < 1:
            raise ConfigurationError(
                f"max_confidence must be >= 1, got {max_confidence}"
            )
        if not 1 <= use_threshold <= max_confidence:
            raise ConfigurationError(
                "use_threshold must be in [1, max_confidence], got "
                f"{use_threshold}"
            )
        self._depth = gphr_depth
        self._capacity = pht_entries
        self._max_confidence = max_confidence
        self._use_threshold = use_threshold
        self._gphr: Deque[int] = deque(
            [EMPTY_PHASE] * gphr_depth, maxlen=gphr_depth
        )
        self._pht: "OrderedDict[Tuple[int, ...], _Entry]" = OrderedDict()
        self._pending_tag: Optional[Tuple[int, ...]] = None

    @property
    def name(self) -> str:
        return (
            f"ConfGPHT_{self._depth}_{self._capacity}"
            f"_c{self._max_confidence}t{self._use_threshold}"
        )

    @property
    def pht_occupancy(self) -> int:
        """Number of valid PHT entries currently stored."""
        return len(self._pht)

    def entry_confidence(self, tag: Tuple[int, ...]) -> Optional[int]:
        """The confidence of ``tag``'s entry (None when absent)."""
        entry = self._pht.get(tag)
        return entry.confidence if entry is not None else None

    def observe(self, observation: PhaseObservation) -> None:
        tag = self._pending_tag
        if tag is not None and tag in self._pht:
            entry = self._pht[tag]
            if entry.prediction is None:
                entry.prediction = observation.phase
                entry.confidence = 1
            elif entry.prediction == observation.phase:
                entry.confidence = min(
                    entry.confidence + 1, self._max_confidence
                )
            else:
                entry.confidence -= 1
                if entry.confidence < 0:
                    entry.prediction = observation.phase
                    entry.confidence = 0
            self._pht.move_to_end(tag)
        self._pending_tag = None
        self._gphr.appendleft(observation.phase)

    def predict(self) -> int:
        last_phase = self._gphr[0]
        if last_phase == EMPTY_PHASE:
            return self.DEFAULT_PHASE
        tag = tuple(self._gphr)
        self._pending_tag = tag
        entry = self._pht.get(tag)
        if entry is None:
            self._install(tag)
            return last_phase
        self._pht.move_to_end(tag)
        if (
            entry.prediction is not None
            and entry.confidence >= self._use_threshold
        ):
            return entry.prediction
        return last_phase

    def _install(self, tag: Tuple[int, ...]) -> None:
        if len(self._pht) >= self._capacity:
            self._pht.popitem(last=False)
        self._pht[tag] = _Entry()

    def reset(self) -> None:
        self._gphr = deque([EMPTY_PHASE] * self._depth, maxlen=self._depth)
        self._pht.clear()
        self._pending_tag = None

    # -- checkpointing ------------------------------------------------------

    def export_state(self) -> PredictorState:
        """Lossless JSON-able snapshot: GPHR, PHT entries (tag,
        prediction, confidence) in LRU order, and the pending tag.
        """
        return {
            "kind": "confidence_gpht",
            "gphr_depth": self._depth,
            "pht_entries": self._capacity,
            "max_confidence": self._max_confidence,
            "use_threshold": self._use_threshold,
            "gphr": list(self._gphr),
            "pht": [
                [list(tag), entry.prediction, entry.confidence]
                for tag, entry in self._pht.items()
            ],
            "pending_tag": (
                list(self._pending_tag)
                if self._pending_tag is not None
                else None
            ),
        }

    def restore_state(self, state: PredictorState) -> None:
        check_kind(state, "confidence_gpht")
        check_config(
            state,
            (
                ("gphr_depth", self._depth),
                ("pht_entries", self._capacity),
                ("max_confidence", self._max_confidence),
                ("use_threshold", self._use_threshold),
            ),
        )
        gphr = int_list(state, "gphr")
        if len(gphr) != self._depth:
            raise ConfigurationError(
                f"checkpoint GPHR has {len(gphr)} entries, expected "
                f"{self._depth}"
            )
        raw_pht = state.get("pht")
        if not isinstance(raw_pht, list):
            raise ConfigurationError("checkpoint 'pht' must be a list")
        pht: "OrderedDict[Tuple[int, ...], _Entry]" = OrderedDict()
        for raw_entry in raw_pht:
            if (
                not isinstance(raw_entry, (list, tuple))
                or len(raw_entry) != 3
                or not isinstance(raw_entry[0], (list, tuple))
            ):
                raise ConfigurationError(
                    f"malformed PHT checkpoint entry: {raw_entry!r}"
                )
            tag_values, prediction, confidence = raw_entry
            tag = tuple(as_int(v, "PHT tag") for v in tag_values)
            if len(tag) != self._depth:
                raise ConfigurationError(
                    f"PHT tag {tag} has length {len(tag)}, expected "
                    f"{self._depth}"
                )
            entry = _Entry(
                prediction=as_opt_int(prediction, "PHT prediction"),
                confidence=as_int(confidence, "PHT confidence"),
            )
            if not 0 <= entry.confidence <= self._max_confidence:
                raise ConfigurationError(
                    f"PHT confidence {entry.confidence} outside "
                    f"[0, {self._max_confidence}]"
                )
            pht[tag] = entry
        if len(pht) > self._capacity:
            raise ConfigurationError(
                f"checkpoint holds {len(pht)} PHT entries, capacity is "
                f"{self._capacity}"
            )
        raw_pending = state.get("pending_tag")
        pending: Optional[Tuple[int, ...]] = None
        if raw_pending is not None:
            if not isinstance(raw_pending, (list, tuple)):
                raise ConfigurationError(
                    f"malformed pending_tag: {raw_pending!r}"
                )
            pending = tuple(as_int(v, "pending tag") for v in raw_pending)
        self._gphr = deque(gphr, maxlen=self._depth)
        self._pht = pht
        self._pending_tag = pending
