"""First-order Markov (transition-table) predictor — extension baseline.

Sits between the paper's statistical predictors and the GPHT: it learns
``P(next phase | current phase)`` by counting observed transitions and
predicts the maximum-likelihood successor of the current phase.  With
one step of context it captures sticky behaviour and simple two-phase
alternations, but cannot disambiguate patterns that revisit the same
phase with different continuations — exactly the cases the GPHT's deep
global history resolves.  Including it in comparisons shows how much of
the GPHT's advantage comes from *depth* rather than from learning
transitions at all.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import DefaultDict, Optional

from repro.core.predictors._checkpoint import (
    as_opt_int,
    check_kind,
    count_pairs,
)
from repro.core.predictors.base import (
    PhaseObservation,
    PhasePredictor,
    PredictorState,
)
from repro.errors import ConfigurationError


class MarkovPredictor(PhasePredictor):
    """Maximum-likelihood first-order phase transition predictor.

    Predicts the most frequently observed successor of the current
    phase; ties break toward self (persisting, i.e. last-value
    behaviour).  Phases with no recorded successor fall back to
    last-value prediction.
    """

    def __init__(self) -> None:
        self._transitions: DefaultDict[int, "Counter[int]"] = defaultdict(
            Counter
        )
        self._current: Optional[int] = None

    @property
    def name(self) -> str:
        return "Markov1"

    @property
    def current_phase(self) -> Optional[int]:
        """The most recently observed phase (None before any)."""
        return self._current

    def transition_count(self, source: int, target: int) -> int:
        """Observed ``source -> target`` transitions so far."""
        return self._transitions[source][target]

    def observe(self, observation: PhaseObservation) -> None:
        if self._current is not None:
            self._transitions[self._current][observation.phase] += 1
        self._current = observation.phase

    def predict(self) -> int:
        if self._current is None:
            return self.DEFAULT_PHASE
        successors = self._transitions.get(self._current)
        if not successors:
            return self._current
        best_count = max(successors.values())
        tied = [p for p, n in successors.items() if n == best_count]
        if self._current in tied:
            return self._current
        return tied[0]

    def reset(self) -> None:
        self._transitions.clear()
        self._current = None

    # -- checkpointing ------------------------------------------------------

    def export_state(self) -> PredictorState:
        """Lossless JSON-able snapshot of the transition table.

        Successor counts are listed in Counter insertion order — the
        ``predict`` tie-break (``tied[0]``) depends on it, so a restore
        must reproduce the iteration order, not just the counts.
        """
        return {
            "kind": "markov1",
            "transitions": [
                [source, [[target, n] for target, n in counts.items()]]
                for source, counts in self._transitions.items()
            ],
            "current": self._current,
        }

    def restore_state(self, state: PredictorState) -> None:
        check_kind(state, "markov1")
        raw = state.get("transitions")
        if not isinstance(raw, list):
            raise ConfigurationError("checkpoint 'transitions' must be a list")
        transitions: DefaultDict[int, "Counter[int]"] = defaultdict(Counter)
        for entry in raw:
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise ConfigurationError(
                    f"malformed transition checkpoint entry: {entry!r}"
                )
            source, pairs = entry
            if isinstance(source, bool) or not isinstance(source, int):
                raise ConfigurationError(
                    f"transition source must be an int, got {source!r}"
                )
            counts = transitions[source]
            for target, n in count_pairs(pairs, "transition"):
                counts[target] = n
        self._transitions = transitions
        self._current = as_opt_int(state.get("current"), "current")
