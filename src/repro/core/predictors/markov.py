"""First-order Markov (transition-table) predictor — extension baseline.

Sits between the paper's statistical predictors and the GPHT: it learns
``P(next phase | current phase)`` by counting observed transitions and
predicts the maximum-likelihood successor of the current phase.  With
one step of context it captures sticky behaviour and simple two-phase
alternations, but cannot disambiguate patterns that revisit the same
phase with different continuations — exactly the cases the GPHT's deep
global history resolves.  Including it in comparisons shows how much of
the GPHT's advantage comes from *depth* rather than from learning
transitions at all.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import DefaultDict, Optional

from repro.core.predictors.base import PhaseObservation, PhasePredictor


class MarkovPredictor(PhasePredictor):
    """Maximum-likelihood first-order phase transition predictor.

    Predicts the most frequently observed successor of the current
    phase; ties break toward self (persisting, i.e. last-value
    behaviour).  Phases with no recorded successor fall back to
    last-value prediction.
    """

    def __init__(self) -> None:
        self._transitions: DefaultDict[int, "Counter[int]"] = defaultdict(
            Counter
        )
        self._current: Optional[int] = None

    @property
    def name(self) -> str:
        return "Markov1"

    @property
    def current_phase(self) -> Optional[int]:
        """The most recently observed phase (None before any)."""
        return self._current

    def transition_count(self, source: int, target: int) -> int:
        """Observed ``source -> target`` transitions so far."""
        return self._transitions[source][target]

    def observe(self, observation: PhaseObservation) -> None:
        if self._current is not None:
            self._transitions[self._current][observation.phase] += 1
        self._current = observation.phase

    def predict(self) -> int:
        if self._current is None:
            return self.DEFAULT_PHASE
        successors = self._transitions.get(self._current)
        if not successors:
            return self._current
        best_count = max(successors.values())
        tied = [p for p, n in successors.items() if n == best_count]
        if self._current in tied:
            return self._current
        return tied[0]

    def reset(self) -> None:
        self._transitions.clear()
        self._current = None
