"""Direct-mapped (hashed-index) GPHT variant — extension.

The paper implements the PHT in software, so it can afford full tags
and associative search; it even notes that "holding and associatively
searching through a 1024 entry PHT may be undesirable" before settling
on 128 entries.  A *hardware* phase predictor (as in Sherwood et al.'s
phase tracking) would instead index a direct-mapped table by a hash of
the history, accepting aliasing in exchange for O(1) untagged lookups.

This variant quantifies that trade-off: the GPHR indexes a power-of-two
table via a multiplicative hash, entries carry no tags, and distinct
histories that collide overwrite each other's predictions.  Comparing it
against the associative GPHT at equal capacities shows what the paper's
software implementation buys.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.core.predictors._checkpoint import (
    as_opt_int,
    check_config,
    check_kind,
    int_list,
)
from repro.core.predictors.base import (
    PhaseObservation,
    PhasePredictor,
    PredictorState,
)
from repro.core.predictors.gpht import EMPTY_PHASE
from repro.errors import ConfigurationError

#: Knuth's multiplicative hashing constant (golden-ratio derived).
_HASH_MULTIPLIER = 2654435761


class DirectMappedGPHTPredictor(PhasePredictor):
    """GPHT with an untagged, direct-mapped pattern table.

    Args:
        gphr_depth: Global history register length.
        table_entries: Table size; must be a power of two (index bits).
    """

    def __init__(self, gphr_depth: int = 8, table_entries: int = 128) -> None:
        if gphr_depth < 1:
            raise ConfigurationError(
                f"GPHR depth must be >= 1, got {gphr_depth}"
            )
        if table_entries < 1 or table_entries & (table_entries - 1):
            raise ConfigurationError(
                f"table_entries must be a power of two, got {table_entries}"
            )
        self._depth = gphr_depth
        self._entries = table_entries
        self._gphr: Deque[int] = deque(
            [EMPTY_PHASE] * gphr_depth, maxlen=gphr_depth
        )
        self._table: List[Optional[int]] = [None] * table_entries
        self._pending_index: Optional[int] = None

    @property
    def name(self) -> str:
        return f"DMGPHT_{self._depth}_{self._entries}"

    @property
    def table_entries(self) -> int:
        """Table capacity (power of two)."""
        return self._entries

    def index_of(self, history: Tuple[int, ...]) -> int:
        """The table slot a history hashes to (exposed for tests)."""
        key = 0
        for phase in history:
            key = (key * 31 + phase) & 0xFFFFFFFF
        return ((key * _HASH_MULTIPLIER) & 0xFFFFFFFF) % self._entries

    def observe(self, observation: PhaseObservation) -> None:
        if self._pending_index is not None:
            # Untagged: whatever history mapped here last gets trained,
            # aliasing included.
            self._table[self._pending_index] = observation.phase
        self._pending_index = None
        self._gphr.appendleft(observation.phase)

    def predict(self) -> int:
        last_phase = self._gphr[0]
        if last_phase == EMPTY_PHASE:
            return self.DEFAULT_PHASE
        index = self.index_of(tuple(self._gphr))
        self._pending_index = index
        stored = self._table[index]
        if stored is None:
            return last_phase
        return stored

    def reset(self) -> None:
        self._gphr = deque([EMPTY_PHASE] * self._depth, maxlen=self._depth)
        self._table = [None] * self._entries
        self._pending_index = None

    # -- checkpointing ------------------------------------------------------

    def export_state(self) -> PredictorState:
        """Lossless JSON-able snapshot: GPHR, the full (untagged) table
        and the slot pending training.
        """
        return {
            "kind": "direct_mapped_gpht",
            "gphr_depth": self._depth,
            "table_entries": self._entries,
            "gphr": list(self._gphr),
            "table": list(self._table),
            "pending_index": self._pending_index,
        }

    def restore_state(self, state: PredictorState) -> None:
        check_kind(state, "direct_mapped_gpht")
        check_config(
            state,
            (
                ("gphr_depth", self._depth),
                ("table_entries", self._entries),
            ),
        )
        gphr = int_list(state, "gphr")
        if len(gphr) != self._depth:
            raise ConfigurationError(
                f"checkpoint GPHR has {len(gphr)} entries, expected "
                f"{self._depth}"
            )
        raw_table = state.get("table")
        if not isinstance(raw_table, list):
            raise ConfigurationError("checkpoint 'table' must be a list")
        if len(raw_table) != self._entries:
            raise ConfigurationError(
                f"checkpoint table has {len(raw_table)} slots, expected "
                f"{self._entries}"
            )
        table = [as_opt_int(v, "table slot") for v in raw_table]
        pending = as_opt_int(state.get("pending_index"), "pending_index")
        if pending is not None and not 0 <= pending < self._entries:
            raise ConfigurationError(
                f"pending_index {pending} outside [0, {self._entries})"
            )
        self._gphr = deque(gphr, maxlen=self._depth)
        self._table = table
        self._pending_index = pending
