"""Common interface for phase predictors.

Every predictor follows the same observe/predict cycle that the paper's
PMI handler drives once per sampling interval:

1. :meth:`PhasePredictor.observe` — the handler reads the counters,
   classifies the elapsed interval and tells the predictor what actually
   happened;
2. :meth:`PhasePredictor.predict` — the predictor names the phase it
   expects in the *next* interval.

Observations carry both the discrete phase id and the raw ``Mem/Uop``
value, because some statistical predictors (the variable-window family)
key their history resets off the raw metric.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import ConfigurationError
from repro.obs.tracer import NULL_TRACER, Tracer

#: A JSON-able predictor checkpoint payload (see ``export_state``).
PredictorState = Dict[str, object]


@dataclass(frozen=True)
class PhaseObservation:
    """What the handler observed for one completed sampling interval.

    Attributes:
        phase: The classified phase id (1-based).
        mem_per_uop: The raw ``Mem/Uop`` value the phase was derived from.
    """

    phase: int
    mem_per_uop: float


class PhasePredictor(ABC):
    """Abstract observe/predict phase predictor.

    Subclasses must be usable cold: :meth:`predict` may be called before
    any observation, in which case a sensible default (phase 1, the
    fastest setting) keeps the machine safe.
    """

    #: Phase predicted before any observation has been made.
    DEFAULT_PHASE = 1

    #: Trace collector; the shared no-op singleton until bound.  Kept on
    #: the class so predictors that never bind pay nothing.
    _tracer: Tracer = NULL_TRACER

    @property
    def tracer(self) -> Tracer:
        """The bound trace collector (``NULL_TRACER`` by default)."""
        return self._tracer

    def bind_tracer(self, tracer: Tracer) -> None:
        """Attach a trace collector; recording must not change behaviour."""
        self._tracer = tracer

    @property
    @abstractmethod
    def name(self) -> str:
        """Short display name (used in figures and reports)."""

    @abstractmethod
    def observe(self, observation: PhaseObservation) -> None:
        """Record the actual behaviour of the interval that just ended."""

    @abstractmethod
    def predict(self) -> int:
        """Predict the phase of the next interval."""

    @abstractmethod
    def reset(self) -> None:
        """Forget all history (fresh application start)."""

    # -- batch evaluation (vectorized fast path) ----------------------------

    def observe_batch(
        self, phases: Sequence[int], mem_values: Sequence[float]
    ) -> None:
        """Record a run of completed intervals in one call.

        ``phases[i]`` and ``mem_values[i]`` describe the same interval,
        in execution order.  Equivalent to calling :meth:`observe` once
        per sample; subclasses may override with a batch kernel, but the
        result must be bit-identical to the scalar loop — same mutable
        state (and so the same :meth:`export_state` payload) afterwards.
        """
        observe = self.observe
        for phase, value in zip(phases, mem_values):
            observe(PhaseObservation(phase=phase, mem_per_uop=value))

    def predict_batch(
        self, phases: Sequence[int], mem_values: Sequence[float]
    ) -> List[int]:
        """Run the fused observe/predict cycle over a run of intervals.

        For each sample ``i`` the predictor first observes
        ``(phases[i], mem_values[i])`` and then predicts the next phase;
        the returned list holds those predictions, one per sample.  This
        is exactly the per-interval cycle the PMI handler drives, so
        ``predict_batch(p, m)[i]`` must be bit-identical to what scalar
        ``observe``/``predict`` calls would have returned — including
        hit/miss accounting and any other mutable state.

        Kernelized overrides must fall back to this scalar loop when a
        trace collector is bound and enabled, so per-interval trace
        events are never silently dropped.
        """
        observe = self.observe
        predict = self.predict
        predictions: List[int] = []
        append = predictions.append
        for phase, value in zip(phases, mem_values):
            observe(PhaseObservation(phase=phase, mem_per_uop=value))
            append(predict())
        return predictions

    # -- checkpointing (repro.serve session snapshot/restore) --------------

    def export_state(self) -> PredictorState:
        """A lossless, JSON-able snapshot of all mutable predictor state.

        A predictor restored from this payload must emit *bit-identical*
        predictions to the original from that point on.  Predictors that
        do not support checkpointing raise ``ConfigurationError``; the
        base class supports none.
        """
        raise ConfigurationError(
            f"{self.name} does not support state checkpointing"
        )

    def restore_state(self, state: PredictorState) -> None:
        """Replace all mutable state with an :meth:`export_state` payload.

        Raises:
            ConfigurationError: On a malformed payload or one exported
                from an incompatible predictor configuration.
        """
        raise ConfigurationError(
            f"{self.name} does not support state checkpointing"
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
