"""Tournament (hybrid) phase predictor — extension variant.

Hybrid branch predictors (McFarling) pair a simple component with a
pattern-based one and let a saturating *chooser* counter arbitrate based
on which component has been right more often recently.  Translated to
phase prediction: last-value is unbeatable on stable applications and
safe on random ones, while the GPHT wins on patterned variability — a
chooser gets the best of both without manual per-workload selection.

The chooser is a single global saturating counter (the phase stream is
one global sequence, unlike per-branch streams): each interval where
exactly one component was correct nudges the counter toward it.
"""

from __future__ import annotations

from typing import Optional

from repro.core.predictors._checkpoint import (
    as_int,
    as_opt_int,
    check_config,
    check_kind,
)
from repro.core.predictors.base import (
    PhaseObservation,
    PhasePredictor,
    PredictorState,
)
from repro.core.predictors.gpht import GPHTPredictor
from repro.core.predictors.last_value import LastValuePredictor
from repro.errors import ConfigurationError


class TournamentPredictor(PhasePredictor):
    """Chooser-arbitrated combination of last-value and a GPHT.

    Args:
        gphr_depth: History depth of the GPHT component.
        pht_entries: PHT capacity of the GPHT component.
        chooser_bits: Width of the saturating chooser counter; the
            counter ranges over ``[0, 2^bits - 1]`` with values in the
            upper half selecting the GPHT.
    """

    def __init__(
        self,
        gphr_depth: int = 8,
        pht_entries: int = 128,
        chooser_bits: int = 2,
    ) -> None:
        if chooser_bits < 1:
            raise ConfigurationError(
                f"chooser_bits must be >= 1, got {chooser_bits}"
            )
        self._simple = LastValuePredictor()
        self._pattern = GPHTPredictor(gphr_depth, pht_entries)
        self._chooser_max = (1 << chooser_bits) - 1
        # Start in the middle, leaning pattern-ward: ties go to GPHT,
        # whose miss fallback is last-value anyway.
        self._chooser = (self._chooser_max + 1) // 2
        self._pending_simple: Optional[int] = None
        self._pending_pattern: Optional[int] = None

    @property
    def name(self) -> str:
        return (
            f"Tournament_{self._pattern.gphr_depth}"
            f"_{self._pattern.pht_capacity}"
        )

    @property
    def chooser_value(self) -> int:
        """Current chooser counter (upper half selects the GPHT)."""
        return self._chooser

    @property
    def selects_pattern(self) -> bool:
        """Whether the chooser currently favours the GPHT component."""
        return self._chooser > self._chooser_max // 2

    def observe(self, observation: PhaseObservation) -> None:
        # Train the chooser on the components' previous predictions.
        if (
            self._pending_simple is not None
            and self._pending_pattern is not None
        ):
            simple_hit = self._pending_simple == observation.phase
            pattern_hit = self._pending_pattern == observation.phase
            if pattern_hit and not simple_hit:
                self._chooser = min(self._chooser + 1, self._chooser_max)
            elif simple_hit and not pattern_hit:
                self._chooser = max(self._chooser - 1, 0)
        self._simple.observe(observation)
        self._pattern.observe(observation)

    def predict(self) -> int:
        simple = self._simple.predict()
        pattern = self._pattern.predict()
        self._pending_simple = simple
        self._pending_pattern = pattern
        return pattern if self.selects_pattern else simple

    def reset(self) -> None:
        self._simple.reset()
        self._pattern.reset()
        self._chooser = (self._chooser_max + 1) // 2
        self._pending_simple = None
        self._pending_pattern = None

    # -- checkpointing ------------------------------------------------------

    def export_state(self) -> PredictorState:
        """Lossless JSON-able snapshot: both component states, the
        chooser counter and the pending component predictions.
        """
        return {
            "kind": "tournament",
            "chooser_max": self._chooser_max,
            "chooser": self._chooser,
            "simple": self._simple.export_state(),
            "pattern": self._pattern.export_state(),
            "pending_simple": self._pending_simple,
            "pending_pattern": self._pending_pattern,
        }

    def restore_state(self, state: PredictorState) -> None:
        check_kind(state, "tournament")
        check_config(state, (("chooser_max", self._chooser_max),))
        chooser = as_int(state.get("chooser"), "chooser")
        if not 0 <= chooser <= self._chooser_max:
            raise ConfigurationError(
                f"chooser {chooser} outside [0, {self._chooser_max}]"
            )
        raw_simple = state.get("simple")
        raw_pattern = state.get("pattern")
        if not isinstance(raw_simple, dict) or not isinstance(
            raw_pattern, dict
        ):
            raise ConfigurationError(
                "checkpoint 'simple' and 'pattern' must be dicts"
            )
        # Restore into freshly built components so a half-applied nested
        # restore (e.g. a corrupt pattern payload) cannot leave this
        # predictor with mutated component state.
        simple = LastValuePredictor()
        simple.restore_state(raw_simple)
        pattern = GPHTPredictor(
            self._pattern.gphr_depth, self._pattern.pht_capacity
        )
        pattern.restore_state(raw_pattern)
        self._simple = simple
        self._pattern = pattern
        self._chooser_max = as_int(state.get("chooser_max"), "chooser_max")
        self._chooser = chooser
        self._pending_simple = as_opt_int(
            state.get("pending_simple"), "pending_simple"
        )
        self._pending_pattern = as_opt_int(
            state.get("pending_pattern"), "pending_pattern"
        )
