"""Phase predictors: the GPHT and the statistical baselines it is
evaluated against (paper Section 3)."""

from typing import List

from repro.core.predictors.base import PhaseObservation, PhasePredictor
from repro.core.predictors.confidence import ConfidenceGPHTPredictor
from repro.core.predictors.direct_mapped import DirectMappedGPHTPredictor
from repro.core.predictors.duration import DurationPredictor
from repro.core.predictors.fixed_window import FixedWindowPredictor
from repro.core.predictors.gpht import GPHTPredictor
from repro.core.predictors.hybrid import TournamentPredictor
from repro.core.predictors.last_value import LastValuePredictor
from repro.core.predictors.markov import MarkovPredictor
from repro.core.predictors.oracle import OraclePredictor
from repro.core.predictors.variable_window import VariableWindowPredictor

__all__ = [
    "PhaseObservation",
    "PhasePredictor",
    "LastValuePredictor",
    "FixedWindowPredictor",
    "VariableWindowPredictor",
    "MarkovPredictor",
    "DurationPredictor",
    "ConfidenceGPHTPredictor",
    "TournamentPredictor",
    "DirectMappedGPHTPredictor",
    "GPHTPredictor",
    "OraclePredictor",
    "paper_predictor_suite",
]


def paper_predictor_suite() -> List[PhasePredictor]:
    """The six predictors evaluated in the paper's Figure 4.

    Returns:
        A list of freshly constructed predictors: last value, fixed
        windows of 8 and 128, variable windows of 128 entries with
        transition thresholds 0.005 and 0.030, and the GPHT with depth 8
        and 1024 PHT entries.
    """
    return [
        LastValuePredictor(),
        FixedWindowPredictor(window_size=8),
        FixedWindowPredictor(window_size=128),
        VariableWindowPredictor(window_size=128, transition_threshold=0.005),
        VariableWindowPredictor(window_size=128, transition_threshold=0.030),
        GPHTPredictor(gphr_depth=8, pht_entries=1024),
    ]
