"""Variable-history-window predictor.

Like the fixed window, but "the history can be shrunk in case of a phase
transition, where previous history becomes obsolete for the following
phase predictions" (paper Section 3).  A transition is detected on the
*raw* metric: whenever ``Mem/Uop`` moves by more than
``transition_threshold`` between consecutive samples, all accumulated
history is discarded and the window restarts from the new behaviour.

The paper evaluates a 128-entry window with thresholds 0.005 (eager
resets — behaves like last-value under variation) and 0.030 (reluctant
resets — behaves like a long majority window).
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque, Optional

from repro.core.predictors._checkpoint import (
    as_float,
    check_config,
    check_kind,
    int_list,
)
from repro.core.predictors.base import (
    PhaseObservation,
    PhasePredictor,
    PredictorState,
)
from repro.errors import ConfigurationError


class VariableWindowPredictor(PhasePredictor):
    """Sliding window that resets on detected phase transitions.

    Args:
        window_size: Maximum observations retained (>= 1).
        transition_threshold: ``Mem/Uop`` delta between consecutive
            samples above which history is considered obsolete (> 0).
    """

    def __init__(self, window_size: int, transition_threshold: float) -> None:
        if window_size < 1:
            raise ConfigurationError(
                f"window size must be >= 1, got {window_size}"
            )
        if transition_threshold <= 0:
            raise ConfigurationError(
                f"transition threshold must be > 0, got {transition_threshold}"
            )
        self._window_size = window_size
        self._threshold = transition_threshold
        self._window: Deque[int] = deque(maxlen=window_size)
        self._last_metric: Optional[float] = None

    @property
    def name(self) -> str:
        return f"VarWindow_{self._window_size}_{self._threshold:g}"

    @property
    def window_length(self) -> int:
        """Current (possibly shrunk) history length."""
        return len(self._window)

    def observe(self, observation: PhaseObservation) -> None:
        if (
            self._last_metric is not None
            and abs(observation.mem_per_uop - self._last_metric)
            > self._threshold
        ):
            self._window.clear()
        self._window.append(observation.phase)
        self._last_metric = observation.mem_per_uop

    def predict(self) -> int:
        if not self._window:
            return self.DEFAULT_PHASE
        counts = Counter(self._window)
        best_count = max(counts.values())
        tied = {phase for phase, n in counts.items() if n == best_count}
        if len(tied) == 1:
            return next(iter(tied))
        for phase in reversed(self._window):
            if phase in tied:
                return phase
        raise AssertionError("unreachable: tie set drawn from the window")

    def reset(self) -> None:
        self._window.clear()
        self._last_metric = None

    # -- checkpointing ------------------------------------------------------

    def export_state(self) -> PredictorState:
        """Lossless JSON-able snapshot: window contents and the raw
        metric the next transition test compares against.
        """
        return {
            "kind": "variable_window",
            "window_size": self._window_size,
            "transition_threshold": self._threshold,
            "window": list(self._window),
            "last_metric": self._last_metric,
        }

    def restore_state(self, state: PredictorState) -> None:
        check_kind(state, "variable_window")
        check_config(
            state,
            (
                ("window_size", self._window_size),
                ("transition_threshold", self._threshold),
            ),
        )
        window = int_list(state, "window")
        if len(window) > self._window_size:
            raise ConfigurationError(
                f"checkpoint window holds {len(window)} entries, size is "
                f"{self._window_size}"
            )
        raw_metric = state.get("last_metric")
        self._window = deque(window, maxlen=self._window_size)
        self._last_metric = (
            None if raw_metric is None else as_float(raw_metric, "last_metric")
        )
