"""Shared narrowing helpers for predictor checkpoint payloads.

``export_state`` payloads round-trip through JSON, so ``restore_state``
implementations must re-validate every scalar they read.  These helpers
keep the narrowing logic (and the error wording) identical across the
predictor zoo.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.predictors.base import PredictorState
from repro.errors import ConfigurationError


def check_kind(state: PredictorState, kind: str) -> None:
    """Reject payloads exported by a different predictor type."""
    if state.get("kind") != kind:
        raise ConfigurationError(
            f"checkpoint kind {state.get('kind')!r} is not {kind!r}"
        )


def check_config(
    state: PredictorState, pairs: Sequence[Tuple[str, object]]
) -> None:
    """Reject payloads whose configuration differs from this instance."""
    for key, expected in pairs:
        if state.get(key) != expected:
            raise ConfigurationError(
                f"checkpoint {key}={state.get(key)!r} does not match "
                f"this predictor's {key}={expected!r}"
            )


def as_int(value: object, label: str) -> int:
    """Narrow a checkpoint scalar to int (bools are not phase ids)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{label} must be an int, got {value!r}")
    return value


def as_opt_int(value: object, label: str) -> Optional[int]:
    """Narrow a checkpoint scalar to int-or-None."""
    if value is None:
        return None
    return as_int(value, label)


def as_float(value: object, label: str) -> float:
    """Narrow a checkpoint scalar to float (ints promote losslessly)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(f"{label} must be a number, got {value!r}")
    return float(value)


def int_list(state: PredictorState, key: str) -> List[int]:
    """Extract a list-of-ints field from a checkpoint payload."""
    raw = state.get(key)
    if not isinstance(raw, list):
        raise ConfigurationError(f"checkpoint {key!r} must be a list")
    return [as_int(v, key) for v in raw]


def count_pairs(value: object, label: str) -> List[Tuple[int, int]]:
    """Narrow an insertion-ordered ``[[key, count], ...]`` pair list.

    Counter-backed predictors break frequency ties on insertion order,
    so exports list pairs in iteration order and restores must preserve
    it exactly — never sort.
    """
    if not isinstance(value, list):
        raise ConfigurationError(f"{label} must be a list, got {value!r}")
    pairs: List[Tuple[int, int]] = []
    for entry in value:
        if not isinstance(entry, (list, tuple)) or len(entry) != 2:
            raise ConfigurationError(f"malformed {label} pair: {entry!r}")
        pairs.append((as_int(entry[0], label), as_int(entry[1], label)))
    return pairs
