"""Fixed-history-window predictor.

Predicts ``Phase[t+1] = f(Phase[t], ..., Phase[t - (winsize-1)])`` over a
sliding window of the last ``window_size`` observations (paper Section 3).
Two selector functions ``f`` are provided, matching the options the paper
lists:

* ``"majority"`` — a population-count selector: the most frequent phase
  in the window wins, ties broken toward the most recently observed of
  the tied phases;
* ``"mean"`` — the window's phase ids are averaged and rounded to the
  nearest valid phase (an "averaging function" over the discretised
  metric).
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque, Dict, List, Sequence

from repro.core.predictors.base import (
    PhaseObservation,
    PhasePredictor,
    PredictorState,
)
from repro.errors import ConfigurationError

_SELECTORS = ("majority", "mean")


class FixedWindowPredictor(PhasePredictor):
    """Sliding-window statistical predictor.

    Args:
        window_size: Number of past observations considered (>= 1).  The
            paper evaluates sizes 8 and 128.
        selector: ``"majority"`` (default) or ``"mean"``.
    """

    def __init__(self, window_size: int, selector: str = "majority") -> None:
        if window_size < 1:
            raise ConfigurationError(
                f"window size must be >= 1, got {window_size}"
            )
        if selector not in _SELECTORS:
            raise ConfigurationError(
                f"selector must be one of {_SELECTORS}, got {selector!r}"
            )
        self._window_size = window_size
        self._selector = selector
        self._window: Deque[int] = deque(maxlen=window_size)

    @property
    def name(self) -> str:
        return f"FixWindow_{self._window_size}"

    @property
    def window_size(self) -> int:
        """Maximum number of observations retained."""
        return self._window_size

    def observe(self, observation: PhaseObservation) -> None:
        self._window.append(observation.phase)

    def predict(self) -> int:
        if not self._window:
            return self.DEFAULT_PHASE
        if self._selector == "mean":
            return round(sum(self._window) / len(self._window))
        return self._majority()

    def _majority(self) -> int:
        counts = Counter(self._window)
        best_count = max(counts.values())
        tied = {phase for phase, n in counts.items() if n == best_count}
        if len(tied) == 1:
            return next(iter(tied))
        # Tie break: the most recently observed among the tied phases.
        for phase in reversed(self._window):
            if phase in tied:
                return phase
        raise AssertionError("unreachable: tie set drawn from the window")

    def observe_batch(
        self, phases: Sequence[int], mem_values: Sequence[float]
    ) -> None:
        """Batch kernel: extend the window; ``maxlen`` evicts the rest."""
        self._window.extend(phases)

    def predict_batch(
        self, phases: Sequence[int], mem_values: Sequence[float]
    ) -> List[int]:
        """Batch kernel for the fused observe/predict cycle.

        Slides incrementally over ``existing window + phases`` with a
        running sum (``"mean"``) or running counts plus
        last-occurrence positions (``"majority"``).  The majority
        tie-break — most recently observed among the tied phases — is
        exactly the scalar reversed-window scan: that scan returns the
        tied phase whose latest occurrence index is greatest.  The
        scalar predictor emits no trace events, so the kernel holds
        with or without a tracer bound.
        """
        if not len(phases):
            return []
        size = self._window_size
        sequence = list(self._window)
        left = 0
        predictions: List[int] = []
        append = predictions.append
        if self._selector == "mean":
            total = sum(sequence)
            for phase in phases:
                sequence.append(phase)
                total += phase
                if len(sequence) - left > size:
                    total -= sequence[left]
                    left += 1
                append(round(total / (len(sequence) - left)))
        else:
            counts: Dict[int, int] = dict(Counter(sequence))
            last_pos: Dict[int, int] = {
                phase: i for i, phase in enumerate(sequence)
            }
            for phase in phases:
                index = len(sequence)
                sequence.append(phase)
                counts[phase] = counts.get(phase, 0) + 1
                last_pos[phase] = index
                if index + 1 - left > size:
                    evicted = sequence[left]
                    remaining = counts[evicted] - 1
                    if remaining:
                        counts[evicted] = remaining
                    else:
                        del counts[evicted]
                    left += 1
                best_count = max(counts.values())
                tied = [p for p, n in counts.items() if n == best_count]
                if len(tied) == 1:
                    append(tied[0])
                else:
                    append(max(tied, key=last_pos.__getitem__))
        self._window = deque(sequence[left:], maxlen=size)
        return predictions

    def reset(self) -> None:
        self._window.clear()

    def export_state(self) -> PredictorState:
        return {
            "kind": "fixed_window",
            "window_size": self._window_size,
            "selector": self._selector,
            "window": list(self._window),
        }

    def restore_state(self, state: PredictorState) -> None:
        if state.get("kind") != "fixed_window":
            raise ConfigurationError(
                f"checkpoint kind {state.get('kind')!r} is not 'fixed_window'"
            )
        for key, expected in (
            ("window_size", self._window_size),
            ("selector", self._selector),
        ):
            if state.get(key) != expected:
                raise ConfigurationError(
                    f"checkpoint {key}={state.get(key)!r} does not match "
                    f"this predictor's {key}={expected!r}"
                )
        raw = state.get("window")
        if not isinstance(raw, list):
            raise ConfigurationError("checkpoint 'window' must be a list")
        window = []
        for value in raw:
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigurationError(
                    f"window entries must be ints, got {value!r}"
                )
            window.append(value)
        if len(window) > self._window_size:
            raise ConfigurationError(
                f"checkpoint window holds {len(window)} entries, size is "
                f"{self._window_size}"
            )
        self._window = deque(window, maxlen=self._window_size)
