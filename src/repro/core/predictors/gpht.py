"""Global Phase History Table (GPHT) predictor — the paper's contribution.

Structure (paper Figure 1), borrowed from two-level global branch
prediction (Yeh & Patt):

* a **Global Phase History Register (GPHR)** — a shift register holding
  the last ``gphr_depth`` observed phases (``GPHR[0]`` is the most
  recent);
* a **Pattern History Table (PHT)** — an associative, LRU-replaced table
  of previously seen GPHR patterns (tags) with the phase that followed
  each pattern last time (the "next phase" prediction).

Operation per sampling interval:

1. the newly observed phase is shifted into the GPHR;
2. the updated GPHR content is compared associatively against the stored
   PHT tags;
3. on a **match** the stored prediction is used; on a **mismatch** the
   last observed phase (``GPHR[0]``) is predicted — a graceful fallback
   to last-value — and the current GPHR contents are installed in the
   PHT, replacing the least recently used entry when the table is full;
4. in the *next* interval, the entry consulted (or installed) for this
   prediction has its stored prediction updated with the phase that
   actually occurred.

Unlike a hardware branch predictor, the GPHT is a software structure in
the OS, so full tags and true LRU are affordable (the paper uses 128
entries deployed, up to 1024 in evaluation).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, List, Optional, Sequence, Tuple

from repro.core.predictors.base import (
    PhaseObservation,
    PhasePredictor,
    PredictorState,
)
from repro.errors import ConfigurationError
from repro.obs.events import PredictionMade

#: GPHR fill value before any real phase has been observed.  Real phases
#: are 1-based, so 0 never collides with an observed phase.
EMPTY_PHASE = 0  # repro-lint: disable=phase-id-range


class GPHTPredictor(PhasePredictor):
    """Global Phase History Table predictor.

    Args:
        gphr_depth: Length of the global history register (the paper
            deploys depth 8).
        pht_entries: Capacity of the pattern history table (the paper
            deploys 128; 1024 in evaluation sweeps).
        replacement: Eviction policy when the PHT is full: ``"lru"``
            (the paper's least-recently-used ages) or ``"fifo"``
            (insertion order) — provided for the replacement ablation.
    """

    REPLACEMENT_POLICIES = ("lru", "fifo")

    def __init__(
        self,
        gphr_depth: int = 8,
        pht_entries: int = 128,
        replacement: str = "lru",
    ) -> None:
        if gphr_depth < 1:
            raise ConfigurationError(
                f"GPHR depth must be >= 1, got {gphr_depth}"
            )
        if pht_entries < 1:
            raise ConfigurationError(
                f"PHT must have >= 1 entries, got {pht_entries}"
            )
        if replacement not in self.REPLACEMENT_POLICIES:
            raise ConfigurationError(
                f"replacement must be one of {self.REPLACEMENT_POLICIES}, "
                f"got {replacement!r}"
            )
        self._replacement = replacement
        self._depth = gphr_depth
        self._capacity = pht_entries
        self._gphr: Deque[int] = deque(
            [EMPTY_PHASE] * gphr_depth, maxlen=gphr_depth
        )
        # Ordered oldest-access-first: true LRU via move_to_end/popitem.
        # Values are the stored "next phase" prediction (None until the
        # first outcome for a freshly installed tag is known).
        self._pht: "OrderedDict[Tuple[int, ...], Optional[int]]" = OrderedDict()
        self._pending_tag: Optional[Tuple[int, ...]] = None
        self._hits = 0
        self._misses = 0

    @property
    def name(self) -> str:
        base = f"GPHT_{self._depth}_{self._capacity}"
        if self._replacement != "lru":
            return f"{base}_{self._replacement}"
        return base

    @property
    def gphr_depth(self) -> int:
        """Length of the global history register."""
        return self._depth

    @property
    def pht_capacity(self) -> int:
        """Maximum number of PHT entries."""
        return self._capacity

    @property
    def replacement(self) -> str:
        """The PHT eviction policy in force (``"lru"`` or ``"fifo"``)."""
        return self._replacement

    @property
    def pht_occupancy(self) -> int:
        """Number of valid PHT entries currently stored."""
        return len(self._pht)

    @property
    def gphr(self) -> Tuple[int, ...]:
        """Current GPHR contents, most recent phase first."""
        return tuple(self._gphr)

    @property
    def hits(self) -> int:
        """PHT tag matches seen so far."""
        return self._hits

    @property
    def misses(self) -> int:
        """PHT tag mismatches seen so far."""
        return self._misses

    def observe(self, observation: PhaseObservation) -> None:
        """Record the actual phase of the interval that just completed.

        First trains the PHT entry consulted by the previous prediction
        (its stored prediction becomes this actual outcome), then shifts
        the phase into the GPHR.
        """
        if self._pending_tag is not None and self._pending_tag in self._pht:
            self._pht[self._pending_tag] = observation.phase
            if self._replacement == "lru":
                self._pht.move_to_end(self._pending_tag)
        self._pending_tag = None
        self._gphr.appendleft(observation.phase)

    def predict(self) -> int:
        """Predict the next phase from the current GPHR pattern.

        While the GPHR still contains ``EMPTY_PHASE`` padding (the first
        ``gphr_depth`` intervals), the lookup counts as a miss and falls
        back to last-value, but the padded pattern is neither installed
        nor trained: real phases are 1-based, so a padded tag can never
        recur once the register fills — installing it would only seed the
        PHT with dead entries that sit there until LRU-evicted.
        """
        last_phase = self._gphr[0]
        if last_phase == EMPTY_PHASE:
            return self.DEFAULT_PHASE
        if EMPTY_PHASE in self._gphr:
            # Warm-up: the pattern is still padded — predict last-value,
            # count the miss, install nothing.
            self._misses += 1
            self._emit_prediction(
                predicted=last_phase, hit=False, installed=False,
                evicted=False, warmup=True,
            )
            return last_phase
        tag = tuple(self._gphr)
        self._pending_tag = tag
        if tag in self._pht:
            self._hits += 1
            stored = self._pht[tag]
            if self._replacement == "lru":
                self._pht.move_to_end(tag)
            # A freshly installed tag whose outcome is not yet known
            # still falls back to last-value.
            predicted = stored if stored is not None else last_phase
            self._emit_prediction(
                predicted=predicted, hit=True, installed=False,
                evicted=False, warmup=False,
            )
            return predicted
        self._misses += 1
        evicted = len(self._pht) >= self._capacity
        self._install(tag)
        self._emit_prediction(
            predicted=last_phase, hit=False, installed=True,
            evicted=evicted, warmup=False,
        )
        return last_phase

    def observe_batch(
        self, phases: Sequence[int], mem_values: Sequence[float]
    ) -> None:
        """Batch kernel for :meth:`observe`.

        Only the first sample can train the PHT (``observe`` clears the
        pending tag, and no ``predict`` runs in between to set a new
        one); the rest merely shift into the GPHR.
        """
        if not len(phases):
            return
        pending = self._pending_tag
        if pending is not None and pending in self._pht:
            self._pht[pending] = phases[0]
            if self._replacement == "lru":
                self._pht.move_to_end(pending)
        self._pending_tag = None
        self._gphr.extendleft(phases)

    def predict_batch(
        self, phases: Sequence[int], mem_values: Sequence[float]
    ) -> List[int]:
        """Batch kernel for the fused observe/predict cycle.

        Replays the exact scalar state machine over local variables —
        the GPHR as an immutable tuple rebuilt by slicing (each shifted
        register state *is* the next lookup tag, so no per-sample
        ``tuple(deque)`` copies), the PHT trained/probed in place with
        the same LRU moves, installs and evictions.  Falls back to the
        scalar loop while tracing so ``PredictionMade`` events keep
        their per-interval stream.
        """
        if self._tracer.enabled:
            return PhasePredictor.predict_batch(self, phases, mem_values)
        pht = self._pht
        depth = self._depth
        capacity = self._capacity
        lru = self._replacement == "lru"
        move_to_end = pht.move_to_end
        popitem = pht.popitem
        pending = self._pending_tag
        hits = self._hits
        misses = self._misses
        tag_now = tuple(self._gphr)
        default_phase = self.DEFAULT_PHASE
        predictions: List[int] = []
        append = predictions.append
        for phase in phases:
            # -- observe: train the consulted entry, shift the GPHR.
            if pending is not None and pending in pht:
                pht[pending] = phase
                if lru:
                    move_to_end(pending)
            pending = None
            tag_now = (phase,) + tag_now[: depth - 1]
            # -- predict from the shifted register.
            last_phase = tag_now[0]
            if last_phase == EMPTY_PHASE:
                append(default_phase)
                continue
            if EMPTY_PHASE in tag_now:
                misses += 1
                append(last_phase)
                continue
            pending = tag_now
            if tag_now in pht:
                hits += 1
                stored = pht[tag_now]
                if lru:
                    move_to_end(tag_now)
                append(stored if stored is not None else last_phase)
                continue
            misses += 1
            if len(pht) >= capacity:
                popitem(last=False)
            pht[tag_now] = None
            append(last_phase)
        self._gphr = deque(tag_now, maxlen=depth)
        self._pending_tag = pending
        self._hits = hits
        self._misses = misses
        return predictions

    def _emit_prediction(
        self,
        *,
        predicted: int,
        hit: bool,
        installed: bool,
        evicted: bool,
        warmup: bool,
    ) -> None:
        """Record a :class:`PredictionMade` event when tracing is on."""
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(
                PredictionMade(
                    interval=tracer.interval,
                    predictor=self.name,
                    predicted_phase=predicted,
                    pht_hit=hit,
                    installed=installed,
                    evicted=evicted,
                    warmup=warmup,
                    occupancy=len(self._pht),
                )
            )

    def _install(self, tag: Tuple[int, ...]) -> None:
        """Add ``tag`` to the PHT, evicting the LRU entry when full."""
        if len(self._pht) >= self._capacity:
            self._pht.popitem(last=False)
        self._pht[tag] = None

    def snapshot(self) -> "OrderedDict[Tuple[int, ...], Optional[int]]":
        """A copy of the PHT contents, least recently used first.

        Exposed for introspection and teaching: each key is a stored
        GPHR pattern (most recent phase first), each value its learned
        "next phase" (None while the first outcome is pending).
        """
        return OrderedDict(self._pht)

    def reset(self) -> None:
        self._gphr = deque([EMPTY_PHASE] * self._depth, maxlen=self._depth)
        self._pht.clear()
        self._pending_tag = None
        self._hits = 0
        self._misses = 0

    # -- checkpointing ------------------------------------------------------

    def export_state(self) -> PredictorState:
        """Lossless JSON-able snapshot: GPHR, PHT (tags, stored
        predictions, LRU order), pending training tag and hit counters.

        PHT entries are listed least-recently-used first, exactly the
        internal ordering, so a restore reproduces future evictions
        bit-for-bit.
        """
        return {
            "kind": "gpht",
            "gphr_depth": self._depth,
            "pht_entries": self._capacity,
            "replacement": self._replacement,
            "gphr": list(self._gphr),
            "pht": [
                [list(tag), stored] for tag, stored in self._pht.items()
            ],
            "pending_tag": (
                list(self._pending_tag)
                if self._pending_tag is not None
                else None
            ),
            "hits": self._hits,
            "misses": self._misses,
        }

    def restore_state(self, state: PredictorState) -> None:
        if state.get("kind") != "gpht":
            raise ConfigurationError(
                f"checkpoint kind {state.get('kind')!r} is not 'gpht'"
            )
        for key, expected in (
            ("gphr_depth", self._depth),
            ("pht_entries", self._capacity),
            ("replacement", self._replacement),
        ):
            if state.get(key) != expected:
                raise ConfigurationError(
                    f"checkpoint {key}={state.get(key)!r} does not match "
                    f"this predictor's {key}={expected!r}"
                )
        gphr = _int_list(state, "gphr")
        if len(gphr) != self._depth:
            raise ConfigurationError(
                f"checkpoint GPHR has {len(gphr)} entries, expected "
                f"{self._depth}"
            )
        raw_pht = state.get("pht")
        if not isinstance(raw_pht, list):
            raise ConfigurationError("checkpoint 'pht' must be a list")
        pht: "OrderedDict[Tuple[int, ...], Optional[int]]" = OrderedDict()
        for entry in raw_pht:
            if (
                not isinstance(entry, (list, tuple))
                or len(entry) != 2
                or not isinstance(entry[0], (list, tuple))
            ):
                raise ConfigurationError(
                    f"malformed PHT checkpoint entry: {entry!r}"
                )
            tag_values, stored = entry
            tag = tuple(_as_int(v, "PHT tag") for v in tag_values)
            if len(tag) != self._depth:
                raise ConfigurationError(
                    f"PHT tag {tag} has length {len(tag)}, expected "
                    f"{self._depth}"
                )
            pht[tag] = None if stored is None else _as_int(stored, "PHT value")
        if len(pht) > self._capacity:
            raise ConfigurationError(
                f"checkpoint holds {len(pht)} PHT entries, capacity is "
                f"{self._capacity}"
            )
        raw_pending = state.get("pending_tag")
        pending: Optional[Tuple[int, ...]] = None
        if raw_pending is not None:
            if not isinstance(raw_pending, (list, tuple)):
                raise ConfigurationError(
                    f"malformed pending_tag: {raw_pending!r}"
                )
            pending = tuple(_as_int(v, "pending tag") for v in raw_pending)
        self._gphr = deque(gphr, maxlen=self._depth)
        self._pht = pht
        self._pending_tag = pending
        self._hits = _as_int(state.get("hits", 0), "hits")
        self._misses = _as_int(state.get("misses", 0), "misses")


def _as_int(value: object, label: str) -> int:
    """Narrow a checkpoint scalar to int (bools are not phase ids)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{label} must be an int, got {value!r}")
    return value


def _int_list(state: PredictorState, key: str) -> List[int]:
    """Extract a list-of-ints field from a checkpoint payload."""
    raw = state.get(key)
    if not isinstance(raw, list):
        raise ConfigurationError(f"checkpoint {key!r} must be a list")
    return [_as_int(v, key) for v in raw]
