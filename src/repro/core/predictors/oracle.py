"""Oracle predictor: a perfect-knowledge upper bound.

Not part of the paper's deployed system — used by our analysis layer to
bound how much of the remaining EDP gap is attributable to misprediction
versus to the phase/DVFS policy itself.  The oracle is primed with the
full phase sequence ahead of time and always answers with the true next
phase.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.predictors._checkpoint import as_int, check_kind, int_list
from repro.core.predictors.base import (
    PhaseObservation,
    PhasePredictor,
    PredictorState,
)
from repro.errors import ConfigurationError


class OraclePredictor(PhasePredictor):
    """Predicts the true next phase from a pre-supplied sequence.

    Args:
        phase_sequence: The complete actual phase sequence of the run the
            oracle will be consulted on, in execution order.

    The oracle tracks its position via :meth:`observe` calls: after the
    ``k``-th observation, :meth:`predict` returns element ``k`` of the
    sequence (the phase of interval ``k``, 0-based — i.e. the one about
    to execute).  Past the end of the sequence it repeats the final
    phase.
    """

    def __init__(self, phase_sequence: Sequence[int]) -> None:
        if not phase_sequence:
            raise ConfigurationError("oracle needs a non-empty phase sequence")
        self._sequence = tuple(phase_sequence)
        self._position = 0

    @property
    def name(self) -> str:
        return "Oracle"

    def observe(self, observation: PhaseObservation) -> None:
        self._position += 1

    def predict(self) -> int:
        if self._position < len(self._sequence):
            return self._sequence[self._position]
        return self._sequence[-1]

    def reset(self) -> None:
        self._position = 0

    # -- checkpointing ------------------------------------------------------

    def export_state(self) -> PredictorState:
        """Snapshot of the primed sequence and the current position."""
        return {
            "kind": "oracle",
            "sequence": list(self._sequence),
            "position": self._position,
        }

    def restore_state(self, state: PredictorState) -> None:
        check_kind(state, "oracle")
        sequence = int_list(state, "sequence")
        if not sequence:
            raise ConfigurationError("oracle needs a non-empty phase sequence")
        position = as_int(state.get("position"), "position")
        if position < 0:
            raise ConfigurationError(f"position must be >= 0, got {position}")
        self._sequence = tuple(sequence)
        self._position = position
