"""Last-value predictor: ``Phase[t+1] = Phase[t]``.

The simplest statistical predictor of Section 3 of the paper, and the
implicit policy of every purely *reactive* dynamic-management scheme: the
next interval is assumed to behave exactly like the one that just ended.
Excellent for stable applications, poor for rapidly varying ones.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.predictors.base import (
    PhaseObservation,
    PhasePredictor,
    PredictorState,
)
from repro.errors import ConfigurationError


class LastValuePredictor(PhasePredictor):
    """Predicts the next phase to equal the last observed phase."""

    def __init__(self) -> None:
        self._last_phase: int = self.DEFAULT_PHASE
        self._seen_any = False

    @property
    def name(self) -> str:
        return "LastValue"

    def observe(self, observation: PhaseObservation) -> None:
        self._last_phase = observation.phase
        self._seen_any = True

    def predict(self) -> int:
        return self._last_phase if self._seen_any else self.DEFAULT_PHASE

    def observe_batch(
        self, phases: Sequence[int], mem_values: Sequence[float]
    ) -> None:
        """Batch kernel: only the final phase survives as state."""
        if len(phases):
            self._last_phase = phases[-1]
            self._seen_any = True

    def predict_batch(
        self, phases: Sequence[int], mem_values: Sequence[float]
    ) -> List[int]:
        """Batch kernel: each fused cycle predicts the phase just seen.

        The scalar predictor emits no trace events, so the kernel is
        valid (and bit-identical) whether or not a tracer is bound.
        """
        if not len(phases):
            return []
        self._last_phase = phases[-1]
        self._seen_any = True
        return list(phases)

    def reset(self) -> None:
        self._last_phase = self.DEFAULT_PHASE
        self._seen_any = False

    def export_state(self) -> PredictorState:
        return {
            "kind": "last_value",
            "last_phase": self._last_phase,
            "seen_any": self._seen_any,
        }

    def restore_state(self, state: PredictorState) -> None:
        if state.get("kind") != "last_value":
            raise ConfigurationError(
                f"checkpoint kind {state.get('kind')!r} is not 'last_value'"
            )
        last_phase = state.get("last_phase")
        seen_any = state.get("seen_any")
        if isinstance(last_phase, bool) or not isinstance(last_phase, int):
            raise ConfigurationError(
                f"last_phase must be an int, got {last_phase!r}"
            )
        if not isinstance(seen_any, bool):
            raise ConfigurationError(
                f"seen_any must be a bool, got {seen_any!r}"
            )
        self._last_phase = last_phase
        self._seen_any = seen_any
