"""Last-value predictor: ``Phase[t+1] = Phase[t]``.

The simplest statistical predictor of Section 3 of the paper, and the
implicit policy of every purely *reactive* dynamic-management scheme: the
next interval is assumed to behave exactly like the one that just ended.
Excellent for stable applications, poor for rapidly varying ones.
"""

from __future__ import annotations

from repro.core.predictors.base import PhaseObservation, PhasePredictor


class LastValuePredictor(PhasePredictor):
    """Predicts the next phase to equal the last observed phase."""

    def __init__(self) -> None:
        self._last_phase: int = self.DEFAULT_PHASE
        self._seen_any = False

    @property
    def name(self) -> str:
        return "LastValue"

    def observe(self, observation: PhaseObservation) -> None:
        self._last_phase = observation.phase
        self._seen_any = True

    def predict(self) -> int:
        return self._last_phase if self._seen_any else self.DEFAULT_PHASE

    def reset(self) -> None:
        self._last_phase = self.DEFAULT_PHASE
        self._seen_any = False
