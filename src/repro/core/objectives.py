"""Objective-driven DVFS policy derivation (extension).

The paper notes that its framework "can be applied ... to other dynamic
management techniques, such as dynamic thermal management or bounding
power consumption" (Sections 1 and 8).  This module realises that
generality: instead of hand-assigning operating points per phase
(Table 2) or bounding slowdown (Section 6.3), a policy is *derived* by
optimising an explicit objective per phase under the platform timing and
power models:

* ``"energy"``   — minimise energy (race-to-idle vs crawl trade-off);
* ``"edp"``      — minimise energy-delay product (the paper's headline
  metric);
* ``"ed2p"``     — minimise energy-delay-squared (performance-leaning);
* :func:`derive_power_capped_policy` — the fastest settings that keep
  expected power under a cap (thermal/power-budget management).

Each phase is represented by a witness segment (by default the phase's
bin-midpoint ``Mem/Uop`` at a typical core UPC); the chosen operating
point optimises the objective for that witness.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.core.dvfs_policy import DVFSPolicy
from repro.core.phases import PhaseTable
from repro.cpu.frequency import OperatingPoint, SpeedStepTable
from repro.cpu.timing import TimingModel
from repro.errors import ConfigurationError
from repro.power.model import PowerModel
from repro.workloads.segments import SegmentSpec

#: Supported optimisation objectives, mapping to the exponent of delay
#: in the E * D^k family.
OBJECTIVES: Dict[str, int] = {"energy": 0, "edp": 1, "ed2p": 2}


def _representative_segment(
    phase_table: PhaseTable,
    phase_id: int,
    upc_core: float,
    uops: int,
) -> SegmentSpec:
    """Build the default witness for a phase: bin midpoint behaviour."""
    return SegmentSpec(
        uops=uops,
        mem_per_uop=phase_table.representative_value(phase_id),
        upc_core=upc_core,
    )


def _objective_value(
    segment: SegmentSpec,
    point: OperatingPoint,
    timing: TimingModel,
    power: PowerModel,
    delay_exponent: int,
) -> float:
    """Evaluate E * D^k for one segment at one operating point."""
    execution = timing.execute(segment, point)
    energy = power.power(point, execution.duty) * execution.seconds
    return energy * execution.seconds**delay_exponent


def derive_objective_policy(
    objective: str,
    phase_table: Optional[PhaseTable] = None,
    speedstep: Optional[SpeedStepTable] = None,
    timing: Optional[TimingModel] = None,
    power: Optional[PowerModel] = None,
    representatives: Optional[Mapping[int, SegmentSpec]] = None,
    upc_core: float = 1.3,
    witness_uops: int = 100_000_000,
) -> DVFSPolicy:
    """Derive the per-phase settings minimising ``objective``.

    Args:
        objective: One of ``"energy"``, ``"edp"``, ``"ed2p"``.
        phase_table: Phase definitions (default: paper Table 1).
        speedstep: Candidate operating points (default: Pentium-M).
        timing: Platform timing model.
        power: Platform power model.
        representatives: Optional witness segment per phase; phases
            without an entry use the synthetic bin-midpoint witness.
        upc_core: Core UPC of synthetic witnesses.
        witness_uops: Uop count of synthetic witnesses.

    Returns:
        A :class:`DVFSPolicy` named ``objective_<name>``.  Ties favour
        the faster point (less exposure to misprediction slowdowns).
    """
    if objective not in OBJECTIVES:
        raise ConfigurationError(
            f"objective must be one of {sorted(OBJECTIVES)}, got {objective!r}"
        )
    phase_table = phase_table if phase_table is not None else PhaseTable()
    speedstep = speedstep if speedstep is not None else SpeedStepTable()
    timing = timing if timing is not None else TimingModel()
    power = power if power is not None else PowerModel()
    delay_exponent = OBJECTIVES[objective]

    assignments: Dict[int, OperatingPoint] = {}
    for phase_id in phase_table.phase_ids:
        if representatives is not None and phase_id in representatives:
            witness = representatives[phase_id]
        else:
            witness = _representative_segment(
                phase_table, phase_id, upc_core, witness_uops
            )
        # speedstep iterates fastest-first, so strict '<' keeps the
        # fastest point among objective ties.
        best_point = speedstep.fastest
        best_value = _objective_value(
            witness, best_point, timing, power, delay_exponent
        )
        for point in speedstep:
            value = _objective_value(
                witness, point, timing, power, delay_exponent
            )
            if value < best_value:
                best_value = value
                best_point = point
        assignments[phase_id] = best_point
    return DVFSPolicy(
        phase_table, assignments, name=f"objective_{objective}"
    )


def derive_power_capped_policy(
    max_power_w: float,
    phase_table: Optional[PhaseTable] = None,
    speedstep: Optional[SpeedStepTable] = None,
    timing: Optional[TimingModel] = None,
    power: Optional[PowerModel] = None,
    representatives: Optional[Mapping[int, SegmentSpec]] = None,
    upc_core: float = 1.3,
    witness_uops: int = 100_000_000,
) -> DVFSPolicy:
    """Derive the fastest per-phase settings under a power cap.

    The dynamic-power-bounding application the paper's conclusions call
    out: for each phase, pick the highest-frequency operating point whose
    expected power (for the phase's witness behaviour) stays at or below
    ``max_power_w``.  Phases whose power exceeds the cap even at the
    slowest point get the slowest point (best effort).

    Returns:
        A :class:`DVFSPolicy` named ``power_cap_<watts>``.
    """
    if max_power_w <= 0:
        raise ConfigurationError(
            f"power cap must be > 0 W, got {max_power_w}"
        )
    phase_table = phase_table if phase_table is not None else PhaseTable()
    speedstep = speedstep if speedstep is not None else SpeedStepTable()
    timing = timing if timing is not None else TimingModel()
    power = power if power is not None else PowerModel()

    assignments: Dict[int, OperatingPoint] = {}
    for phase_id in phase_table.phase_ids:
        if representatives is not None and phase_id in representatives:
            witness = representatives[phase_id]
        else:
            witness = _representative_segment(
                phase_table, phase_id, upc_core, witness_uops
            )
        chosen = speedstep.slowest
        for point in speedstep:  # fastest first
            execution = timing.execute(witness, point)
            if power.power(point, execution.duty) <= max_power_w:
                chosen = point
                break
        assignments[phase_id] = chosen
    return DVFSPolicy(
        phase_table, assignments, name=f"power_cap_{max_power_w:g}W"
    )
