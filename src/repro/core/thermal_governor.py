"""Dynamic thermal management on top of phase prediction (extension).

Realises the paper's suggested application beyond EDP optimisation:
"dynamic thermal management" (Sections 1 and 8).  The governor wraps any
phase-prediction governor and overrides its choice whenever the die runs
hot: above the trip temperature the frequency is capped; the cap is
lifted once the die cools past a hysteresis margin.  Because the inner
governor keeps observing and predicting phases throughout, management
resumes proactively the moment the thermal emergency clears.
"""

from __future__ import annotations

from typing import Optional

from repro.core.governor import Governor, GovernorDecision, IntervalCounters
from repro.cpu.frequency import OperatingPoint, SpeedStepTable
from repro.errors import ConfigurationError
from repro.power.thermal import ThermalModel


class ThermalManagedGovernor(Governor):
    """Throttles an inner governor's decisions under thermal pressure.

    Args:
        inner: The phase-prediction (or any other) governor producing
            the baseline decisions.
        thermal: The thermal model the machine advances; the governor
            reads its live temperature at each decision.
        trip_c: Temperature at which throttling engages.
        hysteresis_c: The die must cool to ``trip_c - hysteresis_c``
            before the cap is lifted (prevents oscillation at the trip
            point).
        cap: Operating point enforced while throttled (defaults to the
            platform's slowest).
        speedstep: Platform table used to compare/cap settings.
    """

    def __init__(
        self,
        inner: Governor,
        thermal: ThermalModel,
        trip_c: float = 75.0,
        hysteresis_c: float = 3.0,
        cap: Optional[OperatingPoint] = None,
        speedstep: Optional[SpeedStepTable] = None,
    ) -> None:
        if hysteresis_c < 0:
            raise ConfigurationError(
                f"hysteresis must be >= 0, got {hysteresis_c}"
            )
        if trip_c <= thermal.ambient_c:
            raise ConfigurationError(
                f"trip temperature {trip_c} degC must exceed ambient "
                f"{thermal.ambient_c} degC"
            )
        self._inner = inner
        self._thermal = thermal
        self._trip_c = trip_c
        self._hysteresis_c = hysteresis_c
        self._speedstep = speedstep if speedstep is not None else SpeedStepTable()
        self._cap = cap if cap is not None else self._speedstep.slowest
        if self._cap not in self._speedstep:
            raise ConfigurationError(
                f"cap {self._cap} not in the platform table"
            )
        self._throttled = False
        self._throttle_engagements = 0

    @property
    def name(self) -> str:
        return f"Thermal_{self._trip_c:g}C_{self._inner.name}"

    @property
    def inner(self) -> Governor:
        """The wrapped governor."""
        return self._inner

    @property
    def throttled(self) -> bool:
        """Whether the thermal cap is currently engaged."""
        return self._throttled

    @property
    def throttle_engagements(self) -> int:
        """How many times throttling has engaged this run."""
        return self._throttle_engagements

    @property
    def trip_c(self) -> float:
        """The engage threshold in degC."""
        return self._trip_c

    def decide(self, counters: IntervalCounters) -> GovernorDecision:
        decision = self._inner.decide(counters)
        temperature = self._thermal.temperature_c
        if not self._throttled and temperature >= self._trip_c:
            self._throttled = True
            self._throttle_engagements += 1
        elif self._throttled and temperature <= self._trip_c - self._hysteresis_c:
            self._throttled = False
        if not self._throttled:
            return decision
        # Enforce the cap: never faster than the throttle point.
        if decision.setting.frequency_mhz <= self._cap.frequency_mhz:
            return decision
        return GovernorDecision(
            actual_phase=decision.actual_phase,
            predicted_phase=decision.predicted_phase,
            setting=self._cap,
        )

    def reset(self) -> None:
        self._inner.reset()
        self._thermal.reset()
        self._throttled = False
        self._throttle_engagements = 0
