"""The paper's contribution: phase definitions, predictors, DVFS policy
translation, and the management governors."""

from repro.core.dvfs_policy import DVFSPolicy, derive_bounded_policy
from repro.core.objectives import (
    OBJECTIVES,
    derive_objective_policy,
    derive_power_capped_policy,
)
from repro.core.governor import (
    Governor,
    GovernorDecision,
    IntervalCounters,
    PhasePredictionGovernor,
    ReactiveGovernor,
    StaticGovernor,
)
from repro.core.phases import PAPER_PHASE_EDGES, PhaseDefinition, PhaseTable
from repro.core.thermal_governor import ThermalManagedGovernor
from repro.core.predictors import (
    FixedWindowPredictor,
    GPHTPredictor,
    LastValuePredictor,
    MarkovPredictor,
    OraclePredictor,
    PhaseObservation,
    PhasePredictor,
    VariableWindowPredictor,
    paper_predictor_suite,
)

__all__ = [
    "PhaseTable",
    "PhaseDefinition",
    "PAPER_PHASE_EDGES",
    "PhasePredictor",
    "PhaseObservation",
    "LastValuePredictor",
    "FixedWindowPredictor",
    "VariableWindowPredictor",
    "MarkovPredictor",
    "GPHTPredictor",
    "OraclePredictor",
    "paper_predictor_suite",
    "DVFSPolicy",
    "derive_bounded_policy",
    "OBJECTIVES",
    "derive_objective_policy",
    "derive_power_capped_policy",
    "Governor",
    "GovernorDecision",
    "IntervalCounters",
    "PhasePredictionGovernor",
    "ReactiveGovernor",
    "StaticGovernor",
    "ThermalManagedGovernor",
]
