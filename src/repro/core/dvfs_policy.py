"""Phase-to-DVFS translation policies.

The paper's handler translates the predicted phase into a DVFS setting
through a small look-up table defined at kernel-module initialisation
(Table 2).  The table is reconfigurable after deployment — Section 6.3
swaps in a *conservative* variant derived from the IPCxMEM performance
study so that worst-case performance degradation stays below a target
(5% in the paper).

This module provides both: the paper's aggressive default mapping, and
the derivation procedure for bounded-degradation mappings driven by the
platform timing model.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.core.phases import PhaseTable
from repro.cpu.frequency import OperatingPoint, SpeedStepTable
from repro.cpu.timing import TimingModel
from repro.errors import ConfigurationError
from repro.workloads.segments import SegmentSpec


class DVFSPolicy:
    """A complete phase-to-operating-point look-up table.

    Args:
        phase_table: The phase definitions this policy is keyed by.
        assignments: Operating point per phase id; every phase in
            ``phase_table`` must be covered.
        name: Display name for reports.
    """

    def __init__(
        self,
        phase_table: PhaseTable,
        assignments: Mapping[int, OperatingPoint],
        name: str = "custom",
    ) -> None:
        missing = [p for p in phase_table.phase_ids if p not in assignments]
        if missing:
            raise ConfigurationError(
                f"policy {name!r} misses assignments for phases {missing}"
            )
        unknown = [p for p in assignments if p not in phase_table.phase_ids]
        if unknown:
            raise ConfigurationError(
                f"policy {name!r} assigns unknown phases {unknown}"
            )
        self._phase_table = phase_table
        self._assignments: Dict[int, OperatingPoint] = dict(assignments)
        self._name = name
        self._lookups: Dict[int, int] = {p: 0 for p in sorted(self._assignments)}

    @property
    def name(self) -> str:
        """Display name of this policy."""
        return self._name

    @property
    def phase_table(self) -> PhaseTable:
        """The phase definitions this policy is keyed by."""
        return self._phase_table

    @property
    def assignments(self) -> Dict[int, OperatingPoint]:
        """A copy of the phase-to-point mapping."""
        return dict(self._assignments)

    def setting_for(self, phase_id: int) -> OperatingPoint:
        """The operating point to program when ``phase_id`` is predicted."""
        try:
            setting = self._assignments[phase_id]
        except KeyError:
            raise ConfigurationError(
                f"phase {phase_id} is not covered by policy {self._name!r}"
            ) from None
        self._lookups[phase_id] += 1
        return setting

    def record_lookups(self, counts: Mapping[int, int]) -> None:
        """Bulk-record ``setting_for`` lookups (the batch fast path).

        Equivalent to calling :meth:`setting_for` ``counts[p]`` times for
        each phase ``p`` and discarding the settings — the per-phase
        residency counters advance identically, which keeps batch and
        scalar feeding bit-for-bit equal in observability too.

        Raises:
            ConfigurationError: If any phase is not covered (matching the
                scalar lookup's failure) or a count is negative.
        """
        for phase_id, count in counts.items():
            if phase_id not in self._assignments:
                raise ConfigurationError(
                    f"phase {phase_id} is not covered by policy "
                    f"{self._name!r}"
                )
            if count < 0:
                raise ConfigurationError(
                    f"lookup count for phase {phase_id} must be >= 0, "
                    f"got {count}"
                )
        for phase_id, count in counts.items():
            self._lookups[phase_id] += count

    @property
    def lookup_counts(self) -> Dict[int, int]:
        """Successful ``setting_for`` lookups per phase id (a copy).

        Pure observability — the per-phase residency a governor induced
        through this policy; recording never affects the returned
        setting.
        """
        return dict(self._lookups)

    def reset_lookup_counts(self) -> None:
        """Zero the per-phase lookup counters (fresh run)."""
        for phase_id in self._lookups:
            self._lookups[phase_id] = 0

    def is_monotonic(self) -> bool:
        """Whether more memory-bound phases never get faster settings.

        The paper's Table 2 is monotonic: frequency is non-increasing in
        the phase id.  Custom policies need not be, but monotonicity is a
        useful sanity property to assert in tests.
        """
        frequencies = [
            self._assignments[p].frequency_mhz
            for p in sorted(self._assignments)
        ]
        return all(b <= a for a, b in zip(frequencies, frequencies[1:]))

    @classmethod
    def paper_default(
        cls,
        phase_table: Optional[PhaseTable] = None,
        speedstep: Optional[SpeedStepTable] = None,
    ) -> "DVFSPolicy":
        """The paper's Table 2: phase ``i`` maps to the ``i``-th fastest
        operating point (phase 1 = 1500 MHz ... phase 6 = 600 MHz).

        Raises:
            ConfigurationError: If the phase count exceeds the number of
                available operating points.
        """
        phase_table = phase_table if phase_table is not None else PhaseTable()
        speedstep = speedstep if speedstep is not None else SpeedStepTable()
        if phase_table.num_phases > len(speedstep):
            raise ConfigurationError(
                f"{phase_table.num_phases} phases but only "
                f"{len(speedstep)} operating points"
            )
        assignments = {
            phase_id: speedstep[phase_id - 1]
            for phase_id in phase_table.phase_ids
        }
        return cls(phase_table, assignments, name="paper_table2")

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{p}->{self._assignments[p].frequency_mhz}MHz"
            for p in sorted(self._assignments)
        )
        return f"DVFSPolicy({self._name!r}: {pairs})"


def derive_bounded_policy(
    max_degradation: float,
    phase_table: Optional[PhaseTable] = None,
    speedstep: Optional[SpeedStepTable] = None,
    timing: Optional[TimingModel] = None,
    witnesses_by_phase: Optional[Mapping[int, Sequence[SegmentSpec]]] = None,
    upc_core_floor: float = 0.5,
    witness_uops: int = 1_000_000,
) -> DVFSPolicy:
    """Derive a conservative policy bounding worst-case slowdown.

    Reproduces the Section 6.3 procedure: for every phase, examine the
    achievable performance at each DVFS setting over representative
    execution points, and pick the slowest setting whose worst-case
    slowdown relative to the fastest setting stays within
    ``max_degradation``.

    Args:
        max_degradation: Target bound, e.g. ``0.05`` for the paper's 5%.
        phase_table: Phase definitions (default: paper Table 1).
        speedstep: Available operating points (default: Pentium-M).
        timing: Platform timing model used to evaluate slowdowns.
        witnesses_by_phase: Representative segments per phase over which
            the worst case is taken — typically drawn from the IPCxMEM
            grid or the benchmark registry.  When omitted, a synthetic
            worst-case witness is built per phase from the bin's *lower*
            ``Mem/Uop`` edge (the least memory-bound and therefore most
            slowdown-sensitive point in the bin) at ``upc_core_floor``.
        upc_core_floor: Core UPC of the synthetic witnesses; lower values
            are more slowdown-sensitive and hence more conservative.
        witness_uops: Size of synthetic witness segments (irrelevant to
            ratios, required by the segment type).

    Returns:
        A :class:`DVFSPolicy` named ``bounded_<percent>`` guaranteeing —
        under the timing model — that no interval classified into any
        phase slows by more than ``max_degradation`` versus full speed.
    """
    if not 0 < max_degradation < 1:
        raise ConfigurationError(
            f"max_degradation must be in (0, 1), got {max_degradation}"
        )
    phase_table = phase_table if phase_table is not None else PhaseTable()
    speedstep = speedstep if speedstep is not None else SpeedStepTable()
    timing = timing if timing is not None else TimingModel()

    assignments: Dict[int, OperatingPoint] = {}
    fastest = speedstep.fastest
    for definition in phase_table.definitions:
        witnesses = _witnesses_for(
            definition.phase_id,
            definition.lower,
            witnesses_by_phase,
            upc_core_floor,
            witness_uops,
        )
        chosen = fastest
        # Walk slowest-first; the first point that satisfies the bound
        # for every witness is the most power-saving admissible choice.
        for point in sorted(speedstep, key=lambda p: p.frequency_mhz):
            worst = max(
                timing.slowdown(segment, point, fastest)
                for segment in witnesses
            )
            if worst <= 1.0 + max_degradation:
                chosen = point
                break
        assignments[definition.phase_id] = chosen
    return DVFSPolicy(
        phase_table,
        assignments,
        name=f"bounded_{max_degradation:.0%}",
    )


def _witnesses_for(
    phase_id: int,
    lower_edge: float,
    witnesses_by_phase: Optional[Mapping[int, Sequence[SegmentSpec]]],
    upc_core_floor: float,
    witness_uops: int,
) -> Sequence[SegmentSpec]:
    """Resolve the worst-case witness segments for one phase."""
    if witnesses_by_phase is not None and witnesses_by_phase.get(phase_id):
        return witnesses_by_phase[phase_id]
    return [
        SegmentSpec(
            uops=witness_uops,
            mem_per_uop=lower_edge,
            upc_core=upc_core_floor,
        )
    ]
