"""DVFS governors: the decision logic inside the PMI handler.

A governor is consulted once per sampling interval with the counter
readings of the interval that just finished, and answers with the
operating point to program for the next interval — the "Translate
counter readings / predict next phase / translate predicted phase"
portion of the paper's Figure 8.

Three governors cover the paper's comparison space:

* :class:`PhasePredictionGovernor` — the paper's proactive scheme: any
  :class:`~repro.core.predictors.base.PhasePredictor` (deployed: the
  GPHT) predicts the next phase, which a :class:`~repro.core.dvfs_policy.
  DVFSPolicy` translates to a setting;
* :class:`ReactiveGovernor` — the "reactive" prior art of Section 6.2:
  configure for the behaviour just observed (equivalent to last-value
  prediction);
* :class:`StaticGovernor` — the unmanaged baseline pinned at one point.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core.dvfs_policy import DVFSPolicy
from repro.core.phases import PhaseTable
from repro.core.predictors import LastValuePredictor, PhaseObservation, PhasePredictor
from repro.cpu.frequency import OperatingPoint
from repro.obs.events import PhaseClassified
from repro.obs.tracer import NULL_TRACER, Tracer


@dataclass(frozen=True)
class IntervalCounters:
    """Counter readings for one completed sampling interval.

    Attributes:
        uops: Retired micro-ops (the PMI pacing count).
        mem_transactions: Memory bus transactions.
        instructions: Retired architectural instructions.
        tsc_cycles: Elapsed core cycles (from the TSC).
    """

    uops: float
    mem_transactions: float
    instructions: float
    tsc_cycles: float

    @property
    def mem_per_uop(self) -> float:
        """The phase metric: memory transactions per micro-op."""
        if self.uops == 0:
            return 0.0
        return self.mem_transactions / self.uops

    @property
    def upc(self) -> float:
        """Observed micro-ops per cycle over the interval."""
        if self.tsc_cycles == 0:
            return 0.0
        return self.uops / self.tsc_cycles


@dataclass(frozen=True)
class GovernorDecision:
    """One governor consultation and its outcome.

    Attributes:
        actual_phase: Phase classified from the finished interval.
        predicted_phase: Phase predicted for the next interval.
        setting: Operating point chosen for the next interval.
    """

    actual_phase: int
    predicted_phase: int
    setting: OperatingPoint


class Governor(ABC):
    """Per-interval DVFS decision logic."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Short display name for reports."""

    @abstractmethod
    def decide(self, counters: IntervalCounters) -> GovernorDecision:
        """Choose the operating point for the next interval."""

    @abstractmethod
    def reset(self) -> None:
        """Forget all accumulated state (fresh run)."""

    def bind_tracer(self, tracer: Tracer) -> None:
        """Attach a trace collector.

        Recording must be zero-perturbation — no override may let the
        tracer influence a decision.  The base implementation discards
        the tracer (static governors have nothing to report).
        """


#: Extracts the classification metric from the interval counters.  The
#: paper's choice is ``Mem/Uop``; Section 4 demonstrates why UPC-derived
#: metrics are unsafe under DVFS (see :mod:`repro.core.upc_phases`).
MetricExtractor = Callable[[IntervalCounters], float]


def mem_per_uop_metric(counters: IntervalCounters) -> float:
    """The paper's DVFS-invariant phase metric."""
    return counters.mem_per_uop


class PhasePredictionGovernor(Governor):
    """The paper's proactive governor: predict, then configure.

    Args:
        predictor: Any phase predictor (the deployed system uses
            ``GPHTPredictor(gphr_depth=8, pht_entries=128)``).
        policy: Phase-to-setting translation table.
        name: Optional display-name override (defaults to the
            predictor's name).
        metric: How to derive the classification metric from the counter
            readings (default: ``Mem/Uop``).  Provided so Section 4's
            UPC-classification pitfall can be demonstrated; production
            policies should keep the DVFS-invariant default.
        record_decisions: Whether to keep every decision in
            :attr:`decisions` (the offline-evaluation default).  A
            long-running service (``repro.serve``) disables this so a
            session's memory stays bounded; disabling never changes any
            decision taken.
    """

    def __init__(
        self,
        predictor: PhasePredictor,
        policy: Optional[DVFSPolicy] = None,
        name: Optional[str] = None,
        metric: MetricExtractor = mem_per_uop_metric,
        record_decisions: bool = True,
    ) -> None:
        self._predictor = predictor
        self._policy = policy if policy is not None else DVFSPolicy.paper_default()
        self._name = name if name is not None else predictor.name
        self._metric = metric
        self._record_decisions = record_decisions
        self._decisions: List[GovernorDecision] = []
        self._tracer: Tracer = NULL_TRACER

    @property
    def name(self) -> str:
        return self._name

    @property
    def predictor(self) -> PhasePredictor:
        """The predictor steering this governor."""
        return self._predictor

    @property
    def policy(self) -> DVFSPolicy:
        """The phase-to-setting policy in force."""
        return self._policy

    @property
    def decisions(self) -> Tuple[GovernorDecision, ...]:
        """Every decision taken so far, in interval order."""
        return tuple(self._decisions)

    def bind_tracer(self, tracer: Tracer) -> None:
        """Attach a trace collector to this governor and its predictor."""
        self._tracer = tracer
        self._predictor.bind_tracer(tracer)

    def decide(self, counters: IntervalCounters) -> GovernorDecision:
        phase_table = self._policy.phase_table
        metric_value = self._metric(counters)
        actual = phase_table.classify(metric_value)
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(
                PhaseClassified(
                    interval=tracer.interval,
                    governor=self._name,
                    metric=metric_value,
                    phase=actual,
                )
            )
        self._predictor.observe(
            PhaseObservation(phase=actual, mem_per_uop=metric_value)
        )
        predicted = self._clamp(self._predictor.predict(), phase_table)
        decision = GovernorDecision(
            actual_phase=actual,
            predicted_phase=predicted,
            setting=self._policy.setting_for(predicted),
        )
        if self._record_decisions:
            self._decisions.append(decision)
        return decision

    @staticmethod
    def _clamp(phase_id: int, phase_table: PhaseTable) -> int:
        """Keep out-of-range predictions inside the valid phase range."""
        return min(max(phase_id, 1), phase_table.num_phases)

    def reset(self) -> None:
        self._predictor.reset()
        self._decisions.clear()


class ReactiveGovernor(PhasePredictionGovernor):
    """Reactive management: configure for the last observed behaviour.

    The common prior-art scheme the paper compares against in Section
    6.2 — identical to a :class:`PhasePredictionGovernor` driven by a
    last-value predictor.
    """

    def __init__(
        self,
        policy: Optional[DVFSPolicy] = None,
        record_decisions: bool = True,
    ) -> None:
        super().__init__(
            LastValuePredictor(),
            policy,
            name="Reactive",
            record_decisions=record_decisions,
        )


class StaticGovernor(Governor):
    """Unmanaged baseline: a fixed operating point, forever.

    Args:
        setting: The pinned operating point (the paper's baseline is the
            fastest, 1.5 GHz).
        phase_table: Used only to classify intervals so that baseline
            runs still produce actual-phase logs for evaluation.
    """

    def __init__(
        self,
        setting: OperatingPoint,
        phase_table: Optional[PhaseTable] = None,
    ) -> None:
        self._setting = setting
        self._phase_table = phase_table if phase_table is not None else PhaseTable()

    @property
    def name(self) -> str:
        return f"Static_{self._setting.frequency_mhz}MHz"

    @property
    def setting(self) -> OperatingPoint:
        """The pinned operating point."""
        return self._setting

    def decide(self, counters: IntervalCounters) -> GovernorDecision:
        actual = self._phase_table.classify(counters.mem_per_uop)
        return GovernorDecision(
            actual_phase=actual,
            predicted_phase=actual,
            setting=self._setting,
        )

    def reset(self) -> None:
        """Static governors hold no state."""
