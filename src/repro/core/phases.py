"""Phase definitions and classification (paper Section 2, Table 1).

Application behaviour is classified into a small number of *phases* from
the ``Mem/Uop`` metric — memory bus transactions per retired micro-op —
which Section 4 of the paper shows is invariant under DVFS.  The paper's
Table 1 defines six phases:

====================  =======
Mem/Uop               Phase #
====================  =======
< 0.005               1 (highly CPU-bound)
[0.005, 0.010)        2
[0.010, 0.015)        3
[0.015, 0.020)        4
[0.020, 0.030)        5
>= 0.030              6 (highly memory-bound)
====================  =======

The table is a first-class object so alternative definitions — notably
the conservative, performance-bounding tables of Section 6.3 — can be
swapped in without touching any other component.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Upper bin edges of the paper's Table 1.  Phase ``i`` (1-based) covers
#: ``[edge[i-2], edge[i-1])`` with an implicit 0 lower bound and +inf top.
PAPER_PHASE_EDGES: Tuple[float, ...] = (0.005, 0.010, 0.015, 0.020, 0.030)


@dataclass(frozen=True)
class PhaseDefinition:
    """One phase: a half-open ``Mem/Uop`` interval with a 1-based id.

    Attributes:
        phase_id: 1-based phase number (1 = most CPU-bound).
        lower: Inclusive lower ``Mem/Uop`` bound.
        upper: Exclusive upper bound (``inf`` for the last phase).
    """

    phase_id: int
    lower: float
    upper: float

    def contains(self, mem_per_uop: float) -> bool:
        """Whether ``mem_per_uop`` falls in this phase's interval."""
        return self.lower <= mem_per_uop < self.upper

    def __str__(self) -> str:
        if math.isinf(self.upper):
            return f"phase {self.phase_id}: Mem/Uop >= {self.lower}"
        return f"phase {self.phase_id}: Mem/Uop in [{self.lower}, {self.upper})"


class PhaseTable:
    """Maps ``Mem/Uop`` values to phase ids via ordered bin edges.

    Args:
        edges: Strictly increasing, positive upper bin edges.  ``n`` edges
            define ``n + 1`` phases, numbered 1 (below the first edge,
            most CPU-bound) through ``n + 1`` (at or above the last edge,
            most memory-bound).

    The default table is the paper's Table 1.
    """

    def __init__(self, edges: Sequence[float] = PAPER_PHASE_EDGES) -> None:
        edge_tuple: Tuple[float, ...] = tuple(edges)
        if not edge_tuple:
            raise ConfigurationError("a phase table needs at least one edge")
        if any(e <= 0 for e in edge_tuple):
            raise ConfigurationError(f"edges must be positive: {edge_tuple}")
        if any(b <= a for a, b in zip(edge_tuple, edge_tuple[1:])):
            raise ConfigurationError(
                f"edges must be strictly increasing: {edge_tuple}"
            )
        self._edges = edge_tuple
        self._edge_array = np.asarray(edge_tuple, dtype=np.float64)
        bounds = (0.0,) + edge_tuple + (float("inf"),)
        self._definitions = tuple(
            PhaseDefinition(phase_id=i + 1, lower=bounds[i], upper=bounds[i + 1])
            for i in range(len(bounds) - 1)
        )

    @property
    def edges(self) -> Tuple[float, ...]:
        """The upper bin edges."""
        return self._edges

    @property
    def num_phases(self) -> int:
        """How many phases this table defines."""
        return len(self._edges) + 1

    @property
    def definitions(self) -> Tuple[PhaseDefinition, ...]:
        """All phase definitions, ordered by phase id."""
        return self._definitions

    @property
    def phase_ids(self) -> Tuple[int, ...]:
        """All valid phase ids (1-based, ascending)."""
        return tuple(d.phase_id for d in self._definitions)

    def classify(self, mem_per_uop: float) -> int:
        """Return the 1-based phase id for a ``Mem/Uop`` observation.

        Raises:
            ConfigurationError: If ``mem_per_uop`` is negative (a counter
                ratio can never be).
        """
        if mem_per_uop < 0:
            raise ConfigurationError(
                f"Mem/Uop must be >= 0, got {mem_per_uop}"
            )
        for i, edge in enumerate(self._edges):
            if mem_per_uop < edge:
                return i + 1
        return len(self._edges) + 1

    def classify_series(self, values: Sequence[float]) -> List[int]:
        """Classify a whole series of ``Mem/Uop`` observations."""
        return [self.classify(v) for v in values]

    def classify_batch(self, values: Sequence[float]) -> List[int]:
        """Vectorized :meth:`classify` over a whole series.

        Bit-identical to ``[self.classify(v) for v in values]`` — values
        equal to an edge land in the upper bin in both paths, because
        ``searchsorted(side="right")`` counts edges ``<= v`` exactly as
        the scalar scan's strict ``v < edge`` test does.

        Raises:
            ConfigurationError: If any value is negative; the first
                offending value (in series order) is reported, matching
                the scalar path's failure point.
        """
        array = np.asarray(values, dtype=np.float64)
        if array.ndim != 1:
            raise ConfigurationError(
                f"expected a 1-D series, got shape {array.shape}"
            )
        if array.size == 0:
            return []
        negative = array < 0
        if negative.any():
            first_bad = array[int(np.argmax(negative))]
            raise ConfigurationError(
                f"Mem/Uop must be >= 0, got {first_bad}"
            )
        indices = np.searchsorted(self._edge_array, array, side="right")
        result: List[int] = (indices + 1).tolist()
        return result

    def definition(self, phase_id: int) -> PhaseDefinition:
        """Return the definition of ``phase_id``.

        Raises:
            ConfigurationError: If the id is out of range.
        """
        if not 1 <= phase_id <= self.num_phases:
            raise ConfigurationError(
                f"phase id must be in [1, {self.num_phases}], got {phase_id}"
            )
        return self._definitions[phase_id - 1]

    def representative_value(self, phase_id: int) -> float:
        """A representative ``Mem/Uop`` for a phase (bin midpoint).

        The unbounded top phase uses its lower edge plus half the previous
        bin's width, keeping the value finite and monotone.
        """
        definition = self.definition(phase_id)
        if math.isinf(definition.upper):
            if len(self._edges) >= 2:
                previous_width = self._edges[-1] - self._edges[-2]
            else:
                previous_width = self._edges[-1]
            return definition.lower + previous_width / 2.0
        return (definition.lower + definition.upper) / 2.0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PhaseTable):
            return NotImplemented
        return self._edges == other._edges

    def __hash__(self) -> int:
        return hash(self._edges)

    def __repr__(self) -> str:
        return f"PhaseTable(edges={self._edges})"
