"""SpeedStep operating points for the simulated Pentium-M platform.

The paper's prototype machine exposes six Enhanced SpeedStep voltage and
frequency pairs (Table 2 of the paper).  This module models those pairs as
immutable :class:`OperatingPoint` values collected in a
:class:`SpeedStepTable` that supports the lookups the rest of the system
needs: by index, by frequency, and ordered traversal from fastest to
slowest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True, order=True)
class OperatingPoint:
    """A single DVFS setting: a (frequency, voltage) pair.

    Ordering compares by frequency first, which makes ``max()``/``min()``
    and sorting behave naturally ("bigger" means "faster").

    Attributes:
        frequency_mhz: Core clock frequency in megahertz.
        voltage_mv: Supply voltage in millivolts.
    """

    frequency_mhz: int
    voltage_mv: int

    def __post_init__(self) -> None:
        if self.frequency_mhz <= 0:
            raise ConfigurationError(
                f"frequency must be positive, got {self.frequency_mhz} MHz"
            )
        if self.voltage_mv <= 0:
            raise ConfigurationError(
                f"voltage must be positive, got {self.voltage_mv} mV"
            )

    @property
    def frequency_ghz(self) -> float:
        """Clock frequency in gigahertz (cycles per nanosecond)."""
        return self.frequency_mhz / 1000.0

    @property
    def frequency_hz(self) -> float:
        """Clock frequency in hertz."""
        return self.frequency_mhz * 1.0e6

    @property
    def voltage_v(self) -> float:
        """Supply voltage in volts."""
        return self.voltage_mv / 1000.0

    def __str__(self) -> str:
        return f"({self.frequency_mhz} MHz, {self.voltage_mv} mV)"


#: The six SpeedStep points of the paper's Pentium-M prototype (Table 2),
#: fastest first.
PENTIUM_M_OPERATING_POINTS: Tuple[OperatingPoint, ...] = (
    OperatingPoint(1500, 1484),
    OperatingPoint(1400, 1452),
    OperatingPoint(1200, 1356),
    OperatingPoint(1000, 1228),
    OperatingPoint(800, 1116),
    OperatingPoint(600, 956),
)


class SpeedStepTable:
    """The set of operating points a platform supports.

    The table is ordered fastest-first, mirroring how the paper indexes
    DVFS settings 1..6 from the highest frequency down.

    Args:
        points: Operating points in any order; duplicates (by frequency)
            are rejected.  Defaults to the Pentium-M table.
    """

    def __init__(
        self, points: Sequence[OperatingPoint] = PENTIUM_M_OPERATING_POINTS
    ) -> None:
        if not points:
            raise ConfigurationError("a SpeedStepTable needs at least one point")
        ordered = sorted(points, key=lambda p: p.frequency_mhz, reverse=True)
        frequencies = [p.frequency_mhz for p in ordered]
        if len(set(frequencies)) != len(frequencies):
            raise ConfigurationError(
                f"duplicate frequencies in operating points: {frequencies}"
            )
        self._points: Tuple[OperatingPoint, ...] = tuple(ordered)
        self._by_frequency = {p.frequency_mhz: p for p in ordered}

    @property
    def points(self) -> Tuple[OperatingPoint, ...]:
        """All operating points, fastest first."""
        return self._points

    @property
    def fastest(self) -> OperatingPoint:
        """The highest-frequency operating point."""
        return self._points[0]

    @property
    def slowest(self) -> OperatingPoint:
        """The lowest-frequency operating point."""
        return self._points[-1]

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[OperatingPoint]:
        return iter(self._points)

    def __contains__(self, point: OperatingPoint) -> bool:
        return self._by_frequency.get(point.frequency_mhz) == point

    def __getitem__(self, index: int) -> OperatingPoint:
        """Return the ``index``-th fastest point (0 = fastest)."""
        return self._points[index]

    def index_of(self, point: OperatingPoint) -> int:
        """Return the position of ``point`` (0 = fastest).

        Raises:
            ConfigurationError: If the point is not in the table.
        """
        for i, candidate in enumerate(self._points):
            if candidate == point:
                return i
        raise ConfigurationError(f"operating point {point} not in table")

    def at_frequency(self, frequency_mhz: int) -> OperatingPoint:
        """Return the operating point running at ``frequency_mhz``.

        Raises:
            ConfigurationError: If no point has that frequency.
        """
        try:
            return self._by_frequency[frequency_mhz]
        except KeyError:
            supported = sorted(self._by_frequency)
            raise ConfigurationError(
                f"{frequency_mhz} MHz is not a supported frequency; "
                f"supported: {supported}"
            ) from None

    def slower_than(self, point: OperatingPoint) -> Tuple[OperatingPoint, ...]:
        """All points strictly slower than ``point``, fastest first."""
        return tuple(
            p for p in self._points if p.frequency_mhz < point.frequency_mhz
        )

    def __repr__(self) -> str:
        inner = ", ".join(str(p) for p in self._points)
        return f"SpeedStepTable([{inner}])"
