"""Simulated Pentium-M processor: operating points, timing, DVFS."""

from repro.cpu.dvfs import DVFSInterface, TransitionRecord
from repro.cpu.frequency import (
    PENTIUM_M_OPERATING_POINTS,
    OperatingPoint,
    SpeedStepTable,
)
from repro.cpu.pentium_m import CoreExecution, PentiumM
from repro.cpu.timing import SegmentExecution, TimingModel

__all__ = [
    "OperatingPoint",
    "SpeedStepTable",
    "PENTIUM_M_OPERATING_POINTS",
    "TimingModel",
    "SegmentExecution",
    "DVFSInterface",
    "TransitionRecord",
    "PentiumM",
    "CoreExecution",
]
