"""Analytic timing model for the simulated Pentium-M core.

The model captures the two first-order effects the paper's Section 4
relies on:

1. *Core work scales with frequency.*  A segment's compute portion takes
   ``uops / upc_core`` cycles regardless of frequency, so its wall-clock
   time shrinks linearly as the clock speeds up.
2. *Memory does not.*  Each memory bus transaction costs a fixed number of
   nanoseconds (DRAM latency is set by the memory system, not the core
   clock), so its cost *in core cycles* grows with frequency.

Consequently the observed micro-ops-per-cycle (UPC) of a memory-bound
segment **rises** as frequency drops (the paper's Figure 7, left), while
``Mem/Uop`` — transactions divided by micro-ops, both frequency-independent
counts — is invariant (Figure 7, right).  The invariance is *emergent*
here: nothing in this module special-cases it.

An ``overlap`` factor models memory-level parallelism: the fraction of each
transaction's latency hidden under other useful work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.frequency import OperatingPoint
from repro.errors import ConfigurationError
from repro.workloads.segments import SegmentSpec

#: Default effective memory transaction latency in nanoseconds.  This is
#: the *exposed* latency per bus transaction after typical out-of-order
#: overlap on a Pentium-M class core; it calibrates the simulator so that
#: the most memory-bound SPEC points (mcf-like, Mem/Uop ~ 0.1) land near
#: UPC ~ 0.06-0.1 at 1.5 GHz, matching the paper's Figure 6 envelope.
DEFAULT_MEMORY_LATENCY_NS = 100.0


@dataclass(frozen=True)
class SegmentExecution:
    """The result of executing one segment at one operating point.

    Attributes:
        cycles: Total core cycles consumed.
        seconds: Wall-clock time consumed.
        core_cycles: Cycles spent doing useful core work.
        stall_cycles: Cycles spent stalled on memory transactions.
        upc: Observed micro-ops per cycle (frequency dependent).
        duty: Fraction of cycles doing core work; feeds the power model's
            activity factor.
    """

    cycles: float
    seconds: float
    core_cycles: float
    stall_cycles: float
    upc: float
    duty: float


@dataclass(frozen=True)
class TimingModel:
    """Frequency-aware analytic timing for workload segments.

    Args:
        memory_latency_ns: Exposed latency of one memory bus transaction,
            in nanoseconds.  Fixed in wall-clock terms: it does not scale
            with core frequency.
        overlap: Fraction of memory latency hidden under concurrent
            execution (memory-level parallelism), in ``[0, 1)``.
    """

    memory_latency_ns: float = DEFAULT_MEMORY_LATENCY_NS
    overlap: float = 0.0

    def __post_init__(self) -> None:
        if self.memory_latency_ns <= 0:
            raise ConfigurationError(
                f"memory latency must be > 0 ns, got {self.memory_latency_ns}"
            )
        if not 0.0 <= self.overlap < 1.0:
            raise ConfigurationError(
                f"overlap must be in [0, 1), got {self.overlap}"
            )

    @property
    def exposed_latency_ns(self) -> float:
        """Per-transaction latency after platform overlap, in ns."""
        return self.memory_latency_ns * (1.0 - self.overlap)

    def segment_latency_ns(self, segment: SegmentSpec) -> float:
        """Per-transaction exposed latency for ``segment``, in ns.

        Platform overlap and the segment's own memory-level parallelism
        compose multiplicatively: each hides a fraction of what the other
        leaves exposed.
        """
        return self.exposed_latency_ns * (1.0 - segment.mem_overlap)

    def core_cycles(self, segment: SegmentSpec) -> float:
        """Cycles of pure core work for ``segment`` (frequency-free)."""
        return segment.uops / segment.upc_core

    def stall_cycles(self, segment: SegmentSpec, point: OperatingPoint) -> float:
        """Memory stall cycles for ``segment`` at ``point``.

        A transaction costs ``segment_latency_ns`` nanoseconds; at
        ``f`` GHz that is ``segment_latency_ns * f`` core cycles.
        """
        return (
            segment.memory_transactions
            * self.segment_latency_ns(segment)
            * point.frequency_ghz
        )

    def cycles(self, segment: SegmentSpec, point: OperatingPoint) -> float:
        """Total cycles to execute ``segment`` at ``point``."""
        return self.core_cycles(segment) + self.stall_cycles(segment, point)

    def seconds(self, segment: SegmentSpec, point: OperatingPoint) -> float:
        """Wall-clock seconds to execute ``segment`` at ``point``."""
        return self.cycles(segment, point) / point.frequency_hz

    def upc(self, segment: SegmentSpec, point: OperatingPoint) -> float:
        """Observed micro-ops per cycle at ``point``.

        This is the frequency-*dependent* metric the paper warns against
        using for phase classification under DVFS.
        """
        return segment.uops / self.cycles(segment, point)

    def execute(
        self, segment: SegmentSpec, point: OperatingPoint
    ) -> SegmentExecution:
        """Execute ``segment`` at ``point`` and return full accounting."""
        core = self.core_cycles(segment)
        stall = self.stall_cycles(segment, point)
        total = core + stall
        return SegmentExecution(
            cycles=total,
            seconds=total / point.frequency_hz,
            core_cycles=core,
            stall_cycles=stall,
            upc=segment.uops / total,
            duty=core / total,
        )

    def slowdown(
        self,
        segment: SegmentSpec,
        point: OperatingPoint,
        reference: OperatingPoint,
    ) -> float:
        """Execution-time ratio of ``point`` relative to ``reference``.

        A value of 1.05 means running at ``point`` takes 5% longer than
        at ``reference``.  CPU-bound segments approach the frequency
        ratio; fully memory-bound segments approach 1.0 — this is the
        "CPU slack" that DVFS exploits.
        """
        return self.seconds(segment, point) / self.seconds(segment, reference)

    def max_upc_boundary(
        self, mem_per_uop: float, point: OperatingPoint, peak_upc: float = 2.0
    ) -> float:
        """Maximum achievable UPC at a given ``Mem/Uop`` level.

        Reproduces the "SPEC boundary" of the paper's Figure 6: even a
        perfectly parallel core (retiring ``peak_upc`` micro-ops per cycle
        between stalls) cannot exceed this observed UPC once memory time
        is accounted for.
        """
        if mem_per_uop < 0:
            raise ConfigurationError(
                f"mem_per_uop must be >= 0, got {mem_per_uop}"
            )
        cycles_per_uop = (
            1.0 / peak_upc
            + mem_per_uop * self.exposed_latency_ns * point.frequency_ghz
        )
        return 1.0 / cycles_per_uop
