"""The simulated Pentium-M core.

Combines the analytic :class:`~repro.cpu.timing.TimingModel` with the
:class:`~repro.cpu.dvfs.DVFSInterface` and translates executed workload
segments into the performance-monitoring event deltas the PMC bank
accumulates.  The core knows nothing about phases, predictors or power —
it only retires micro-ops at whatever operating point its DVFS registers
currently hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cpu.dvfs import DVFSInterface
from repro.cpu.frequency import OperatingPoint
from repro.cpu.timing import SegmentExecution, TimingModel
from repro.pmc.events import PMCEvent
from repro.workloads.segments import SegmentSpec


@dataclass(frozen=True)
class CoreExecution:
    """Everything produced by running one segment on the core.

    Attributes:
        segment: The segment that was executed.
        point: Operating point it ran at.
        timing: Cycle/time accounting from the timing model.
        events: PMC event deltas produced (all observable events; the
            counter bank keeps only the configured ones).
    """

    segment: SegmentSpec
    point: OperatingPoint
    timing: SegmentExecution
    events: Dict[PMCEvent, float]


class PentiumM:
    """The simulated processor: timing plus DVFS state.

    Args:
        timing: The analytic timing model (defaults to the calibrated
            Pentium-M model).
        dvfs: The DVFS register interface (defaults to the 6-point
            SpeedStep table, starting at 1.5 GHz).
    """

    def __init__(
        self,
        timing: Optional[TimingModel] = None,
        dvfs: Optional[DVFSInterface] = None,
    ) -> None:
        self._timing = timing if timing is not None else TimingModel()
        self._dvfs = dvfs if dvfs is not None else DVFSInterface()

    @property
    def timing(self) -> TimingModel:
        """The core's timing model."""
        return self._timing

    @property
    def dvfs(self) -> DVFSInterface:
        """The DVFS mode-set register interface."""
        return self._dvfs

    @property
    def operating_point(self) -> OperatingPoint:
        """The operating point currently programmed."""
        return self._dvfs.current

    def execute(self, segment: SegmentSpec) -> CoreExecution:
        """Retire ``segment`` at the current operating point.

        Returns the timing accounting and the PMC event deltas the run
        produced.  Event deltas are exact analytic counts; the counter
        *interface* (configuration, overflow, restart) lives in the PMC
        bank.
        """
        point = self._dvfs.current
        timing = self._timing.execute(segment, point)
        events = {
            PMCEvent.UOPS_RETIRED: float(segment.uops),
            PMCEvent.BUS_TRAN_MEM: segment.memory_transactions,
            PMCEvent.INSTR_RETIRED: segment.instructions,
            PMCEvent.CPU_CLK_UNHALTED: timing.cycles,
        }
        return CoreExecution(
            segment=segment, point=point, timing=timing, events=events
        )
