"""DVFS mode-set register interface (Enhanced SpeedStep analogue).

The paper programs DVFS through the Pentium-M's mode-set MSRs from inside
the PMI handler.  This module models that interface: a register holding
the current operating point, a ``request`` operation that validates the
target against the platform's :class:`~repro.cpu.frequency.SpeedStepTable`,
and accounting of transition costs (a voltage/frequency switch stalls the
core for tens of microseconds — invisible at the paper's 100M-instruction
granularity, but modelled for fidelity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cpu.frequency import OperatingPoint, SpeedStepTable
from repro.errors import ConfigurationError

#: Time the core is stalled while a voltage/frequency transition settles.
DEFAULT_TRANSITION_SECONDS = 10.0e-6


@dataclass
class TransitionRecord:
    """One DVFS transition: from where, to where, at what simulated time."""

    time_s: float
    previous: OperatingPoint
    new: OperatingPoint


class DVFSInterface:
    """The mode-set register file controlling voltage and frequency.

    Mirrors the check-then-set flow of the paper's Figure 8: the handler
    compares the desired setting with the current one and only writes the
    registers (paying the transition penalty) when they differ.

    Args:
        table: Platform operating points.
        initial: Starting operating point; defaults to the fastest.
        transition_seconds: Core stall per actual transition.
    """

    def __init__(
        self,
        table: Optional[SpeedStepTable] = None,
        initial: Optional[OperatingPoint] = None,
        transition_seconds: float = DEFAULT_TRANSITION_SECONDS,
    ) -> None:
        if transition_seconds < 0:
            raise ConfigurationError(
                f"transition time must be >= 0, got {transition_seconds}"
            )
        self._table = table if table is not None else SpeedStepTable()
        self._current = initial if initial is not None else self._table.fastest
        if self._current not in self._table:
            raise ConfigurationError(
                f"initial point {self._current} not in platform table"
            )
        self._transition_seconds = transition_seconds
        self._transitions: List[TransitionRecord] = []

    @property
    def table(self) -> SpeedStepTable:
        """The platform's supported operating points."""
        return self._table

    @property
    def current(self) -> OperatingPoint:
        """The operating point the core is running at now."""
        return self._current

    @property
    def transition_seconds(self) -> float:
        """Stall paid per actual mode change."""
        return self._transition_seconds

    @property
    def transitions(self) -> Tuple[TransitionRecord, ...]:
        """All mode changes performed so far, in time order."""
        return tuple(self._transitions)

    @property
    def transition_count(self) -> int:
        """Number of actual mode changes performed."""
        return len(self._transitions)

    def request(self, point: OperatingPoint, time_s: float = 0.0) -> float:
        """Request the core switch to ``point``.

        Implements "Same as current setting?" from Figure 8: if the
        requested point equals the current one, nothing happens and the
        cost is zero.

        Args:
            point: Desired operating point; must be in the platform table.
            time_s: Simulated time of the request (for the transition log).

        Returns:
            The stall time in seconds incurred by this request (zero if
            no change was needed).

        Raises:
            ConfigurationError: If ``point`` is not supported.
        """
        if point not in self._table:
            raise ConfigurationError(
                f"operating point {point} not supported by this platform"
            )
        if point == self._current:
            return 0.0
        self._transitions.append(
            TransitionRecord(time_s=time_s, previous=self._current, new=point)
        )
        self._current = point
        return self._transition_seconds

    def reset(self, initial: Optional[OperatingPoint] = None) -> None:
        """Clear the transition log and return to ``initial`` (or fastest)."""
        self._current = initial if initial is not None else self._table.fastest
        if self._current not in self._table:
            raise ConfigurationError(
                f"initial point {self._current} not in platform table"
            )
        self._transitions.clear()
