"""Run results and power/performance metrics.

Collects what a full machine run produces — the kernel log joined with
the machine's per-interval time/energy accounting — and derives the
paper's evaluation metrics: BIPS (billions of instructions per second),
average power, energy, energy-delay product (EDP), and the normalised
baseline-vs-managed comparisons of Figures 11-13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.system.lkm import KernelLogRecord


@dataclass(frozen=True)
class IntervalMetrics:
    """One sampling interval: handler log joined with machine accounting.

    Attributes:
        record: The kernel log entry written by the PMI handler.
        seconds: Wall-clock time of the interval (application execution
            only, excluding the handler).
        energy_j: Energy consumed during the interval.
        instructions: Architectural instructions retired (machine ground
            truth; the 2-counter configuration cannot log this itself).
    """

    record: KernelLogRecord
    seconds: float
    energy_j: float
    instructions: float

    @property
    def power_w(self) -> float:
        """Mean power over the interval."""
        if self.seconds == 0:
            return 0.0
        return self.energy_j / self.seconds

    @property
    def bips(self) -> float:
        """Billions of instructions per second over the interval."""
        if self.seconds == 0:
            return 0.0
        return self.instructions / 1.0e9 / self.seconds


@dataclass(frozen=True)
class PhaseSummary:
    """Aggregate statistics of one phase within a run.

    Attributes:
        phase_id: The phase.
        interval_count: Sampling intervals classified into it.
        seconds: Wall-clock time spent in it.
        energy_j: Energy consumed in it.
        time_share: Its fraction of the run's interval time.
    """

    phase_id: int
    interval_count: int
    seconds: float
    energy_j: float
    time_share: float

    @property
    def mean_power_w(self) -> float:
        """Mean power while executing this phase."""
        if self.seconds == 0:
            return 0.0
        return self.energy_j / self.seconds


@dataclass(frozen=True)
class RunResult:
    """Aggregate outcome of one machine run.

    Attributes:
        workload_name: Name of the executed trace.
        governor_name: Name of the managing governor.
        intervals: Per-interval metrics in execution order.
        total_instructions: Instructions retired over the whole run.
        total_uops: Micro-ops retired over the whole run.
        total_seconds: Wall-clock duration (including handler time).
        total_energy_j: Energy consumed (including handler energy).
        handler_seconds: Time spent inside the PMI handler.
        transition_count: Actual DVFS mode changes performed.
    """

    workload_name: str
    governor_name: str
    intervals: Tuple[IntervalMetrics, ...]
    total_instructions: float
    total_uops: float
    total_seconds: float
    total_energy_j: float
    handler_seconds: float
    transition_count: int

    @property
    def bips(self) -> float:
        """Whole-run billions of instructions per second."""
        if self.total_seconds == 0:
            return 0.0
        return self.total_instructions / 1.0e9 / self.total_seconds

    @property
    def average_power_w(self) -> float:
        """Whole-run mean power."""
        if self.total_seconds == 0:
            return 0.0
        return self.total_energy_j / self.total_seconds

    @property
    def edp(self) -> float:
        """Energy-delay product of the run, in joule-seconds."""
        return self.total_energy_j * self.total_seconds

    @property
    def handler_overhead_fraction(self) -> float:
        """Fraction of run time spent in the handler — the paper's
        "no observable overheads" claim requires this to be tiny."""
        if self.total_seconds == 0:
            return 0.0
        return self.handler_seconds / self.total_seconds

    def actual_phases(self) -> List[int]:
        """Actual phase ids per interval."""
        return [m.record.actual_phase for m in self.intervals]

    def predicted_phases(self) -> List[int]:
        """Next-interval predictions per interval."""
        return [m.record.predicted_phase for m in self.intervals]

    def mem_per_uop_series(self) -> List[float]:
        """Observed ``Mem/Uop`` per interval."""
        return [m.record.mem_per_uop for m in self.intervals]

    def frequency_series(self) -> List[int]:
        """Frequency (MHz) each interval actually ran at."""
        return [m.record.frequency_mhz for m in self.intervals]

    def power_series(self) -> List[float]:
        """Mean power per interval."""
        return [m.power_w for m in self.intervals]

    def bips_series(self) -> List[float]:
        """BIPS per interval."""
        return [m.bips for m in self.intervals]

    def phase_summary(self) -> "Dict[int, PhaseSummary]":
        """Aggregate time, energy and occupancy per actual phase.

        The per-phase view behind the paper's discussion of where the
        savings come from: memory-bound phases contribute most of the
        time and the bulk of the energy reduction.
        """
        sums: Dict[int, List[float]] = {}
        for m in self.intervals:
            entry = sums.setdefault(m.record.actual_phase, [0, 0.0, 0.0])
            entry[0] += 1
            entry[1] += m.seconds
            entry[2] += m.energy_j
        total_seconds = sum(entry[1] for entry in sums.values())
        summaries: Dict[int, PhaseSummary] = {}
        for phase_id, (count, seconds, energy) in sorted(sums.items()):
            summaries[phase_id] = PhaseSummary(
                phase_id=phase_id,
                interval_count=count,
                seconds=seconds,
                energy_j=energy,
                time_share=(seconds / total_seconds) if total_seconds else 0.0,
            )
        return summaries

    def prediction_accuracy(self) -> float:
        """Online prediction accuracy over the run.

        The prediction logged at interval ``t`` targets interval
        ``t + 1``, so it is scored against the next record's actual
        phase.
        """
        records = [m.record for m in self.intervals]
        if len(records) < 2:
            return 1.0
        correct = sum(
            1
            for earlier, later in zip(records, records[1:])
            if earlier.predicted_phase == later.actual_phase
        )
        return correct / (len(records) - 1)


@dataclass(frozen=True)
class ComparisonMetrics:
    """Normalised managed-vs-baseline comparison (Figures 11-13).

    Attributes:
        baseline: The unmanaged reference run.
        managed: The dynamically managed run of the same workload.
    """

    baseline: RunResult
    managed: RunResult

    def __post_init__(self) -> None:
        if self.baseline.workload_name != self.managed.workload_name:
            raise ConfigurationError(
                "comparison requires the same workload: "
                f"{self.baseline.workload_name!r} vs "
                f"{self.managed.workload_name!r}"
            )

    @property
    def normalized_bips(self) -> float:
        """Managed BIPS as a fraction of baseline BIPS."""
        return self.managed.bips / self.baseline.bips

    @property
    def normalized_power(self) -> float:
        """Managed mean power as a fraction of baseline."""
        return self.managed.average_power_w / self.baseline.average_power_w

    @property
    def normalized_edp(self) -> float:
        """Managed EDP as a fraction of baseline (lower is better)."""
        return self.managed.edp / self.baseline.edp

    @property
    def edp_improvement(self) -> float:
        """Fractional EDP improvement (positive = managed wins)."""
        return 1.0 - self.normalized_edp

    @property
    def performance_degradation(self) -> float:
        """Fractional BIPS loss of the managed run."""
        return 1.0 - self.normalized_bips

    @property
    def power_savings(self) -> float:
        """Fractional mean-power reduction of the managed run."""
        return 1.0 - self.normalized_power

    @property
    def energy_savings(self) -> float:
        """Fractional energy reduction of the managed run."""
        return 1.0 - self.managed.total_energy_j / self.baseline.total_energy_j


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of a non-empty sequence."""
    if not values:
        raise ConfigurationError("mean of an empty sequence")
    return sum(values) / len(values)
