"""The full simulated machine (paper Figure 9).

Wires every substrate together: the Pentium-M core with its DVFS
registers, the PMC bank and PMI controller, the kernel module with the
governor, the power model with exact energy integration, the parallel
port, and — optionally — the external DAQ measurement path.

:meth:`Machine.run` executes a workload trace under a governor and
returns a :class:`~repro.system.metrics.RunResult`.  The execution loop
is event-exact with respect to the counter architecture: workload
segments are split precisely at counter-overflow boundaries, the PMI is
latched by the overflow and dispatched at the slice boundary, and the
handler's decision takes effect for the following slice — the same
ordering as the deployed system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.governor import Governor
from repro.cpu.dvfs import DVFSInterface
from repro.cpu.frequency import OperatingPoint, SpeedStepTable
from repro.cpu.pentium_m import PentiumM
from repro.cpu.timing import TimingModel
from repro.errors import SimulationError
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.pmc.counters import PMCBank
from repro.pmc.events import PAPER_COUNTER_CONFIG, PMCEvent
from repro.pmc.interrupt import DEFAULT_PMI_GRANULARITY_UOPS, PMIController
from repro.power.daq import DataAcquisitionSystem
from repro.power.energy import EnergyAccumulator
from repro.power.model import PowerModel
from repro.power.thermal import ThermalModel
from repro.system.lkm import (
    APP_RUNNING_BIT,
    DEFAULT_HANDLER_OVERHEAD_S,
    IN_HANDLER_BIT,
    PhaseMonitorLKM,
)
from repro.system.metrics import IntervalMetrics, RunResult
from repro.system.parallel_port import ParallelPort
from repro.workloads.segments import SegmentSpec, WorkloadTrace


@dataclass
class _IntervalAccumulator:
    """Machine-side accounting for the interval currently executing."""

    seconds: float = 0.0
    energy_j: float = 0.0
    instructions: float = 0.0
    uops: float = 0.0

    def take(self) -> "_IntervalAccumulator":
        """Return the current totals and reset for the next interval."""
        finished = _IntervalAccumulator(
            self.seconds, self.energy_j, self.instructions, self.uops
        )
        self.seconds = 0.0
        self.energy_j = 0.0
        self.instructions = 0.0
        self.uops = 0.0
        return finished


class Machine:
    """A complete simulated Pentium-M measurement platform.

    Args:
        timing: Core timing model (defaults to the calibrated model).
        power: Power model (defaults to the calibrated model).
        speedstep: Available operating points (defaults to Table 2's).
        granularity_uops: PMI pacing (defaults to 100M uops).
        handler_overhead_s: PMI handler cost per invocation.
    """

    def __init__(
        self,
        timing: Optional[TimingModel] = None,
        power: Optional[PowerModel] = None,
        speedstep: Optional[SpeedStepTable] = None,
        granularity_uops: int = DEFAULT_PMI_GRANULARITY_UOPS,
        handler_overhead_s: float = DEFAULT_HANDLER_OVERHEAD_S,
    ) -> None:
        self._timing = timing if timing is not None else TimingModel()
        self._power = power if power is not None else PowerModel()
        self._speedstep = speedstep if speedstep is not None else SpeedStepTable()
        self._granularity = granularity_uops
        self._handler_overhead_s = handler_overhead_s

    @property
    def timing(self) -> TimingModel:
        """The platform timing model."""
        return self._timing

    @property
    def power_model(self) -> PowerModel:
        """The platform power model."""
        return self._power

    @property
    def speedstep(self) -> SpeedStepTable:
        """The platform operating points."""
        return self._speedstep

    def run(
        self,
        trace: WorkloadTrace,
        governor: Governor,
        daq: Optional[DataAcquisitionSystem] = None,
        initial_point: Optional[OperatingPoint] = None,
        thermal: Optional[ThermalModel] = None,
        tracer: Optional[Tracer] = None,
    ) -> RunResult:
        """Execute ``trace`` under ``governor`` and measure everything.

        Args:
            trace: The workload to run.
            governor: Decision logic consulted by the PMI handler.  It is
                reset before the run starts.
            daq: Optional external measurement unit; when given, it
                samples the whole run on its own 40 us grid.
            initial_point: Starting operating point (default: fastest).
            thermal: Optional package thermal model, advanced through
                every execution slice (a thermally-aware governor can
                hold a reference to the same model and read its live
                temperature).
            tracer: Optional trace collector wired through the kernel
                module, governor and predictor.  Recording is
                zero-perturbation: the returned result is bit-identical
                with or without it.

        Returns:
            The complete run accounting.
        """
        tracer = tracer if tracer is not None else NULL_TRACER
        governor.reset()
        governor.bind_tracer(tracer)
        dvfs = DVFSInterface(self._speedstep, initial=initial_point)
        core = PentiumM(self._timing, dvfs)
        bank = PMCBank(PAPER_COUNTER_CONFIG)
        pmi = PMIController()
        port = ParallelPort()
        lkm = PhaseMonitorLKM(
            governor,
            bank,
            dvfs,
            port,
            granularity_uops=self._granularity,
            handler_overhead_s=self._handler_overhead_s,
            tracer=tracer,
        )
        lkm.load(pmi)
        energy = EnergyAccumulator()
        port.set_bit(APP_RUNNING_BIT)

        time_s = 0.0
        current = _IntervalAccumulator()
        finished_intervals: List[_IntervalAccumulator] = []

        for segment in trace:
            remaining: Optional[SegmentSpec] = segment
            while remaining is not None:
                piece, remaining = self._next_piece(bank, remaining)
                execution = core.execute(piece)
                power_w = self._power.power(
                    execution.point,
                    execution.timing.duty,
                    temperature_c=(
                        thermal.temperature_c if thermal is not None else None
                    ),
                )
                energy.add_slice(power_w, execution.timing.seconds)
                if daq is not None:
                    daq.observe_slice(
                        time_s,
                        execution.timing.seconds,
                        power_w,
                        execution.point.voltage_v,
                        port.value,
                    )
                if thermal is not None:
                    thermal.advance(power_w, execution.timing.seconds)
                time_s += execution.timing.seconds
                current.seconds += execution.timing.seconds
                current.energy_j += power_w * execution.timing.seconds
                current.instructions += piece.instructions
                current.uops += piece.uops

                overflowed = bank.advance(
                    execution.events, execution.timing.cycles
                )
                if PMCEvent.UOPS_RETIRED in overflowed:
                    pmi.raise_interrupt()
                    # The handler runs at the pre-decision operating
                    # point; its decision only affects the next slice.
                    handler_point = dvfs.current
                    handler_power = self._power.power(
                        handler_point,
                        1.0,
                        temperature_c=(
                            thermal.temperature_c
                            if thermal is not None
                            else None
                        ),
                    )
                    handler_s = pmi.dispatch(time_s)
                    energy.add_slice(handler_power, handler_s)
                    if daq is not None:
                        daq.observe_slice(
                            time_s,
                            handler_s,
                            handler_power,
                            handler_point.voltage_v,
                            port.value | (1 << IN_HANDLER_BIT),
                        )
                    if thermal is not None:
                        thermal.advance(handler_power, handler_s)
                    time_s += handler_s
                    finished_intervals.append(current.take())

        port.clear_bit(APP_RUNNING_BIT)
        lkm.unload(pmi)

        records = lkm.read_log()
        if len(records) != len(finished_intervals):
            raise SimulationError(
                f"kernel log has {len(records)} records but the machine "
                f"accounted {len(finished_intervals)} intervals"
            )
        intervals = tuple(
            IntervalMetrics(
                record=record,
                seconds=acc.seconds,
                energy_j=acc.energy_j,
                instructions=acc.instructions,
            )
            for record, acc in zip(records, finished_intervals)
        )
        return RunResult(
            workload_name=trace.name,
            governor_name=governor.name,
            intervals=intervals,
            total_instructions=trace.total_instructions,
            total_uops=float(trace.total_uops),
            total_seconds=energy.seconds,
            total_energy_j=energy.energy_j,
            handler_seconds=lkm.total_handler_seconds,
            transition_count=dvfs.transition_count,
        )

    @staticmethod
    def _next_piece(
        bank: PMCBank, segment: SegmentSpec
    ) -> "tuple[SegmentSpec, Optional[SegmentSpec]]":
        """Split ``segment`` at the next counter-overflow boundary."""
        to_overflow = bank.uops_until_overflow(PMCEvent.UOPS_RETIRED)
        if to_overflow is None or to_overflow >= segment.uops:
            return segment, None
        boundary = int(to_overflow)
        if boundary <= 0:
            raise SimulationError(
                "pacing counter already at overflow outside the handler"
            )
        if boundary >= segment.uops:
            return segment, None
        return segment.split(boundary)
