"""Loadable-kernel-module analogue: the PMI handler and its kernel log.

The paper implements phase monitoring and prediction as a Linux loadable
kernel module: a PMI handler that runs every 100 million retired
micro-ops, plus a kernel-side log that user-level tools read out through
system calls (Section 5.1, 5.4).  This module reproduces that structure:

* :class:`PhaseMonitorLKM` owns the handler (the exact flow of the
  paper's Figure 8), the governor it consults, and the kernel log;
* the "system call" surface is :meth:`PhaseMonitorLKM.read_log` /
  :meth:`PhaseMonitorLKM.clear_log`, which user-level analysis code uses
  after a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.governor import Governor, IntervalCounters
from repro.cpu.dvfs import DVFSInterface
from repro.errors import ConfigurationError
from repro.obs.events import DVFSTransition, IntervalSampled, PMIHandled
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.pmc.counters import PMCBank
from repro.pmc.events import PMCEvent
from repro.pmc.interrupt import DEFAULT_PMI_GRANULARITY_UOPS, PMIController
from repro.system.parallel_port import ParallelPort

#: Cost of one handler invocation (stop/read/classify/predict/log) —
#: tens of microseconds against a ~100 ms interval, per the paper's
#: "no observable overheads" argument.
DEFAULT_HANDLER_OVERHEAD_S = 5.0e-6

#: Parallel-port bit roles (Section 5.4).
PHASE_TOGGLE_BIT = 0
IN_HANDLER_BIT = 1
APP_RUNNING_BIT = 2


@dataclass(frozen=True)
class KernelLogRecord:
    """One sampling interval as recorded by the handler.

    Attributes:
        interval_index: 0-based interval number.
        time_s: Simulated time at handler entry.
        uops: Retired micro-ops in the interval.
        mem_transactions: Memory bus transactions in the interval.
        instructions: Retired instructions in the interval.
        tsc_cycles: Elapsed cycles (TSC delta).
        mem_per_uop: The phase metric for the interval.
        upc: Observed micro-ops per cycle.
        actual_phase: Phase classified for the finished interval.
        predicted_phase: Phase predicted for the next interval.
        frequency_mhz: Frequency the interval ran at.
        next_frequency_mhz: Frequency programmed for the next interval.
    """

    interval_index: int
    time_s: float
    uops: float
    mem_transactions: float
    instructions: float
    tsc_cycles: float
    mem_per_uop: float
    upc: float
    actual_phase: int
    predicted_phase: int
    frequency_mhz: int
    next_frequency_mhz: int


class PhaseMonitorLKM:
    """The kernel module: PMI handler plus evaluation log.

    Args:
        governor: Decision logic consulted once per interval.
        bank: The PMC bank the handler programs and reads.
        dvfs: The DVFS registers the handler writes.
        port: Parallel port for DAQ synchronisation.
        granularity_uops: PMI pacing (default: the paper's 100M uops).
        handler_overhead_s: Handler execution cost per invocation.
        tracer: Optional trace collector; every event it records is
            stamped with the handler's interval index (the software
            analogue of the parallel-port sync bits).  Defaults to the
            no-op ``NULL_TRACER``.
    """

    def __init__(
        self,
        governor: Governor,
        bank: PMCBank,
        dvfs: DVFSInterface,
        port: Optional[ParallelPort] = None,
        granularity_uops: int = DEFAULT_PMI_GRANULARITY_UOPS,
        handler_overhead_s: float = DEFAULT_HANDLER_OVERHEAD_S,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if granularity_uops <= 0:
            raise ConfigurationError(
                f"PMI granularity must be > 0, got {granularity_uops}"
            )
        if handler_overhead_s < 0:
            raise ConfigurationError(
                f"handler overhead must be >= 0, got {handler_overhead_s}"
            )
        self._governor = governor
        self._bank = bank
        self._dvfs = dvfs
        self._port = port if port is not None else ParallelPort()
        self._granularity = granularity_uops
        self._overhead_s = handler_overhead_s
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._log: List[KernelLogRecord] = []
        self._interval_index = 0
        self._loaded = False
        self._total_handler_seconds = 0.0

    @property
    def governor(self) -> Governor:
        """The governor consulted by the handler."""
        return self._governor

    @property
    def port(self) -> ParallelPort:
        """The parallel port the handler signals through."""
        return self._port

    @property
    def granularity_uops(self) -> int:
        """The PMI pacing in retired micro-ops."""
        return self._granularity

    @property
    def loaded(self) -> bool:
        """Whether the module is currently loaded."""
        return self._loaded

    @property
    def total_handler_seconds(self) -> float:
        """Cumulative time spent inside the handler this run."""
        return self._total_handler_seconds

    def load(self, pmi: PMIController) -> None:
        """Load the module: register the handler, arm the counters.

        Mirrors LKM initialisation: the pacing counter is armed to
        overflow every ``granularity_uops`` retired micro-ops.
        """
        if self._loaded:
            raise ConfigurationError("module already loaded")
        pmi.register(self.handle_interrupt)
        self._bank.set_overflow(PMCEvent.UOPS_RETIRED, float(self._granularity))
        self._bank.restart()
        self._loaded = True

    def unload(self, pmi: PMIController) -> None:
        """Unload the module: deregister the handler, disarm the PMI."""
        if not self._loaded:
            raise ConfigurationError("module is not loaded")
        pmi.unregister()
        self._bank.set_overflow(PMCEvent.UOPS_RETIRED, None)
        self._loaded = False

    def handle_interrupt(self, time_s: float) -> float:
        """The PMI handler — the exact flow of the paper's Figure 8.

        Stop/read the counters, translate readings to the phase, update
        predictor state, predict the next phase, translate it to a DVFS
        setting, apply it if it differs from the current one, log, then
        reinitialise and restart the counters.

        Args:
            time_s: Simulated time at handler entry.

        Returns:
            Handler execution time in seconds (fixed overhead plus any
            DVFS transition stall).
        """
        tracer = self._tracer
        tracing = tracer.enabled
        interval_index = self._interval_index
        if tracing:
            tracer.begin_interval(interval_index)
        self._port.set_bit(IN_HANDLER_BIT)
        self._bank.stop()
        readings = self._bank.read_all()
        counters = IntervalCounters(
            uops=readings.get(PMCEvent.UOPS_RETIRED, 0.0),
            mem_transactions=readings.get(PMCEvent.BUS_TRAN_MEM, 0.0),
            instructions=readings.get(PMCEvent.INSTR_RETIRED, 0.0),
            tsc_cycles=self._bank.tsc_cycles,
        )
        point_before = self._dvfs.current
        frequency_before = point_before.frequency_mhz
        if tracing:
            tracer.emit(
                IntervalSampled(
                    interval=interval_index,
                    time_s=time_s,
                    uops=int(counters.uops),
                    mem_transactions=int(counters.mem_transactions),
                    instructions=int(counters.instructions),
                    tsc_cycles=int(counters.tsc_cycles),
                    mem_per_uop=counters.mem_per_uop,
                    upc=counters.upc,
                    frequency_mhz=float(frequency_before),
                )
            )
        decision = self._governor.decide(counters)
        transition_s = self._dvfs.request(decision.setting, time_s)
        if tracing and decision.setting != point_before:
            tracer.emit(
                DVFSTransition(
                    interval=interval_index,
                    from_mhz=float(point_before.frequency_mhz),
                    to_mhz=float(decision.setting.frequency_mhz),
                    from_voltage_v=point_before.voltage_v,
                    to_voltage_v=decision.setting.voltage_v,
                    transition_s=transition_s,
                    predicted_phase=decision.predicted_phase,
                )
            )
        self._log.append(
            KernelLogRecord(
                interval_index=self._interval_index,
                time_s=time_s,
                uops=counters.uops,
                mem_transactions=counters.mem_transactions,
                instructions=counters.instructions,
                tsc_cycles=counters.tsc_cycles,
                mem_per_uop=counters.mem_per_uop,
                upc=counters.upc,
                actual_phase=decision.actual_phase,
                predicted_phase=decision.predicted_phase,
                frequency_mhz=frequency_before,
                next_frequency_mhz=decision.setting.frequency_mhz,
            )
        )
        self._interval_index += 1
        self._port.toggle_bit(PHASE_TOGGLE_BIT)
        self._bank.restart()
        self._port.clear_bit(IN_HANDLER_BIT)
        handler_seconds = self._overhead_s + transition_s
        self._total_handler_seconds += handler_seconds
        if tracing:
            tracer.emit(
                PMIHandled(
                    interval=interval_index,
                    time_s=time_s,
                    handler_seconds=handler_seconds,
                    transition_s=transition_s,
                )
            )
        return handler_seconds

    # -- the "system call" surface used by user-level tooling --------------

    def read_log(self) -> Tuple[KernelLogRecord, ...]:
        """Read out the kernel log (user-level evaluation syscall)."""
        return tuple(self._log)

    def clear_log(self) -> None:
        """Clear the kernel log and interval numbering."""
        self._log.clear()
        self._interval_index = 0
        self._total_handler_seconds = 0.0
