"""Real-system variability injection (paper Section 5.1).

The paper's design confronts 'the impact of system induced variability':
on real hardware, interrupts, cache interference from the OS and timing
drift perturb the measured metrics from run to run.  Its countermeasure
is sampling at *fixed instruction* granularity, which makes the observed
``Mem/Uop`` phases 'resilient to real-system variations' (Figure 10).

This module supplies the adversary for that claim: a seeded perturbation
of a workload trace that models

* **measurement noise** — small Gaussian jitter on the memory traffic an
  interval generates (cache/TLB interference from other system activity),
* **efficiency noise** — jitter on the core's achieved UPC (frequency
  drift, scheduling interference),
* **intrusions** — occasional intervals burdened with extra OS work,
  modelled as a multiplicative uop-rate hit on ``upc_core``.

Tests and benches inject it to show that the fixed-granularity phase
pipeline keeps classifying and predicting accurately under perturbation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.segments import MAX_CORE_UPC, WorkloadTrace


@dataclass(frozen=True)
class SystemVariability:
    """A seeded model of run-to-run system perturbation.

    Args:
        mem_noise_sigma: Relative standard deviation of memory-traffic
            jitter per segment (e.g. 0.03 = 3% of the segment's rate).
        upc_noise_sigma: Relative standard deviation of core-UPC jitter.
        intrusion_probability: Per-segment probability of an OS
            intrusion.
        intrusion_slowdown: Fractional core-UPC loss during an intrusion
            (0.2 = the interval retires uops 20% slower).
        seed: RNG seed; the same seed reproduces the same perturbation.
    """

    mem_noise_sigma: float = 0.03
    upc_noise_sigma: float = 0.03
    intrusion_probability: float = 0.02
    intrusion_slowdown: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        for field_name in ("mem_noise_sigma", "upc_noise_sigma"):
            if getattr(self, field_name) < 0:
                raise ConfigurationError(f"{field_name} must be >= 0")
        if not 0.0 <= self.intrusion_probability <= 1.0:
            raise ConfigurationError(
                "intrusion_probability must be in [0, 1], got "
                f"{self.intrusion_probability}"
            )
        if not 0.0 <= self.intrusion_slowdown < 1.0:
            raise ConfigurationError(
                "intrusion_slowdown must be in [0, 1), got "
                f"{self.intrusion_slowdown}"
            )

    def perturb(self, trace: WorkloadTrace) -> WorkloadTrace:
        """Return a perturbed copy of ``trace``.

        Segment uop counts are untouched — the PMI still fires at exact
        instruction boundaries, which is precisely the paper's defence —
        only the per-segment rates move.
        """
        rng = np.random.default_rng(self.seed)
        perturbed = []
        for segment in trace:
            mem = segment.mem_per_uop
            if self.mem_noise_sigma:
                mem *= 1.0 + rng.normal(0.0, self.mem_noise_sigma)
                mem = max(mem, 0.0)
            upc = segment.upc_core
            if self.upc_noise_sigma:
                upc *= 1.0 + rng.normal(0.0, self.upc_noise_sigma)
            if (
                self.intrusion_probability
                and rng.random() < self.intrusion_probability
            ):
                upc *= 1.0 - self.intrusion_slowdown
            upc = float(np.clip(upc, 0.05, MAX_CORE_UPC))
            perturbed.append(
                replace(segment, mem_per_uop=mem, upc_core=upc)
            )
        return WorkloadTrace(trace.name, perturbed)

    def with_seed(self, seed: int) -> "SystemVariability":
        """A copy of this model drawing a different perturbation."""
        return replace(self, seed=seed)
