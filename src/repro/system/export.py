"""Export run results to portable formats.

The paper's evaluation support (Section 5.4) streams kernel-log and DAQ
data to user-level tools for offline analysis.  This module is that
user-level side: serialise a :class:`~repro.system.metrics.RunResult` —
per-interval log plus aggregates — to CSV or JSON for spreadsheets,
plotting tools, or archival alongside EXPERIMENTS.md artifacts.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List

from repro.system.metrics import RunResult

#: Column order of the per-interval CSV export.
INTERVAL_COLUMNS = (
    "interval_index",
    "time_s",
    "uops",
    "mem_transactions",
    "instructions",
    "mem_per_uop",
    "upc",
    "actual_phase",
    "predicted_phase",
    "frequency_mhz",
    "next_frequency_mhz",
    "seconds",
    "energy_j",
    "power_w",
    "bips",
)


def intervals_to_rows(result: RunResult) -> List[Dict[str, Any]]:
    """Flatten a run's intervals into one dict per row."""
    rows = []
    for interval in result.intervals:
        record = interval.record
        rows.append(
            {
                "interval_index": record.interval_index,
                "time_s": record.time_s,
                "uops": record.uops,
                "mem_transactions": record.mem_transactions,
                "instructions": interval.instructions,
                "mem_per_uop": record.mem_per_uop,
                "upc": record.upc,
                "actual_phase": record.actual_phase,
                "predicted_phase": record.predicted_phase,
                "frequency_mhz": record.frequency_mhz,
                "next_frequency_mhz": record.next_frequency_mhz,
                "seconds": interval.seconds,
                "energy_j": interval.energy_j,
                "power_w": interval.power_w,
                "bips": interval.bips,
            }
        )
    return rows


def run_to_csv(result: RunResult) -> str:
    """Serialise the per-interval log as CSV text."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(INTERVAL_COLUMNS))
    writer.writeheader()
    for row in intervals_to_rows(result):
        writer.writerow(row)
    return buffer.getvalue()


def run_summary(result: RunResult) -> Dict[str, Any]:
    """The run's aggregate metrics as a plain dict."""
    return {
        "workload": result.workload_name,
        "governor": result.governor_name,
        "intervals": len(result.intervals),
        "total_instructions": result.total_instructions,
        "total_uops": result.total_uops,
        "total_seconds": result.total_seconds,
        "total_energy_j": result.total_energy_j,
        "bips": result.bips,
        "average_power_w": result.average_power_w,
        "edp": result.edp,
        "prediction_accuracy": result.prediction_accuracy(),
        "transition_count": result.transition_count,
        "handler_seconds": result.handler_seconds,
        "handler_overhead_fraction": result.handler_overhead_fraction,
    }


def run_to_json(result: RunResult, include_intervals: bool = True) -> str:
    """Serialise a run (summary plus optional per-interval log) as JSON."""
    payload: Dict[str, Any] = {"summary": run_summary(result)}
    if include_intervals:
        payload["intervals"] = intervals_to_rows(result)
    return json.dumps(payload, indent=2, sort_keys=True)
