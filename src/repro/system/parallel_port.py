"""Parallel-port synchronisation bits (paper Section 5.4).

Three bits synchronise the independently running DAQ with processor
execution:

* bit 2 — set at application start, cleared at application end;
* bit 1 — set on PMI-handler entry, cleared on exit (lets the logging
  machine exclude handler execution from per-phase power);
* bit 0 — flipped by the handler every sampling interval, marking phase
  boundaries in the power stream.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: Number of wired port bits.
PORT_WIDTH = 3


class ParallelPort:
    """A tiny latch of output bits observable by the DAQ."""

    def __init__(self) -> None:
        self._value = 0

    @property
    def value(self) -> int:
        """The current bit pattern as an integer."""
        return self._value

    def bit(self, index: int) -> bool:
        """Whether bit ``index`` is currently set."""
        self._check(index)
        return bool((self._value >> index) & 1)

    def set_bit(self, index: int) -> None:
        """Drive bit ``index`` high."""
        self._check(index)
        self._value |= 1 << index

    def clear_bit(self, index: int) -> None:
        """Drive bit ``index`` low."""
        self._check(index)
        self._value &= ~(1 << index)

    def toggle_bit(self, index: int) -> None:
        """Invert bit ``index`` (the per-phase marker protocol)."""
        self._check(index)
        self._value ^= 1 << index

    def reset(self) -> None:
        """Drive all bits low."""
        self._value = 0

    @staticmethod
    def _check(index: int) -> None:
        if not 0 <= index < PORT_WIDTH:
            raise ConfigurationError(
                f"port bit must be in [0, {PORT_WIDTH}), got {index}"
            )
