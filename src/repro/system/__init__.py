"""Full-system integration: kernel module, machine, metrics, experiments."""

from repro.system.experiment import (
    BenchmarkComparison,
    GovernorFactory,
    compare_governors,
    run_comparison,
    run_comparison_suite,
    run_suite,
)
from repro.system.lkm import KernelLogRecord, PhaseMonitorLKM
from repro.system.machine import Machine
from repro.system.metrics import ComparisonMetrics, IntervalMetrics, RunResult
from repro.system.parallel_port import ParallelPort
from repro.system.variability import SystemVariability

__all__ = [
    "ParallelPort",
    "SystemVariability",
    "PhaseMonitorLKM",
    "KernelLogRecord",
    "Machine",
    "RunResult",
    "IntervalMetrics",
    "ComparisonMetrics",
    "BenchmarkComparison",
    "GovernorFactory",
    "run_comparison",
    "compare_governors",
    "run_suite",
    "run_comparison_suite",
]
