"""Experiment harnesses: baseline-vs-managed comparisons and sweeps.

The paper's evaluation always contrasts a managed run against an
unmanaged baseline pinned at the highest frequency (Section 6).  This
module packages that protocol: run the same trace twice on the same
machine — once under a static fastest-point governor, once under the
governor under test — and derive the normalised metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Sequence

from repro.core.governor import Governor, StaticGovernor
from repro.obs.tracer import Tracer

if TYPE_CHECKING:
    # Imported lazily at runtime: repro.exec pulls in repro.system
    # modules, so a module-level import here would be circular.
    from repro.exec.cache import ResultCache
    from repro.exec.engine import ExecutionEngine
    from repro.exec.results import ComparisonSuiteResult
from repro.system.machine import Machine
from repro.system.metrics import ComparisonMetrics, RunResult
from repro.workloads.spec2000 import (
    DEFAULT_TRACE_INTERVALS,
    BenchmarkSpec,
    benchmark,
)

#: A zero-argument callable producing a fresh governor (state must not
#: leak between benchmarks).
GovernorFactory = Callable[[], Governor]


@dataclass(frozen=True)
class BenchmarkComparison:
    """One benchmark's baseline-vs-managed outcome."""

    benchmark_name: str
    comparison: ComparisonMetrics

    @property
    def baseline(self) -> RunResult:
        """The unmanaged run."""
        return self.comparison.baseline

    @property
    def managed(self) -> RunResult:
        """The managed run."""
        return self.comparison.managed


def run_comparison(
    spec: BenchmarkSpec,
    governor_factory: GovernorFactory,
    machine: Optional[Machine] = None,
    n_intervals: int = DEFAULT_TRACE_INTERVALS,
    tracer: Optional[Tracer] = None,
) -> BenchmarkComparison:
    """Run one benchmark under a governor and under the baseline.

    Args:
        spec: The benchmark to run.
        governor_factory: Produces the managed governor.
        machine: Platform to run on (a default machine when omitted).
        n_intervals: Trace length in sampling intervals.
        tracer: Optional trace collector; records the *managed* run only
            (the baseline is pinned and makes no decisions worth
            tracing).  Zero-perturbation.
    """
    machine = machine if machine is not None else Machine()
    trace = spec.trace(n_intervals=n_intervals)
    baseline_governor = StaticGovernor(machine.speedstep.fastest)
    baseline = machine.run(trace, baseline_governor)
    managed = machine.run(trace, governor_factory(), tracer=tracer)
    return BenchmarkComparison(
        benchmark_name=spec.name,
        comparison=ComparisonMetrics(baseline=baseline, managed=managed),
    )


def compare_governors(
    spec: BenchmarkSpec,
    governor_factories: "Dict[str, GovernorFactory]",
    machine: Optional[Machine] = None,
    n_intervals: int = DEFAULT_TRACE_INTERVALS,
    tracer: Optional[Tracer] = None,
) -> Dict[str, ComparisonMetrics]:
    """Run several governors on one benchmark against a shared baseline.

    The baseline (pinned fastest) is executed once and reused for every
    managed run, so the returned comparisons are directly head-to-head.

    Args:
        spec: The benchmark to run.
        governor_factories: Display label to factory, in report order.
        machine: Platform to run on.
        n_intervals: Trace length in sampling intervals.
        tracer: Optional trace collector shared by every managed run;
            the ``PhaseClassified.governor`` field tells the runs apart
            and the interval index restarts at 0 for each.

    Returns:
        ``{label: ComparisonMetrics}`` preserving the given order.
    """
    machine = machine if machine is not None else Machine()
    trace = spec.trace(n_intervals=n_intervals)
    baseline = machine.run(trace, StaticGovernor(machine.speedstep.fastest))
    comparisons: Dict[str, ComparisonMetrics] = {}
    for label, factory in governor_factories.items():
        managed = machine.run(trace, factory(), tracer=tracer)
        comparisons[label] = ComparisonMetrics(
            baseline=baseline, managed=managed
        )
    return comparisons


def run_suite(
    benchmark_names: Sequence[str],
    governor_factory: GovernorFactory,
    machine: Optional[Machine] = None,
    n_intervals: int = DEFAULT_TRACE_INTERVALS,
    tracer: Optional[Tracer] = None,
) -> Dict[str, BenchmarkComparison]:
    """Run a set of benchmarks through :func:`run_comparison`.

    This is the full-fidelity path: every :class:`BenchmarkComparison`
    carries complete per-interval run logs.  For summary-level suites
    that should fan out over processes and memoise on disk, use
    :func:`run_comparison_suite`.

    Returns:
        Results keyed by benchmark name, preserving the given order.
    """
    machine = machine if machine is not None else Machine()
    return {
        name: run_comparison(
            benchmark(name), governor_factory, machine, n_intervals,
            tracer=tracer,
        )
        for name in benchmark_names
    }


def run_comparison_suite(
    benchmark_names: Sequence[str],
    governor: str = "gpht",
    policy: str = "table2",
    gphr_depth: int = 8,
    pht_entries: int = 128,
    n_intervals: int = DEFAULT_TRACE_INTERVALS,
    engine: Optional["ExecutionEngine"] = None,
    jobs: int = 1,
    cache: Optional["ResultCache"] = None,
    tracer: Optional[Tracer] = None,
) -> "ComparisonSuiteResult":
    """Run a baseline-vs-managed suite through the execution engine.

    Unlike :func:`run_suite` this takes the governor and policy *by
    registry name* (see :func:`repro.exec.cells.build_governor`), which
    makes every cell content-hashable: the suite fans out over worker
    processes and replays unchanged cells from the on-disk cache.  Each
    cell carries the flattened comparison summary rather than full
    per-interval logs.

    Args:
        benchmark_names: Benchmarks to run, in report order.
        governor: Managed governor name (``gpht`` or ``reactive``).
        policy: Policy name (``table2``, ``bounded``, ``energy``,
            ``edp``, ``ed2p``).
        gphr_depth: GPHT history depth (``gpht`` governor only).
        pht_entries: GPHT pattern table capacity.
        n_intervals: Trace length per run.
        engine: Execution engine (overrides ``jobs``/``cache``).
        jobs: Worker processes when no engine is given (1 = serial).
        cache: On-disk result cache when no engine is given.
        tracer: Optional trace collector for cell lifecycle events when
            no engine is given (an explicit ``engine`` carries its own).
    """
    from repro.exec.engine import make_engine
    from repro.exec.results import ComparisonCell, ComparisonSuiteResult
    from repro.exec.spec import ExperimentSpec

    if engine is None:
        engine = make_engine(jobs=jobs, cache=cache, tracer=tracer)
    specs = [
        ExperimentSpec.create(
            "comparison",
            benchmark=name,
            n_intervals=n_intervals,
            governor=governor,
            policy=policy,
            gphr_depth=gphr_depth,
            pht_entries=pht_entries,
        )
        for name in benchmark_names
    ]
    report = engine.run(specs)
    cells = tuple(
        ComparisonCell.create(name, dict(report.value(spec)))
        for name, spec in zip(benchmark_names, specs)
    )
    return ComparisonSuiteResult(
        name=f"{governor}-{policy}",
        governor=governor,
        policy=policy,
        n_intervals=n_intervals,
        cells=cells,
        provenance=report.provenance(),
    )
