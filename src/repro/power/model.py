"""CMOS power model for the simulated Pentium-M.

Processor power is modelled as switching power plus leakage:

``P = V^2 * f * (C_core * duty + C_idle) + k_leak * V^2 * g(T)``

* ``C_core * duty`` — activity-dependent switching: when the core is
  stalled on memory (low duty) large parts of the pipeline are clock-gated
  and switch less.
* ``C_idle`` — the portion that switches every cycle regardless (clock
  tree, always-on structures).
* ``k_leak * V^2`` — leakage, growing with voltage (a quadratic fit is a
  standard compact approximation over the Pentium-M's 0.96-1.48 V range).
* ``g(T) = 1 + alpha * (T - T_ref)`` — optional linearised temperature
  dependence of subthreshold leakage; with the default ``alpha = 0`` the
  model is temperature-free, matching the paper's (implicit) treatment.
  A positive ``alpha`` couples the power model to the thermal model in
  :mod:`repro.power.thermal`, enabling leakage-feedback studies.

The default coefficients are calibrated so that a fully CPU-bound workload
at (1500 MHz, 1.484 V) draws about 12 W and an idle-ish memory-bound one
at (600 MHz, 0.956 V) draws under 2 W — matching the 2-13 W envelope of
the paper's measured traces (Figure 10, middle chart).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cpu.frequency import OperatingPoint
from repro.errors import ConfigurationError
from repro.numerics import is_zero


@dataclass(frozen=True)
class PowerModel:
    """Compact switching + leakage power model.

    Args:
        core_capacitance: Effective switched capacitance of the
            activity-gated portion, in watts per (V^2 * GHz).
        idle_capacitance: Effective switched capacitance of the always-on
            portion, in watts per (V^2 * GHz).
        leakage_coefficient: Leakage coefficient in watts per V^2 at the
            reference temperature.
        leakage_temp_coefficient: Relative leakage increase per degC
            above ``reference_temperature_c`` (0 disables the coupling).
        reference_temperature_c: Temperature at which the leakage
            coefficient is calibrated.
    """

    core_capacitance: float = 2.40
    idle_capacitance: float = 0.63
    leakage_coefficient: float = 0.90
    leakage_temp_coefficient: float = 0.0
    reference_temperature_c: float = 35.0

    def __post_init__(self) -> None:
        for name in (
            "core_capacitance",
            "idle_capacitance",
            "leakage_coefficient",
            "leakage_temp_coefficient",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {value}")
        if self.core_capacitance + self.idle_capacitance <= 0:
            raise ConfigurationError("total switched capacitance must be > 0")

    def dynamic_power(self, point: OperatingPoint, duty: float) -> float:
        """Switching power in watts at ``point`` with activity ``duty``.

        Args:
            point: Operating point (supplies V and f).
            duty: Fraction of cycles doing core work, in [0, 1].
        """
        if not 0.0 <= duty <= 1.0:
            raise ConfigurationError(f"duty must be in [0, 1], got {duty}")
        v_sq = point.voltage_v**2
        switched = self.core_capacitance * duty + self.idle_capacitance
        return v_sq * point.frequency_ghz * switched

    def leakage_power(
        self, point: OperatingPoint, temperature_c: Optional[float] = None
    ) -> float:
        """Leakage power in watts at ``point``.

        Args:
            point: Operating point (supplies V).
            temperature_c: Die temperature for the leakage-temperature
                coupling; ignored when the model's
                ``leakage_temp_coefficient`` is zero or no temperature
                is supplied.  The scaling factor never drops below zero.
        """
        base = self.leakage_coefficient * point.voltage_v**2
        if temperature_c is None or is_zero(self.leakage_temp_coefficient):
            return base
        scale = 1.0 + self.leakage_temp_coefficient * (
            temperature_c - self.reference_temperature_c
        )
        return base * max(scale, 0.0)

    def power(
        self,
        point: OperatingPoint,
        duty: float,
        temperature_c: Optional[float] = None,
    ) -> float:
        """Total CPU power in watts at ``point`` with activity ``duty``.

        Args:
            point: Operating point.
            duty: Core-activity fraction in [0, 1].
            temperature_c: Optional die temperature for leakage scaling.
        """
        return self.dynamic_power(point, duty) + self.leakage_power(
            point, temperature_c
        )

    def max_power(self, point: OperatingPoint) -> float:
        """Power at full activity (duty = 1) at reference temperature —
        the TDP-like ceiling."""
        return self.power(point, 1.0)
