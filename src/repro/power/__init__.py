"""Power modelling and the simulated DAQ measurement path."""

from repro.power.daq import (
    DataAcquisitionSystem,
    DAQSample,
    LoggingMachine,
    PhasePowerWindow,
)
from repro.power.energy import EnergyAccumulator, edp_improvement, energy_savings
from repro.power.model import PowerModel
from repro.power.sensors import PowerDeliverySensors, SenseReading
from repro.power.thermal import ThermalModel

__all__ = [
    "PowerModel",
    "ThermalModel",
    "PowerDeliverySensors",
    "SenseReading",
    "EnergyAccumulator",
    "edp_improvement",
    "energy_savings",
    "DataAcquisitionSystem",
    "DAQSample",
    "LoggingMachine",
    "PhasePowerWindow",
]
