"""Simulated data-acquisition (DAQ) measurement path.

Reproduces the paper's external measurement pipeline (Section 5.3-5.4,
Figure 9):

* a **DAQ unit** samples the sense-resistor channel voltages plus three
  parallel-port bits on a fixed 40 microsecond grid;
* a **logging machine** post-processes the sample stream: it recovers
  power via the resistor arithmetic, keeps only samples taken while the
  application-run bit is set, drops samples taken inside the interrupt
  handler, and splits the stream into per-phase windows at every toggle
  of the phase-boundary bit.

The parallel-port protocol is the paper's exactly:

* bit 2 — set while the measured application is running,
* bit 1 — set while the PMI handler executes,
* bit 0 — flipped by the handler at every sampling interval, so each
  100M-uop phase sample can be attributed its own power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.power.sensors import PowerDeliverySensors, SenseReading

#: The paper's DAQ sampling period (40 microseconds).
DEFAULT_SAMPLE_PERIOD_S = 40.0e-6

#: Parallel-port bit indices (see module docstring).
PHASE_TOGGLE_BIT = 0
IN_HANDLER_BIT = 1
APP_RUNNING_BIT = 2


@dataclass(frozen=True)
class DAQSample:
    """One DAQ sample: raw channel voltages plus the sync bits."""

    time_s: float
    reading: SenseReading
    port_bits: int

    def bit(self, index: int) -> bool:
        """Whether parallel-port bit ``index`` was set at sample time."""
        return bool((self.port_bits >> index) & 1)


class DataAcquisitionSystem:
    """Fixed-rate sampler of the power-delivery sense channels.

    The machine model drives it with constant-power execution slices; the
    DAQ lays its own sampling grid over them, so a slice shorter than one
    sample period may contribute no samples at all — exactly like real
    asynchronous measurement.

    Args:
        sensors: The sense-resistor front end to read through.
        sample_period_s: Sampling period (defaults to the paper's 40 us).
    """

    def __init__(
        self,
        sensors: Optional[PowerDeliverySensors] = None,
        sample_period_s: float = DEFAULT_SAMPLE_PERIOD_S,
    ) -> None:
        if sample_period_s <= 0:
            raise ConfigurationError(
                f"sample period must be > 0, got {sample_period_s}"
            )
        self._sensors = sensors if sensors is not None else PowerDeliverySensors()
        self._period = sample_period_s
        self._next_sample_time = 0.0
        self._times: List[float] = []
        self._v1: List[float] = []
        self._v2: List[float] = []
        self._v_cpu: List[float] = []
        self._bits: List[int] = []

    @property
    def sample_period_s(self) -> float:
        """The sampling period in seconds."""
        return self._period

    @property
    def sample_count(self) -> int:
        """Number of samples captured so far."""
        return len(self._times)

    def observe_slice(
        self,
        start_s: float,
        duration_s: float,
        power_w: float,
        v_cpu: float,
        port_bits: int,
    ) -> int:
        """Sample one constant-power execution slice.

        Args:
            start_s: Slice start in simulated time.
            duration_s: Slice length in seconds.
            power_w: True CPU power during the slice.
            v_cpu: CPU voltage during the slice.
            port_bits: Parallel-port bit state during the slice.

        Returns:
            The number of samples the DAQ grid placed inside the slice.
        """
        if duration_s < 0:
            raise ConfigurationError(
                f"duration must be >= 0, got {duration_s}"
            )
        end_s = start_s + duration_s
        if self._next_sample_time < start_s:
            # The DAQ grid is global; catch up past any unobserved gap.
            missed = np.ceil((start_s - self._next_sample_time) / self._period)
            self._next_sample_time += missed * self._period
        if self._next_sample_time >= end_s:
            return 0
        # All samples inside a slice see the same constant power, so the
        # sensor is read once and broadcast over the sample grid.
        count = int(np.ceil((end_s - self._next_sample_time) / self._period))
        times = self._next_sample_time + np.arange(count) * self._period
        times = times[times < end_s]
        count = times.size
        if count == 0:
            return 0
        reading = self._sensors.sense(power_w, v_cpu)
        self._times.extend(times.tolist())
        self._v1.extend([reading.v1] * count)
        self._v2.extend([reading.v2] * count)
        self._v_cpu.extend([reading.v_cpu] * count)
        self._bits.extend([port_bits] * count)
        self._next_sample_time = float(times[-1]) + self._period
        return count

    def samples(self) -> List[DAQSample]:
        """All captured samples as structured records."""
        return [
            DAQSample(
                time_s=t,
                reading=SenseReading(v1=v1, v2=v2, v_cpu=vc),
                port_bits=b,
            )
            for t, v1, v2, vc, b in zip(
                self._times, self._v1, self._v2, self._v_cpu, self._bits
            )
        ]

    def raw_arrays(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The capture as numpy arrays ``(times, v1, v2, v_cpu, bits)``."""
        return (
            np.asarray(self._times),
            np.asarray(self._v1),
            np.asarray(self._v2),
            np.asarray(self._v_cpu),
            np.asarray(self._bits, dtype=np.int64),
        )

    def reset(self) -> None:
        """Discard all samples and restart the sampling grid at t=0."""
        self._next_sample_time = 0.0
        self._times.clear()
        self._v1.clear()
        self._v2.clear()
        self._v_cpu.clear()
        self._bits.clear()


@dataclass(frozen=True)
class PhasePowerWindow:
    """Per-phase power statistics recovered by the logging machine.

    Attributes:
        start_s: Time of the first sample in the window.
        end_s: Time of the last sample in the window.
        sample_count: DAQ samples attributed to this phase.
        mean_power_w: Mean recovered power over the window.
        energy_j: Approximate energy (mean power times sample span).
    """

    start_s: float
    end_s: float
    sample_count: int
    mean_power_w: float
    energy_j: float


class LoggingMachine:
    """Post-processes a DAQ capture into per-phase power statistics.

    Implements the paper's attribution protocol: keep only samples with
    the app-running bit set, drop in-handler samples, and cut phase
    windows at each toggle of the phase bit.
    """

    def __init__(
        self, resistance_ohms: float = 0.002, sample_period_s: float = DEFAULT_SAMPLE_PERIOD_S
    ) -> None:
        self._resistance = resistance_ohms
        self._period = sample_period_s

    def recover_power(self, daq: DataAcquisitionSystem) -> np.ndarray:
        """Recover the power series from raw channel voltages.

        Applies the paper's formulas: ``I_i = (V_i - V_CPU) / R`` and
        ``P = V_CPU * (I1 + I2)``.
        """
        _, v1, v2, v_cpu, _ = daq.raw_arrays()
        i1 = (v1 - v_cpu) / self._resistance
        i2 = (v2 - v_cpu) / self._resistance
        return v_cpu * (i1 + i2)

    def attribute_phases(self, daq: DataAcquisitionSystem) -> List[PhasePowerWindow]:
        """Split the capture into per-phase power windows.

        Returns:
            One :class:`PhasePowerWindow` per contiguous run of the phase
            toggle bit, restricted to application execution outside the
            interrupt handler, in time order.
        """
        times, _, _, _, bits = daq.raw_arrays()
        if times.size == 0:
            return []
        power = self.recover_power(daq)
        app_running = (bits >> APP_RUNNING_BIT) & 1 == 1
        in_handler = (bits >> IN_HANDLER_BIT) & 1 == 1
        keep = app_running & ~in_handler
        times = times[keep]
        power = power[keep]
        toggles = (bits[keep] >> PHASE_TOGGLE_BIT) & 1
        if times.size == 0:
            return []
        # A new window starts wherever the toggle bit changes value.
        boundaries = np.flatnonzero(np.diff(toggles) != 0) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [times.size]))
        windows = []
        for lo, hi in zip(starts, ends):
            window_power = power[lo:hi]
            mean_power = float(window_power.mean())
            span = float(times[hi - 1] - times[lo]) + self._period
            windows.append(
                PhasePowerWindow(
                    start_s=float(times[lo]),
                    end_s=float(times[hi - 1]),
                    sample_count=int(hi - lo),
                    mean_power_w=mean_power,
                    energy_j=mean_power * span,
                )
            )
        return windows
