"""Lumped RC thermal model of the processor package (extension).

The paper positions its phase-prediction framework as applicable to
"dynamic thermal management" (Sections 1 and 8) without building one.
This module supplies the missing substrate: a first-order lumped
thermal model of die + package,

``dT/dt = (P * R_th - (T - T_amb)) / (R_th * C_th)``

stepped exactly over constant-power execution slices via the closed-form
exponential solution, so integration error does not depend on slice
length.  Default parameters give a Pentium-M-like response: a thermal
resistance of 4 K/W puts the steady state for a 12 W CPU-bound workload
near 83 degC over a 35 degC ambient, with a time constant of a few
seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import ConfigurationError


@dataclass
class ThermalModel:
    """First-order thermal state of the processor package.

    Args:
        r_th_k_per_w: Junction-to-ambient thermal resistance (K/W).
        c_th_j_per_k: Lumped thermal capacitance (J/K).
        ambient_c: Ambient temperature (degC); also the initial die
            temperature.
    """

    r_th_k_per_w: float = 4.0
    c_th_j_per_k: float = 1.5
    ambient_c: float = 35.0
    _temperature_c: float = field(init=False, default=0.0)
    _time_s: float = field(init=False, default=0.0)
    _times: List[float] = field(init=False, default_factory=list)
    _temperatures: List[float] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        if self.r_th_k_per_w <= 0:
            raise ConfigurationError(
                f"thermal resistance must be > 0, got {self.r_th_k_per_w}"
            )
        if self.c_th_j_per_k <= 0:
            raise ConfigurationError(
                f"thermal capacitance must be > 0, got {self.c_th_j_per_k}"
            )
        self._temperature_c = self.ambient_c

    @property
    def temperature_c(self) -> float:
        """Current die temperature in degC."""
        return self._temperature_c

    @property
    def time_s(self) -> float:
        """Total simulated time advanced so far."""
        return self._time_s

    @property
    def time_constant_s(self) -> float:
        """The RC time constant tau = R_th * C_th, in seconds."""
        return self.r_th_k_per_w * self.c_th_j_per_k

    def steady_state_c(self, power_w: float) -> float:
        """Temperature the die would settle at under constant power."""
        if power_w < 0:
            raise ConfigurationError(f"power must be >= 0, got {power_w}")
        return self.ambient_c + power_w * self.r_th_k_per_w

    def advance(self, power_w: float, dt_s: float) -> float:
        """Step the die temperature through a constant-power slice.

        Uses the exact exponential solution of the RC equation, so two
        half-steps equal one full step.

        Args:
            power_w: Power dissipated during the slice (watts).
            dt_s: Slice duration (seconds).

        Returns:
            The temperature at the end of the slice, in degC.
        """
        if dt_s < 0:
            raise ConfigurationError(f"dt must be >= 0, got {dt_s}")
        target = self.steady_state_c(power_w)
        decay = math.exp(-dt_s / self.time_constant_s)
        self._temperature_c = target + (self._temperature_c - target) * decay
        self._time_s += dt_s
        self._times.append(self._time_s)
        self._temperatures.append(self._temperature_c)
        return self._temperature_c

    def history(self) -> Tuple[List[float], List[float]]:
        """The recorded ``(times, temperatures)`` trajectory."""
        return list(self._times), list(self._temperatures)

    @property
    def peak_temperature_c(self) -> float:
        """Hottest temperature recorded so far (ambient if none)."""
        if not self._temperatures:
            return self.ambient_c
        return max(self._temperatures)

    def reset(self) -> None:
        """Return to ambient and clear the trajectory."""
        self._temperature_c = self.ambient_c
        self._time_s = 0.0
        self._times.clear()
        self._temperatures.clear()
