"""Simulated power-delivery sensing: voltage regulator and sense resistors.

The paper measures CPU power externally: two 2 mOhm precision resistors sit
between the voltage regulator and the CPU; a DAQ measures the voltages
``V1``/``V2`` upstream of each resistor and ``V_CPU`` downstream, then
computes ``I = (V_i - V_CPU) / R`` and ``P = V_CPU * (I1 + I2)``
(Section 5.3, Figure 9).

This module inverts that arithmetic: given the *true* power the model says
the CPU draws at its current operating point, it produces the raw channel
voltages a DAQ would observe, splitting current across the two resistor
paths.  The DAQ then recovers power exactly the way the paper's logging
machine does — so the whole measurement pipeline, including the resistor
math, is exercised end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Resistance of each precision sense resistor (the paper uses 2 mOhm).
SENSE_RESISTANCE_OHMS = 0.002


@dataclass(frozen=True)
class SenseReading:
    """Instantaneous voltages on the three measured channels.

    Attributes:
        v1: Voltage upstream of the first sense resistor (volts).
        v2: Voltage upstream of the second sense resistor (volts).
        v_cpu: CPU input voltage downstream of both resistors (volts).
    """

    v1: float
    v2: float
    v_cpu: float

    def current_amps(
        self, resistance_ohms: float = SENSE_RESISTANCE_OHMS
    ) -> float:
        """Total CPU current recovered from the voltage drops."""
        i1 = (self.v1 - self.v_cpu) / resistance_ohms
        i2 = (self.v2 - self.v_cpu) / resistance_ohms
        return i1 + i2

    def power_watts(
        self, resistance_ohms: float = SENSE_RESISTANCE_OHMS
    ) -> float:
        """CPU power in watts, recovered as ``V_CPU * (I1 + I2)`` (the
        paper's logging-machine formula)."""
        return self.v_cpu * self.current_amps(resistance_ohms)


class PowerDeliverySensors:
    """Produces raw sense-channel voltages from true CPU power draw.

    Args:
        resistance_ohms: Per-resistor resistance.
        current_split: Fraction of total current flowing through the
            first resistor path (real boards split roughly evenly).
    """

    def __init__(
        self,
        resistance_ohms: float = SENSE_RESISTANCE_OHMS,
        current_split: float = 0.5,
    ) -> None:
        if resistance_ohms <= 0:
            raise ConfigurationError(
                f"sense resistance must be > 0, got {resistance_ohms}"
            )
        if not 0.0 < current_split < 1.0:
            raise ConfigurationError(
                f"current split must be in (0, 1), got {current_split}"
            )
        self._resistance = resistance_ohms
        self._split = current_split

    @property
    def resistance_ohms(self) -> float:
        """Per-resistor resistance in ohms."""
        return self._resistance

    def sense(self, power_watts: float, v_cpu: float) -> SenseReading:
        """Produce the channel voltages for a given true power draw.

        Args:
            power_watts: True CPU power at this instant.
            v_cpu: CPU input voltage (the operating point's voltage).

        Returns:
            Raw channel voltages; feeding them back through
            :meth:`SenseReading.power_watts` recovers ``power_watts``.
        """
        if power_watts < 0:
            raise ConfigurationError(
                f"power must be >= 0, got {power_watts}"
            )
        if v_cpu <= 0:
            raise ConfigurationError(f"v_cpu must be > 0, got {v_cpu}")
        total_current = power_watts / v_cpu
        i1 = total_current * self._split
        i2 = total_current * (1.0 - self._split)
        return SenseReading(
            v1=v_cpu + i1 * self._resistance,
            v2=v_cpu + i2 * self._resistance,
            v_cpu=v_cpu,
        )
