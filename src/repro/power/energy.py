"""Energy and energy-delay accounting.

Exact per-slice integration of the power model: every execution slice runs
at constant power (constant operating point and duty), so its energy is
simply ``P * t``.  The accumulator also tracks time so energy-delay
product (EDP) — the paper's headline efficiency metric — falls out
directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.numerics import is_zero


@dataclass
class EnergyAccumulator:
    """Running totals of energy and time for one machine run.

    Attributes:
        energy_j: Total energy consumed so far, in joules.
        seconds: Total wall-clock time elapsed so far, in seconds.
    """

    energy_j: float = 0.0
    seconds: float = 0.0

    def add_slice(self, power_w: float, duration_s: float) -> None:
        """Account one constant-power execution slice.

        Args:
            power_w: Power during the slice, in watts.
            duration_s: Slice duration, in seconds.
        """
        if power_w < 0:
            raise ConfigurationError(f"power must be >= 0, got {power_w}")
        if duration_s < 0:
            raise ConfigurationError(
                f"duration must be >= 0, got {duration_s}"
            )
        self.energy_j += power_w * duration_s
        self.seconds += duration_s

    @property
    def average_power_w(self) -> float:
        """Mean power in watts over the accumulated time (0 if no time
        has elapsed)."""
        if is_zero(self.seconds):
            return 0.0
        return self.energy_j / self.seconds

    @property
    def edp(self) -> float:
        """Energy-delay product in joule-seconds."""
        return self.energy_j * self.seconds

    def reset(self) -> None:
        """Zero both totals."""
        self.energy_j = 0.0
        self.seconds = 0.0


def edp_improvement(baseline_edp: float, managed_edp: float) -> float:
    """Fractional EDP improvement of a managed run over a baseline.

    Positive values mean the managed run is better; e.g. 0.34 reproduces
    the paper's "34% EDP improvement".
    """
    if baseline_edp <= 0:
        raise ConfigurationError(
            f"baseline EDP must be > 0, got {baseline_edp}"
        )
    return 1.0 - managed_edp / baseline_edp


def energy_savings(baseline_j: float, managed_j: float) -> float:
    """Fractional energy saved by a managed run over a baseline."""
    if baseline_j <= 0:
        raise ConfigurationError(f"baseline energy must be > 0, got {baseline_j}")
    return 1.0 - managed_j / baseline_j
