"""Accuracy-vs-overhead comparison of learned predictors vs GPHT.

Drives a ``{benchmark} x {model}`` grid of ``learned_accuracy`` sweep
cells through the :mod:`repro.exec` engine — so comparisons cache,
parallelise and replay exactly like every other sweep — and condenses
the grid into one deterministic JSON payload: per-cell metrics plus a
per-model summary (mean accuracy, mean overhead, wins).

The payload is a pure function of the grid parameters: running it
serially, with ``--jobs N`` or from a warm cache yields identical
bytes.  ``benchmarks/results/learned_accuracy.json`` wraps this payload
with host provenance.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.exec.cells import DEFAULT_TRAIN_SEED, LEARNED_MODELS
from repro.exec.engine import ExecutionEngine, ExecutionReport
from repro.exec.spec import ExperimentSpec

#: Comparison payload format version.
COMPARE_VERSION = 1

#: Default comparison suite: a mixed int/fp SPEC2000 subset.
DEFAULT_COMPARE_BENCHMARKS: Tuple[str, ...] = (
    "applu_in",
    "bzip2_program",
    "crafty_in",
    "equake_in",
    "gcc_166",
    "gzip_program",
    "mcf_inp",
    "mesa_ref",
    "swim_in",
    "twolf_ref",
)


def comparison_specs(
    benchmarks: Sequence[str],
    n_intervals: int,
    *,
    models: Sequence[str] = LEARNED_MODELS,
    train_intervals: Optional[int] = None,
    train_seed: int = DEFAULT_TRAIN_SEED,
    seed: Optional[int] = None,
) -> List[ExperimentSpec]:
    """The ``learned_accuracy`` spec grid of one comparison."""
    if not benchmarks:
        raise ConfigurationError("comparison needs at least one benchmark")
    unknown = [m for m in models if m not in LEARNED_MODELS]
    if unknown:
        raise ConfigurationError(
            f"unknown models {unknown}; known: {list(LEARNED_MODELS)}"
        )
    if not models:
        raise ConfigurationError("comparison needs at least one model")
    specs: List[ExperimentSpec] = []
    for benchmark in benchmarks:
        for model in models:
            specs.append(
                ExperimentSpec.create(
                    "learned_accuracy",
                    benchmark,
                    n_intervals,
                    seed=seed,
                    model=model,
                    train_intervals=(
                        n_intervals
                        if train_intervals is None
                        else train_intervals
                    ),
                    train_seed=train_seed,
                )
            )
    return specs


def compare_models(
    engine: ExecutionEngine,
    benchmarks: Sequence[str] = DEFAULT_COMPARE_BENCHMARKS,
    n_intervals: int = 512,
    *,
    models: Sequence[str] = LEARNED_MODELS,
    train_intervals: Optional[int] = None,
    train_seed: int = DEFAULT_TRAIN_SEED,
    seed: Optional[int] = None,
) -> Dict[str, object]:
    """Run the comparison grid and build its deterministic payload.

    Returns a mapping with ``version``, ``parameters``, ``models``,
    ``benchmarks``, per-benchmark ``cells`` and a per-model ``summary``
    (mean accuracy/misprediction/overhead and benchmarks won, where a
    *win* is holding the strictly highest accuracy on a benchmark).
    """
    specs = comparison_specs(
        benchmarks,
        n_intervals,
        models=models,
        train_intervals=train_intervals,
        train_seed=train_seed,
        seed=seed,
    )
    report: ExecutionReport = engine.run(specs)
    cells: Dict[str, Dict[str, Dict[str, object]]] = {}
    index = 0
    for benchmark in benchmarks:
        row: Dict[str, Dict[str, object]] = {}
        for model in models:
            value = dict(report.value(specs[index]))
            index += 1
            row[model] = value
        cells[benchmark] = row
    summary: Dict[str, Dict[str, object]] = {}
    for model in models:
        accuracies = [
            float(cells[b][model]["accuracy"])  # type: ignore[arg-type]
            for b in benchmarks
        ]
        overheads = [
            float(cells[b][model]["overhead_units"])  # type: ignore[arg-type]
            for b in benchmarks
        ]
        wins = 0
        for b in benchmarks:
            own = float(cells[b][model]["accuracy"])  # type: ignore[arg-type]
            others = [
                float(cells[b][m]["accuracy"])  # type: ignore[arg-type]
                for m in models
                if m != model
            ]
            if all(own > other for other in others):
                wins += 1
        summary[model] = {
            "mean_accuracy": sum(accuracies) / len(accuracies),
            "mean_misprediction_rate": 1.0
            - sum(accuracies) / len(accuracies),
            "mean_overhead_units": sum(overheads) / len(overheads),
            "benchmarks_won": wins,
        }
    return {
        "version": COMPARE_VERSION,
        "parameters": {
            "n_intervals": n_intervals,
            "train_intervals": (
                n_intervals if train_intervals is None else train_intervals
            ),
            "train_seed": train_seed,
            "seed": seed,
        },
        "models": list(models),
        "benchmarks": list(benchmarks),
        "cells": cells,
        "summary": summary,
    }
