"""Supervised dataset extraction from traces and live workloads.

Two dataset shapes feed the ``repro.learn`` models:

* :class:`PhaseWindowDataset` — sliding feature windows over a phase
  stream (``k`` most-recent phases + the last two raw ``Mem/Uop``
  samples) labelled with the *next* phase.  Built from a recorded
  ``repro.obs`` JSONL trace (its ``interval_sampled`` events) or
  directly from a live workload generator's ``Mem/Uop`` series.
* :class:`PowerDataset` — per-interval counter vectors
  (``upc``, ``Mem/Uop``, frequency) labelled with the interval's
  measured power, built from full machine runs.  Recorded traces carry
  **no** power channel (``interval_sampled`` predates the DAQ join), so
  power datasets must come from runs; the builders say so explicitly.

Both datasets serialise to canonical JSON (sorted keys, fixed float
``repr``) and hash to a stable sha256 digest, which is what the
training-determinism guarantee is anchored on: same inputs -> same
dataset bytes -> same model artifact bytes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.phases import PhaseTable
from repro.errors import ConfigurationError
from repro.obs.events import IntervalSampled, TraceEvent
from repro.system.metrics import RunResult

#: Dataset payload format version.
DATASET_VERSION = 1


def _canonical_json(payload: Dict[str, object]) -> str:
    """Canonical JSON: sorted keys, no spaces, trailing newline."""
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    )


@dataclass(frozen=True, eq=False)
class PhaseWindowDataset:
    """Feature windows over a phase stream, labelled with the next phase.

    Feature layout per example (``history_length + 2`` columns)::

        [phase_t, phase_{t-1}, ..., phase_{t-k+1}, mem_t, mem_{t-1}]

    with ``0`` phase padding and ``0.0`` mem padding before the stream
    starts — exactly the live view an online predictor has after
    observing sample ``t``; the label is the phase of sample ``t + 1``.

    Attributes:
        history_length: ``k``, the number of phase-history columns.
        features: Read-only ``(n, k + 2)`` float64 matrix.
        labels: Read-only ``(n,)`` int64 next-phase labels.
    """

    history_length: int
    features: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.history_length < 1:
            raise ConfigurationError(
                f"history_length must be >= 1, got {self.history_length}"
            )
        if (
            self.features.ndim != 2
            or self.features.shape[1] != self.history_length + 2
        ):
            raise ConfigurationError(
                f"features must be (n, {self.history_length + 2}), got "
                f"{self.features.shape}"
            )
        if self.labels.shape != (self.features.shape[0],):
            raise ConfigurationError(
                f"labels must be ({self.features.shape[0]},), got "
                f"{self.labels.shape}"
            )
        self.features.flags.writeable = False
        self.labels.flags.writeable = False

    def __len__(self) -> int:
        return int(self.features.shape[0])

    def to_payload(self) -> Dict[str, object]:
        """Lossless JSON-able form of the whole dataset."""
        return {
            "version": DATASET_VERSION,
            "type": "phase_window",
            "history_length": self.history_length,
            "features": [list(row) for row in self.features.tolist()],
            "labels": [int(v) for v in self.labels.tolist()],
        }

    def to_json(self) -> str:
        """Canonical JSON (the determinism anchor)."""
        return _canonical_json(self.to_payload())

    def digest(self) -> str:
        """sha256 of the canonical JSON bytes."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def split(
        self, train_fraction: float, seed: int
    ) -> Tuple["PhaseWindowDataset", "PhaseWindowDataset"]:
        """Deterministic seeded train/holdout split.

        Uses a seeded :func:`numpy.random.default_rng` permutation, so
        the same (dataset, fraction, seed) triple always produces the
        same byte-identical halves.
        """
        if not 0.0 < train_fraction < 1.0:
            raise ConfigurationError(
                f"train_fraction must be in (0, 1), got {train_fraction}"
            )
        n = len(self)
        order = np.random.default_rng(seed).permutation(n)
        cut = int(round(n * train_fraction))
        train_rows = np.sort(order[:cut])
        hold_rows = np.sort(order[cut:])
        return (
            PhaseWindowDataset(
                history_length=self.history_length,
                features=self.features[train_rows].copy(),
                labels=self.labels[train_rows].copy(),
            ),
            PhaseWindowDataset(
                history_length=self.history_length,
                features=self.features[hold_rows].copy(),
                labels=self.labels[hold_rows].copy(),
            ),
        )


def phase_dataset_from_series(
    mem_series: Sequence[float],
    history_length: int = 4,
    phase_table: Optional[PhaseTable] = None,
) -> PhaseWindowDataset:
    """Extract phase-window examples from a raw ``Mem/Uop`` series.

    The series is classified with ``phase_table`` (default: the paper's
    Table 1) exactly as the offline evaluator does, then unrolled into
    one example per scored prediction: the window after sample ``t``
    labelled with the phase of sample ``t + 1``.
    """
    if history_length < 1:
        raise ConfigurationError(
            f"history_length must be >= 1, got {history_length}"
        )
    values: List[float] = np.asarray(
        mem_series, dtype=np.float64
    ).tolist()
    if len(values) < 2:
        raise ConfigurationError(
            f"dataset extraction needs >= 2 samples, got {len(values)}"
        )
    table = phase_table if phase_table is not None else PhaseTable()
    phases = table.classify_batch(values)
    n = len(values) - 1
    features = np.zeros((n, history_length + 2), dtype=np.float64)
    labels = np.zeros(n, dtype=np.int64)
    for t in range(n):
        for lag in range(history_length):
            if t - lag >= 0:
                features[t, lag] = float(phases[t - lag])
        features[t, history_length] = values[t]
        if t >= 1:
            features[t, history_length + 1] = values[t - 1]
        labels[t] = phases[t + 1]
    return PhaseWindowDataset(
        history_length=history_length, features=features, labels=labels
    )


def phase_dataset_from_events(
    events: Sequence[TraceEvent],
    history_length: int = 4,
    phase_table: Optional[PhaseTable] = None,
) -> PhaseWindowDataset:
    """Extract phase-window examples from a recorded ``repro.obs`` trace.

    Uses the ``interval_sampled`` events' ``mem_per_uop`` channel in
    stream order; every other event type is ignored.  Classification
    re-runs through ``phase_table``, matching the offline evaluator (and
    the trace's own ``phase_classified`` events, when the trace was
    recorded under the same table).
    """
    mem_values = [
        event.mem_per_uop
        for event in events
        if isinstance(event, IntervalSampled)
    ]
    if len(mem_values) < 2:
        raise ConfigurationError(
            "trace carries "
            f"{len(mem_values)} interval_sampled events; dataset "
            "extraction needs >= 2"
        )
    return phase_dataset_from_series(
        mem_values, history_length=history_length, phase_table=phase_table
    )


def phase_dataset_from_benchmark(
    benchmark_name: str,
    n_intervals: int,
    seed: Optional[int] = None,
    history_length: int = 4,
    phase_table: Optional[PhaseTable] = None,
) -> PhaseWindowDataset:
    """Extract phase-window examples from a live workload generator."""
    # Imported lazily to keep module import light; repro.workloads is a
    # sibling layer, not a dependency of the dataset structures.
    from repro.workloads.spec2000 import benchmark

    series = benchmark(benchmark_name).mem_series(n_intervals, seed=seed)
    return phase_dataset_from_series(
        series, history_length=history_length, phase_table=phase_table
    )


#: Power feature columns, in matrix order.
POWER_FEATURES: Tuple[str, ...] = ("upc", "mem_per_uop", "frequency_mhz")


@dataclass(frozen=True, eq=False)
class PowerDataset:
    """Per-interval counter vectors labelled with measured power.

    Attributes:
        features: Read-only ``(n, 3)`` float64 matrix, columns
            :data:`POWER_FEATURES`.
        power_w: Read-only ``(n,)`` float64 measured interval power.
    """

    features: np.ndarray
    power_w: np.ndarray

    def __post_init__(self) -> None:
        if self.features.ndim != 2 or self.features.shape[1] != len(
            POWER_FEATURES
        ):
            raise ConfigurationError(
                f"features must be (n, {len(POWER_FEATURES)}), got "
                f"{self.features.shape}"
            )
        if self.power_w.shape != (self.features.shape[0],):
            raise ConfigurationError(
                f"power_w must be ({self.features.shape[0]},), got "
                f"{self.power_w.shape}"
            )
        self.features.flags.writeable = False
        self.power_w.flags.writeable = False

    def __len__(self) -> int:
        return int(self.features.shape[0])

    def to_payload(self) -> Dict[str, object]:
        """Lossless JSON-able form of the whole dataset."""
        return {
            "version": DATASET_VERSION,
            "type": "power",
            "columns": list(POWER_FEATURES),
            "features": [list(row) for row in self.features.tolist()],
            "power_w": list(self.power_w.tolist()),
        }

    def to_json(self) -> str:
        """Canonical JSON (the determinism anchor)."""
        return _canonical_json(self.to_payload())

    def digest(self) -> str:
        """sha256 of the canonical JSON bytes."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()


def power_dataset_from_run(run: RunResult) -> PowerDataset:
    """Extract counter-vs-power examples from a completed machine run."""
    if not run.intervals:
        raise ConfigurationError("run has no intervals to extract from")
    n = len(run.intervals)
    features = np.zeros((n, len(POWER_FEATURES)), dtype=np.float64)
    power = np.zeros(n, dtype=np.float64)
    for i, metrics in enumerate(run.intervals):
        record = metrics.record
        features[i, 0] = record.upc
        features[i, 1] = record.mem_per_uop
        features[i, 2] = float(record.frequency_mhz)
        power[i] = metrics.power_w
    return PowerDataset(features=features, power_w=power)


def power_dataset_from_events(events: Sequence[TraceEvent]) -> PowerDataset:
    """Refuse trace input for power training, with the reason.

    ``interval_sampled`` events carry counters but no measured power
    (the DAQ stream is joined offline in the paper's workflow and is
    not part of the trace schema), so a learned power model cannot be
    fit from a recorded trace alone.  This stub exists so callers get a
    precise error instead of a silent zero-power dataset.
    """
    raise ConfigurationError(
        "recorded traces carry no measured power channel; train power "
        "models from a live run instead (power_dataset_from_run / "
        "power_dataset_from_benchmark, or `repro learn train --model "
        "power --benchmark ...`)"
    )


def power_dataset_from_benchmark(
    benchmark_name: str,
    n_intervals: int,
    seed: Optional[int] = None,
) -> PowerDataset:
    """Run a benchmark under the GPHT governor and extract power data.

    A managed run (rather than a pinned-frequency one) exercises the
    full operating-point range, so the dataset spans the frequency
    feature instead of collapsing it to a constant.
    """
    # Lazy imports: the machine stack is only needed by this builder.
    from repro.core.dvfs_policy import DVFSPolicy
    from repro.core.governor import PhasePredictionGovernor
    from repro.core.predictors import GPHTPredictor
    from repro.system.machine import Machine
    from repro.workloads.spec2000 import benchmark

    trace = benchmark(benchmark_name).trace(
        n_intervals=n_intervals, seed=seed
    )
    machine = Machine()
    governor = PhasePredictionGovernor(
        GPHTPredictor(), DVFSPolicy.paper_default(), record_decisions=False
    )
    run = machine.run(trace, governor)
    return power_dataset_from_run(run)
