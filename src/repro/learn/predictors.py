"""Trainable phase predictors behind the standard ``Predictor`` contract.

Both predictors split their state into two strata:

* the **trained model** — installed by ``fit`` (or ``restore_state``)
  and *kept* across :meth:`reset`: the offline evaluator resets a
  predictor before every replay, and a trained predictor must survive
  that exactly like a GPHT survives having its config;
* the **online history** — the live observation window, cleared by
  ``reset`` like any other predictor's tables.

``export_state`` carries both strata, so trained models inherit serve
checkpointing, worker-restart replay, migration and trace-replay
verification from the existing contract with zero serve-side code.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.predictors._checkpoint import (
    as_float,
    as_int,
    check_config,
    check_kind,
    int_list,
)
from repro.core.predictors.base import (
    PhaseObservation,
    PhasePredictor,
    PredictorState,
)
from repro.errors import ConfigurationError
from repro.learn.dataset import PhaseWindowDataset
from repro.learn.tree import DecisionTree

#: Phase-history padding value (real phases are 1-based).
_PAD_PHASE = 0  # repro-lint: disable=phase-id-range


class DecisionTreePhasePredictor(PhasePredictor):
    """CART-based next-phase predictor over a sliding feature window.

    Args:
        history_length: Number of phase-history features (matches the
            :class:`~repro.learn.dataset.PhaseWindowDataset` layout).

    Untrained instances fall back to last-value prediction, so a fresh
    predictor is usable (and serves exactly like ``LastValue``) until a
    model is installed by :meth:`fit` or :meth:`restore_state`.
    """

    def __init__(self, history_length: int = 4) -> None:
        if history_length < 1:
            raise ConfigurationError(
                f"history_length must be >= 1, got {history_length}"
            )
        self._history_length = history_length
        self._tree: Optional[DecisionTree] = None
        self._history: Deque[int] = deque(maxlen=history_length)
        self._mem = 0.0
        self._mem_prev = 0.0
        self._seen = 0

    @property
    def name(self) -> str:
        return f"LearnedTree_{self._history_length}"

    @property
    def history_length(self) -> int:
        """Number of phase-history feature columns."""
        return self._history_length

    @property
    def is_trained(self) -> bool:
        """Whether a model has been installed."""
        return self._tree is not None

    @property
    def tree(self) -> Optional[DecisionTree]:
        """The installed model (None while untrained)."""
        return self._tree

    def fit(
        self,
        dataset: PhaseWindowDataset,
        *,
        max_depth: int = 8,
        min_samples_leaf: int = 2,
    ) -> DecisionTree:
        """Train and install a tree from a phase-window dataset."""
        if dataset.history_length != self._history_length:
            raise ConfigurationError(
                f"dataset history_length={dataset.history_length} does "
                f"not match this predictor's {self._history_length}"
            )
        tree = DecisionTree.fit(
            dataset.features,
            dataset.labels,
            task="classification",
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
        )
        self._tree = tree
        return tree

    def observe(self, observation: PhaseObservation) -> None:
        self._history.appendleft(observation.phase)
        self._mem_prev = self._mem if self._seen else 0.0
        self._mem = observation.mem_per_uop
        self._seen += 1

    def predict(self) -> int:
        if not self._seen:
            return self.DEFAULT_PHASE
        if self._tree is None:
            # Untrained fallback: last-value.
            return self._history[0]
        row = [float(_PAD_PHASE)] * (self._history_length + 2)
        for i, phase in enumerate(self._history):
            row[i] = float(phase)
        row[self._history_length] = self._mem
        row[self._history_length + 1] = self._mem_prev
        return int(self._tree.predict_one(row))

    def reset(self) -> None:
        """Forget the online window; the trained model is kept."""
        self._history.clear()
        self._mem = 0.0
        self._mem_prev = 0.0
        self._seen = 0

    # -- checkpointing ------------------------------------------------------

    def export_state(self) -> PredictorState:
        """Lossless JSON-able snapshot: the trained tree (when any)
        plus the full online window.
        """
        return {
            "kind": "learned_tree",
            "history_length": self._history_length,
            "tree": self._tree.to_payload() if self._tree is not None else None,
            "history": list(self._history),
            "mem": self._mem,
            "mem_prev": self._mem_prev,
            "seen": self._seen,
        }

    def restore_state(self, state: PredictorState) -> None:
        check_kind(state, "learned_tree")
        check_config(state, (("history_length", self._history_length),))
        raw_tree = state.get("tree")
        tree = None if raw_tree is None else DecisionTree.from_payload(raw_tree)
        if tree is not None:
            if tree.task != "classification":
                raise ConfigurationError(
                    f"phase predictor tree must be a classifier, got "
                    f"{tree.task!r}"
                )
            if tree.n_features != self._history_length + 2:
                raise ConfigurationError(
                    f"tree expects {tree.n_features} features, predictor "
                    f"provides {self._history_length + 2}"
                )
        history = int_list(state, "history")
        if len(history) > self._history_length:
            raise ConfigurationError(
                f"checkpoint history holds {len(history)} entries, "
                f"history_length is {self._history_length}"
            )
        seen = as_int(state.get("seen"), "seen")
        if seen < 0:
            raise ConfigurationError(f"seen must be >= 0, got {seen}")
        self._tree = tree
        self._history = deque(history, maxlen=self._history_length)
        self._mem = as_float(state.get("mem"), "mem")
        self._mem_prev = as_float(state.get("mem_prev"), "mem_prev")
        self._seen = seen


class MarkovKPredictor(PhasePredictor):
    """Order-``k`` interpolated add-alpha Markov/n-gram phase predictor.

    Keeps two count stores with identical keying (context tuple, most
    recent phase first, lengths ``1..k``): a **prior** installed by
    :meth:`fit` (kept across resets) and **online** counts grown by
    ``observe``.  Prediction interpolates orders bottom-up: starting
    from the uniform distribution over the known alphabet, each
    non-empty context of increasing length refines the distribution
    with add-``alpha`` smoothing::

        p_L(s) = (count_L(s) + alpha * p_{L-1}(s)) / (total_L + alpha)

    Empty contexts are skipped (pure backoff), so unseen deep histories
    gracefully degrade to the shallow orders.  The argmax breaks ties
    toward the current phase (persistence), then the smallest phase id —
    both order-free, so count stores never depend on insertion order
    and artifacts can be canonically sorted.
    """

    def __init__(self, order: int = 3, alpha: float = 0.5) -> None:
        if order < 1:
            raise ConfigurationError(f"order must be >= 1, got {order}")
        if alpha <= 0.0:
            raise ConfigurationError(f"alpha must be > 0, got {alpha}")
        self._order = order
        self._alpha = alpha
        self._prior: Dict[Tuple[int, ...], Dict[int, int]] = {}
        self._prior_support: Tuple[int, ...] = ()
        self._counts: Dict[Tuple[int, ...], Dict[int, int]] = {}
        self._online_support: Set[int] = set()
        self._history: Deque[int] = deque(maxlen=order)

    @property
    def name(self) -> str:
        return f"MarkovK_{self._order}"

    @property
    def order(self) -> int:
        """Maximum context length ``k``."""
        return self._order

    @property
    def alpha(self) -> float:
        """Add-alpha smoothing strength."""
        return self._alpha

    @property
    def is_trained(self) -> bool:
        """Whether prior counts have been installed."""
        return bool(self._prior) or bool(self._prior_support)

    def fit(self, dataset: PhaseWindowDataset) -> None:
        """Install prior n-gram counts from a phase-window dataset.

        Each example contributes one count per context length
        ``1..min(k, history_length)``; padded (pre-stream) history
        positions terminate the context extension.
        """
        prior: Dict[Tuple[int, ...], Dict[int, int]] = {}
        support: Set[int] = set()
        history_length = dataset.history_length
        usable = min(self._order, history_length)
        for row, label_value in zip(
            dataset.features.tolist(), dataset.labels.tolist()
        ):
            label = int(label_value)
            support.add(label)
            history = [int(v) for v in row[:history_length]]
            for length in range(1, usable + 1):
                context = tuple(history[:length])
                if _PAD_PHASE in context:
                    break
                support.update(context)
                targets = prior.setdefault(context, {})
                targets[label] = targets.get(label, 0) + 1
        support.discard(_PAD_PHASE)
        self._prior = prior
        self._prior_support = tuple(sorted(support))

    def observe(self, observation: PhaseObservation) -> None:
        self._observe_phase(observation.phase)

    def predict(self) -> int:
        return self._predict_current()

    def reset(self) -> None:
        """Forget online counts and history; the prior is kept."""
        self._counts = {}
        self._online_support = set()
        self._history.clear()

    # -- scalar state machine (shared with the batch kernels) ---------------

    def _observe_phase(self, phase: int) -> None:
        history = self._history
        counts = self._counts
        for length in range(1, min(self._order, len(history)) + 1):
            context = tuple(history[i] for i in range(length))
            targets = counts.setdefault(context, {})
            targets[phase] = targets.get(phase, 0) + 1
        history.appendleft(phase)
        self._online_support.add(phase)

    def _predict_current(self) -> int:
        history = self._history
        if not history:
            return self.DEFAULT_PHASE
        support = sorted(set(self._prior_support) | self._online_support)
        if not support:
            return history[0]
        alpha = self._alpha
        prior = self._prior
        counts = self._counts
        uniform = 1.0 / len(support)
        probabilities = [uniform] * len(support)
        for length in range(1, min(self._order, len(history)) + 1):
            context = tuple(history[i] for i in range(length))
            prior_targets = prior.get(context)
            online_targets = counts.get(context)
            if prior_targets is None and online_targets is None:
                continue
            total = 0
            merged: List[int] = [0] * len(support)
            for index, symbol in enumerate(support):
                n = 0
                if prior_targets is not None:
                    n += prior_targets.get(symbol, 0)
                if online_targets is not None:
                    n += online_targets.get(symbol, 0)
                merged[index] = n
                total += n
            if total == 0:
                continue
            denominator = total + alpha
            probabilities = [
                (merged[index] + alpha * probabilities[index]) / denominator
                for index in range(len(support))
            ]
        best_index = 0
        best_probability = probabilities[0]
        for index in range(1, len(support)):
            if probabilities[index] > best_probability:
                best_probability = probabilities[index]
                best_index = index
        # Tie-break toward persistence: the current phase wins any exact
        # probability tie with the argmax (smallest tied id otherwise).
        current = history[0]
        if support[best_index] != current and current in support:
            current_index = support.index(current)
            if probabilities[current_index] == best_probability:
                best_index = current_index
        return support[best_index]

    # -- batch kernels ------------------------------------------------------

    def observe_batch(
        self, phases: Sequence[int], mem_values: Sequence[float]
    ) -> None:
        """Batch kernel: the scalar count updates without per-sample
        ``PhaseObservation`` construction or method dispatch.
        """
        observe = self._observe_phase
        for phase in phases:
            observe(phase)

    def predict_batch(
        self, phases: Sequence[int], mem_values: Sequence[float]
    ) -> List[int]:
        """Batch kernel for the fused observe/predict cycle.

        Drives the shared scalar state machine directly — bit-identical
        to the default loop by construction — while skipping the
        ``PhaseObservation`` allocation and double method dispatch per
        sample.  The scalar predictor emits no trace events, so the
        kernel is valid whether or not a tracer is bound.
        """
        observe = self._observe_phase
        predict = self._predict_current
        predictions: List[int] = []
        append = predictions.append
        for phase in phases:
            observe(phase)
            append(predict())
        return predictions

    # -- checkpointing ------------------------------------------------------

    def export_state(self) -> PredictorState:
        """Lossless JSON-able snapshot: prior and online n-gram counts
        (canonically sorted — prediction is order-free), support sets
        and the live history window.
        """
        return {
            "kind": "markov_k",
            "order": self._order,
            "alpha": self._alpha,
            "prior": _counts_payload(self._prior),
            "prior_support": list(self._prior_support),
            "counts": _counts_payload(self._counts),
            "online_support": sorted(self._online_support),
            "history": list(self._history),
        }

    def restore_state(self, state: PredictorState) -> None:
        check_kind(state, "markov_k")
        check_config(
            state, (("order", self._order), ("alpha", self._alpha))
        )
        prior = _counts_from_payload(state.get("prior"), "prior", self._order)
        counts = _counts_from_payload(
            state.get("counts"), "counts", self._order
        )
        prior_support = int_list(state, "prior_support")
        online_support = int_list(state, "online_support")
        history = int_list(state, "history")
        if len(history) > self._order:
            raise ConfigurationError(
                f"checkpoint history holds {len(history)} entries, order "
                f"is {self._order}"
            )
        self._prior = prior
        self._prior_support = tuple(sorted(prior_support))
        self._counts = counts
        self._online_support = set(online_support)
        self._history = deque(history, maxlen=self._order)


def _counts_payload(
    counts: Dict[Tuple[int, ...], Dict[int, int]]
) -> List[List[object]]:
    """Canonical (sorted) JSON form of an n-gram count store."""
    return [
        [list(context), sorted(targets.items())]
        for context, targets in sorted(counts.items())
    ]


def _counts_from_payload(
    payload: object, label: str, order: int
) -> Dict[Tuple[int, ...], Dict[int, int]]:
    """Rebuild an n-gram count store from its canonical payload."""
    if not isinstance(payload, list):
        raise ConfigurationError(f"checkpoint {label!r} must be a list")
    counts: Dict[Tuple[int, ...], Dict[int, int]] = {}
    for entry in payload:
        if (
            not isinstance(entry, (list, tuple))
            or len(entry) != 2
            or not isinstance(entry[0], (list, tuple))
            or not isinstance(entry[1], (list, tuple))
        ):
            raise ConfigurationError(
                f"malformed {label} checkpoint entry: {entry!r}"
            )
        raw_context, raw_targets = entry
        context = tuple(as_int(v, f"{label} context") for v in raw_context)
        if not 1 <= len(context) <= order:
            raise ConfigurationError(
                f"{label} context {context} has length {len(context)}, "
                f"expected [1, {order}]"
            )
        targets: Dict[int, int] = {}
        for pair in raw_targets:
            if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                raise ConfigurationError(
                    f"malformed {label} count pair: {pair!r}"
                )
            target = as_int(pair[0], f"{label} target")
            n = as_int(pair[1], f"{label} count")
            if n < 1:
                raise ConfigurationError(
                    f"{label} count must be >= 1, got {n}"
                )
            targets[target] = n
        counts[context] = targets
    return counts
