"""Counter-driven learned power model (regression-tree backed).

The paper's power model is an analytic fit; the data-driven track
(arXiv 2009.01434, 2401.01826) instead learns power directly from
performance-counter vectors.  :class:`LearnedPowerModel` fits a
deterministic regression tree over ``(upc, Mem/Uop, frequency)``
features and predicts per-interval watts.

The model implements the same ``export_state``/``restore_state``
checkpoint contract as the predictor zoo (and is covered by the same
``checkpoint-completeness`` analyzer), so trained power models are
first-class versioned artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.learn.dataset import POWER_FEATURES, PowerDataset
from repro.learn.tree import DecisionTree

#: State payload type (mirrors ``PredictorState``).
PowerModelState = Dict[str, object]


@dataclass(frozen=True)
class PowerModelEvaluation:
    """Fit quality of a learned power model on one dataset.

    Attributes:
        samples: Number of evaluated intervals.
        mae_w: Mean absolute error in watts.
        rmse_w: Root-mean-square error in watts.
        max_abs_error_w: Worst single-interval absolute error in watts.
        mean_power_w: Mean measured power of the dataset (for scale).
    """

    samples: int
    mae_w: float
    rmse_w: float
    max_abs_error_w: float
    mean_power_w: float

    def to_payload(self) -> Dict[str, object]:
        """Flat JSON-able form."""
        return {
            "samples": self.samples,
            "mae_w": self.mae_w,
            "rmse_w": self.rmse_w,
            "max_abs_error_w": self.max_abs_error_w,
            "mean_power_w": self.mean_power_w,
        }


class LearnedPowerModel:
    """Regression tree from counter vectors to measured watts.

    Args:
        max_depth: Tree depth bound used by :meth:`fit`.
        min_samples_leaf: Leaf occupancy bound used by :meth:`fit`.
    """

    def __init__(self, max_depth: int = 8, min_samples_leaf: int = 4) -> None:
        if max_depth < 1:
            raise ConfigurationError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1:
            raise ConfigurationError(
                f"min_samples_leaf must be >= 1, got {min_samples_leaf}"
            )
        self._max_depth = max_depth
        self._min_samples_leaf = min_samples_leaf
        self._tree: Optional[DecisionTree] = None

    @property
    def name(self) -> str:
        """Display name."""
        return f"LearnedPower_{self._max_depth}"

    @property
    def is_trained(self) -> bool:
        """Whether a model has been installed."""
        return self._tree is not None

    @property
    def tree(self) -> Optional[DecisionTree]:
        """The installed regression tree (None while untrained)."""
        return self._tree

    def fit(self, dataset: PowerDataset) -> DecisionTree:
        """Train and install a regression tree from a power dataset."""
        tree = DecisionTree.fit(
            dataset.features,
            dataset.power_w,
            task="regression",
            max_depth=self._max_depth,
            min_samples_leaf=self._min_samples_leaf,
        )
        self._tree = tree
        return tree

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted watts for an ``(n, 3)`` counter matrix."""
        if self._tree is None:
            raise ConfigurationError(
                "power model is untrained; call fit() or restore_state()"
            )
        result: np.ndarray = self._tree.predict(features)
        return result

    def predict_power(
        self, upc: float, mem_per_uop: float, frequency_mhz: float
    ) -> float:
        """Predicted watts for one interval's counters."""
        if self._tree is None:
            raise ConfigurationError(
                "power model is untrained; call fit() or restore_state()"
            )
        return float(
            self._tree.predict_one([upc, mem_per_uop, frequency_mhz])
        )

    def evaluate(self, dataset: PowerDataset) -> PowerModelEvaluation:
        """Score the model against a dataset's measured power."""
        predicted = self.predict(dataset.features)
        errors = np.abs(predicted - dataset.power_w)
        return PowerModelEvaluation(
            samples=len(dataset),
            mae_w=float(np.mean(errors)),
            rmse_w=float(np.sqrt(np.mean(errors * errors))),
            max_abs_error_w=float(np.max(errors)),
            mean_power_w=float(np.mean(dataset.power_w)),
        )

    # -- checkpointing ------------------------------------------------------

    def export_state(self) -> PowerModelState:
        """Lossless JSON-able snapshot: hyperparameters + the tree."""
        return {
            "kind": "learned_power",
            "max_depth": self._max_depth,
            "min_samples_leaf": self._min_samples_leaf,
            "columns": list(POWER_FEATURES),
            "tree": self._tree.to_payload() if self._tree is not None else None,
        }

    def restore_state(self, state: PowerModelState) -> None:
        """Install a model from an :meth:`export_state` payload."""
        if state.get("kind") != "learned_power":
            raise ConfigurationError(
                f"checkpoint kind {state.get('kind')!r} is not 'learned_power'"
            )
        for key, expected in (
            ("max_depth", self._max_depth),
            ("min_samples_leaf", self._min_samples_leaf),
        ):
            if state.get(key) != expected:
                raise ConfigurationError(
                    f"checkpoint {key}={state.get(key)!r} does not match "
                    f"this model's {key}={expected!r}"
                )
        if state.get("columns") != list(POWER_FEATURES):
            raise ConfigurationError(
                f"checkpoint columns {state.get('columns')!r} do not match "
                f"{list(POWER_FEATURES)}"
            )
        raw_tree = state.get("tree")
        tree = None if raw_tree is None else DecisionTree.from_payload(raw_tree)
        if tree is not None:
            if tree.task != "regression":
                raise ConfigurationError(
                    f"power model tree must be a regressor, got {tree.task!r}"
                )
            if tree.n_features != len(POWER_FEATURES):
                raise ConfigurationError(
                    f"tree expects {tree.n_features} features, power model "
                    f"provides {len(POWER_FEATURES)}"
                )
        self._tree = tree
