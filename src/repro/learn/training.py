"""Seeded, bit-reproducible trainers producing versioned artifacts.

Each trainer is a pure function of its dataset and hyperparameters:
train the model, snapshot its ``export_state`` and wrap both in a
:class:`~repro.learn.artifact.ModelArtifact` whose provenance records
*what* was trained on (dataset digest, counts, source description) but
never *when* — so the same call always yields the same bytes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.learn.artifact import ARTIFACT_VERSION, ModelArtifact
from repro.learn.dataset import PhaseWindowDataset, PowerDataset
from repro.learn.power import LearnedPowerModel
from repro.learn.predictors import DecisionTreePhasePredictor, MarkovKPredictor


def _source_meta(source: Optional[Dict[str, object]]) -> Dict[str, object]:
    if source is None:
        return {}
    for key, value in source.items():
        if value is not None and not isinstance(
            value, (str, int, float, bool)
        ):
            raise ConfigurationError(
                f"training source field {key!r} must be a JSON scalar, "
                f"got {value!r}"
            )
    return dict(source)


def train_phase_tree(
    dataset: PhaseWindowDataset,
    *,
    max_depth: int = 8,
    min_samples_leaf: int = 2,
    source: Optional[Dict[str, object]] = None,
) -> Tuple[DecisionTreePhasePredictor, ModelArtifact]:
    """Train a decision-tree phase predictor and its artifact.

    Args:
        dataset: Phase-window training examples.
        max_depth: CART depth bound.
        min_samples_leaf: CART leaf occupancy bound.
        source: Optional scalar-only provenance (e.g. benchmark name,
            trace path, generation seed) merged into the artifact's
            ``training`` block.
    """
    predictor = DecisionTreePhasePredictor(
        history_length=dataset.history_length
    )
    tree = predictor.fit(
        dataset, max_depth=max_depth, min_samples_leaf=min_samples_leaf
    )
    artifact = ModelArtifact(
        version=ARTIFACT_VERSION,
        kind="phase_tree",
        name=predictor.name,
        config={"history_length": dataset.history_length},
        state=dict(predictor.export_state()),
        training={
            "examples": len(dataset),
            "dataset_digest": dataset.digest(),
            "max_depth": max_depth,
            "min_samples_leaf": min_samples_leaf,
            "tree_depth": tree.depth,
            "tree_nodes": tree.node_count,
            "source": _source_meta(source),
        },
    )
    return predictor, artifact


def train_markov(
    dataset: PhaseWindowDataset,
    *,
    order: int = 3,
    alpha: float = 0.5,
    source: Optional[Dict[str, object]] = None,
) -> Tuple[MarkovKPredictor, ModelArtifact]:
    """Train an order-``k`` Markov phase predictor and its artifact."""
    predictor = MarkovKPredictor(order=order, alpha=alpha)
    predictor.fit(dataset)
    artifact = ModelArtifact(
        version=ARTIFACT_VERSION,
        kind="markov_k",
        name=predictor.name,
        config={"order": order, "alpha": alpha},
        state=dict(predictor.export_state()),
        training={
            "examples": len(dataset),
            "dataset_digest": dataset.digest(),
            "order": order,
            "alpha": alpha,
            "source": _source_meta(source),
        },
    )
    return predictor, artifact


def train_power_model(
    dataset: PowerDataset,
    *,
    max_depth: int = 8,
    min_samples_leaf: int = 4,
    source: Optional[Dict[str, object]] = None,
) -> Tuple[LearnedPowerModel, ModelArtifact]:
    """Train a counter-driven power model and its artifact.

    The artifact's ``training`` block includes the model's fit-set
    evaluation (MAE/RMSE) so downstream eval runs have a recorded
    baseline.
    """
    model = LearnedPowerModel(
        max_depth=max_depth, min_samples_leaf=min_samples_leaf
    )
    tree = model.fit(dataset)
    fit_quality = model.evaluate(dataset)
    artifact = ModelArtifact(
        version=ARTIFACT_VERSION,
        kind="power_tree",
        name=model.name,
        config={
            "max_depth": max_depth,
            "min_samples_leaf": min_samples_leaf,
        },
        state=dict(model.export_state()),
        training={
            "examples": len(dataset),
            "dataset_digest": dataset.digest(),
            "max_depth": max_depth,
            "min_samples_leaf": min_samples_leaf,
            "tree_depth": tree.depth,
            "tree_nodes": tree.node_count,
            "fit": fit_quality.to_payload(),
            "source": _source_meta(source),
        },
    )
    return model, artifact
