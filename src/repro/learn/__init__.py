"""repro.learn — trainable phase predictors and a learned power model.

Everything here is deterministic, pure-Python/NumPy and trained from
either recorded :mod:`repro.obs` traces or live workload generators.
Trained models implement the predictor zoo's ``export_state`` /
``restore_state`` checkpoint contract, so serve checkpointing, worker
restart, migration and replay verification work on them unchanged.

See ``docs/learning.md`` for the full tour.
"""

from repro.learn.artifact import (
    ARTIFACT_KINDS,
    ARTIFACT_VERSION,
    LearnedModel,
    ModelArtifact,
    build_model,
    session_config_params,
)
from repro.learn.compare import (
    DEFAULT_COMPARE_BENCHMARKS,
    compare_models,
    comparison_specs,
)
from repro.learn.dataset import (
    DATASET_VERSION,
    POWER_FEATURES,
    PhaseWindowDataset,
    PowerDataset,
    phase_dataset_from_benchmark,
    phase_dataset_from_events,
    phase_dataset_from_series,
    power_dataset_from_benchmark,
    power_dataset_from_events,
    power_dataset_from_run,
)
from repro.learn.power import LearnedPowerModel, PowerModelEvaluation
from repro.learn.predictors import DecisionTreePhasePredictor, MarkovKPredictor
from repro.learn.training import (
    train_markov,
    train_phase_tree,
    train_power_model,
)
from repro.learn.tree import DecisionTree

__all__ = [
    "ARTIFACT_KINDS",
    "ARTIFACT_VERSION",
    "DATASET_VERSION",
    "DEFAULT_COMPARE_BENCHMARKS",
    "DecisionTree",
    "DecisionTreePhasePredictor",
    "LearnedModel",
    "LearnedPowerModel",
    "MarkovKPredictor",
    "ModelArtifact",
    "POWER_FEATURES",
    "PhaseWindowDataset",
    "PowerDataset",
    "PowerModelEvaluation",
    "build_model",
    "compare_models",
    "comparison_specs",
    "phase_dataset_from_benchmark",
    "phase_dataset_from_events",
    "phase_dataset_from_series",
    "power_dataset_from_benchmark",
    "power_dataset_from_events",
    "power_dataset_from_run",
    "session_config_params",
    "train_markov",
    "train_phase_tree",
    "train_power_model",
]
