"""Versioned, byte-reproducible model artifacts.

An artifact is the durable form of a trained model: a canonical JSON
document carrying the format version, the model kind, its construction
config, its ``export_state`` payload and training provenance.  Two
training runs with identical inputs write **byte-identical** artifact
files — artifacts never embed wall-clock time, hostnames or any other
non-reproducible field; provenance is dataset digests and seeds only.

``build_model`` reconstructs the live object: construct from ``config``,
then ``restore_state(state)`` — the exact path serve checkpoints take,
so an artifact *is* a valid predictor checkpoint with metadata around
it.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass
from typing import Dict, Union

from repro.errors import ConfigurationError
from repro.learn.power import LearnedPowerModel
from repro.learn.predictors import DecisionTreePhasePredictor, MarkovKPredictor

#: Artifact format version.
ARTIFACT_VERSION = 1

#: Known artifact kinds.
ARTIFACT_KINDS = ("phase_tree", "markov_k", "power_tree")

#: Any model an artifact can carry.
LearnedModel = Union[
    DecisionTreePhasePredictor, MarkovKPredictor, LearnedPowerModel
]


@dataclass(frozen=True)
class ModelArtifact:
    """One trained model, serialisable to canonical JSON.

    Attributes:
        version: Artifact format version (:data:`ARTIFACT_VERSION`).
        kind: One of :data:`ARTIFACT_KINDS`.
        name: The model's display name.
        config: Constructor arguments for :func:`build_model`.
        state: The model's ``export_state`` payload.
        training: Reproducible provenance (dataset digest, seeds,
            hyperparameters, example counts) — never wall-clock data.
    """

    version: int
    kind: str
    name: str
    config: Dict[str, object]
    state: Dict[str, object]
    training: Dict[str, object]

    def __post_init__(self) -> None:
        if self.version != ARTIFACT_VERSION:
            raise ConfigurationError(
                f"unsupported artifact version {self.version!r} "
                f"(supported: {ARTIFACT_VERSION})"
            )
        if self.kind not in ARTIFACT_KINDS:
            raise ConfigurationError(
                f"artifact kind must be one of {ARTIFACT_KINDS}, got "
                f"{self.kind!r}"
            )

    def to_payload(self) -> Dict[str, object]:
        """Plain JSON-able mapping."""
        return {
            "version": self.version,
            "kind": self.kind,
            "name": self.name,
            "config": self.config,
            "state": self.state,
            "training": self.training,
        }

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, 2-space indent, one trailing
        newline.  The byte-reproducibility contract hangs off this
        exact formatting — never loosen it.
        """
        return (
            json.dumps(self.to_payload(), sort_keys=True, indent=2) + "\n"
        )

    def digest(self) -> str:
        """sha256 of the canonical JSON bytes."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def save(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the canonical JSON to ``path``."""
        target = pathlib.Path(path)
        target.write_text(self.to_json(), encoding="utf-8")
        return target

    @classmethod
    def from_payload(cls, payload: object) -> "ModelArtifact":
        """Rebuild an artifact from a parsed JSON mapping."""
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"artifact payload must be a dict, got {payload!r}"
            )
        version = payload.get("version")
        if isinstance(version, bool) or not isinstance(version, int):
            raise ConfigurationError(
                f"artifact version must be an int, got {version!r}"
            )
        kind = payload.get("kind")
        name = payload.get("name")
        if not isinstance(kind, str) or not isinstance(name, str):
            raise ConfigurationError(
                "artifact 'kind' and 'name' must be strings"
            )
        for field in ("config", "state", "training"):
            if not isinstance(payload.get(field), dict):
                raise ConfigurationError(
                    f"artifact {field!r} must be a dict, got "
                    f"{payload.get(field)!r}"
                )
        return cls(
            version=version,
            kind=kind,
            name=name,
            config=dict(payload["config"]),  # type: ignore[call-overload]
            state=dict(payload["state"]),  # type: ignore[call-overload]
            training=dict(payload["training"]),  # type: ignore[call-overload]
        )

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "ModelArtifact":
        """Read and validate an artifact file."""
        source = pathlib.Path(path)
        try:
            text = source.read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read artifact {source}: {exc}"
            ) from None
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(
                f"artifact {source} is not valid JSON: {exc}"
            ) from None
        return cls.from_payload(payload)


def _config_int(config: Dict[str, object], key: str) -> int:
    value = config.get(key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(
            f"artifact config {key!r} must be an int, got {value!r}"
        )
    return value


def _config_float(config: Dict[str, object], key: str) -> float:
    value = config.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"artifact config {key!r} must be a number, got {value!r}"
        )
    return float(value)


def build_model(artifact: ModelArtifact) -> LearnedModel:
    """Reconstruct the live trained model from an artifact.

    Construction mirrors serve's checkpoint restore exactly: build from
    ``config``, then ``restore_state(state)``.
    """
    if artifact.kind == "phase_tree":
        predictor = DecisionTreePhasePredictor(
            history_length=_config_int(artifact.config, "history_length")
        )
        predictor.restore_state(artifact.state)
        return predictor
    if artifact.kind == "markov_k":
        markov = MarkovKPredictor(
            order=_config_int(artifact.config, "order"),
            alpha=_config_float(artifact.config, "alpha"),
        )
        markov.restore_state(artifact.state)
        return markov
    model = LearnedPowerModel(
        max_depth=_config_int(artifact.config, "max_depth"),
        min_samples_leaf=_config_int(artifact.config, "min_samples_leaf"),
    )
    model.restore_state(artifact.state)
    return model


def session_config_params(artifact: ModelArtifact) -> Dict[str, object]:
    """The ``repro.serve`` session parameters that host this model.

    Returned as a plain mapping (not a ``SessionConfig``) so the learn
    layer stays independent of serve; the CLI feeds it into
    ``SessionConfig`` when wiring ``serve replay --model``.
    """
    if artifact.kind == "phase_tree":
        return {
            "governor": "learned_tree",
            "history_length": _config_int(artifact.config, "history_length"),
        }
    if artifact.kind == "markov_k":
        return {
            "governor": "markov",
            "markov_order": _config_int(artifact.config, "order"),
            "markov_alpha": _config_float(artifact.config, "alpha"),
        }
    raise ConfigurationError(
        f"artifact kind {artifact.kind!r} is not a phase predictor; only "
        "phase_tree and markov_k artifacts can serve sessions"
    )
