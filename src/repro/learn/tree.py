"""From-scratch deterministic CART trees (classification + regression).

The data-driven track (ROADMAP item 3, after arXiv 2009.01434 and
2401.01826) needs trees that are **bit-reproducible**: training the same
dataset twice — in any process, at any parallelism — must produce the
same tree, and serialising it must round-trip losslessly so trained
predictors can ride the serve checkpoint/restore machinery.

Determinism is engineered, not assumed:

* split search scans features in ascending index order and candidate
  thresholds in ascending value order; ties on impurity gain keep the
  *first* candidate, so the chosen split is a pure function of the
  dataset bytes;
* all impurity arithmetic runs in fixed evaluation order over float64
  prefix sums — the same numbers every run;
* nodes are emitted in preorder (left subtree first), so equal trees
  serialise to equal payloads;
* leaf values break frequency ties toward the smallest class label
  (classification) and use the plain float64 mean (regression).

No randomness is used anywhere: sub-sampling, feature bagging and other
stochastic variance tricks are deliberately out of scope — a phase
predictor that cannot be replayed bit-for-bit cannot be verified by
``repro serve replay``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError

#: Impurity-gain floor below which a split is considered pure noise.
MIN_GAIN = 1e-12

#: Supported learning tasks.
TREE_TASKS = ("classification", "regression")

#: A leaf's sentinel feature index.
LEAF = -1

#: One serialised tree: JSON-able mapping.
TreePayload = Dict[str, object]


class DecisionTree:
    """An immutable, flat-array CART tree.

    Nodes live in five parallel lists indexed by node id (0 is the
    root, ids are preorder): ``feature`` (split feature, ``LEAF`` for
    leaves), ``threshold`` (go left when ``x[feature] <= threshold``),
    ``left``/``right`` (child ids, ``-1`` for leaves) and ``value``
    (leaf prediction: an int class label for classification, a float
    for regression; internal nodes carry their would-be leaf value so
    truncated traversals remain meaningful).
    """

    def __init__(
        self,
        task: str,
        n_features: int,
        feature: Sequence[int],
        threshold: Sequence[float],
        left: Sequence[int],
        right: Sequence[int],
        value: Sequence[Union[int, float]],
    ) -> None:
        if task not in TREE_TASKS:
            raise ConfigurationError(
                f"task must be one of {TREE_TASKS}, got {task!r}"
            )
        if n_features < 1:
            raise ConfigurationError(
                f"n_features must be >= 1, got {n_features}"
            )
        n = len(feature)
        if n == 0:
            raise ConfigurationError("a tree needs at least one node")
        for name, seq in (
            ("threshold", threshold),
            ("left", left),
            ("right", right),
            ("value", value),
        ):
            if len(seq) != n:
                raise ConfigurationError(
                    f"node array {name!r} has {len(seq)} entries, "
                    f"expected {n}"
                )
        self._task = task
        self._n_features = n_features
        self._feature = tuple(feature)
        self._threshold = tuple(threshold)
        self._left = tuple(left)
        self._right = tuple(right)
        self._value = tuple(value)
        self._validate_structure()

    def _validate_structure(self) -> None:
        n = len(self._feature)
        for i in range(n):
            f = self._feature[i]
            if f == LEAF:
                if self._left[i] != -1 or self._right[i] != -1:
                    raise ConfigurationError(
                        f"leaf node {i} must have children -1"
                    )
                continue
            if not 0 <= f < self._n_features:
                raise ConfigurationError(
                    f"node {i} splits on feature {f}, expected "
                    f"[0, {self._n_features})"
                )
            for child in (self._left[i], self._right[i]):
                # Preorder emission guarantees children follow their
                # parent; enforcing it also rules out cycles.
                if not i < child < n:
                    raise ConfigurationError(
                        f"node {i} has out-of-order child {child}"
                    )
            if self._left[i] == self._right[i]:
                raise ConfigurationError(
                    f"node {i} has identical children"
                )
        if self._task == "classification":
            for i, v in enumerate(self._value):
                if isinstance(v, bool) or not isinstance(v, int):
                    raise ConfigurationError(
                        f"classification node {i} value must be an int, "
                        f"got {v!r}"
                    )

    # -- properties ---------------------------------------------------------

    @property
    def task(self) -> str:
        """``"classification"`` or ``"regression"``."""
        return self._task

    @property
    def n_features(self) -> int:
        """Number of input features the tree was trained on."""
        return self._n_features

    @property
    def node_count(self) -> int:
        """Total number of nodes (internal + leaves)."""
        return len(self._feature)

    @property
    def leaf_count(self) -> int:
        """Number of leaves."""
        return sum(1 for f in self._feature if f == LEAF)

    @property
    def depth(self) -> int:
        """Maximum number of internal tests on any root-to-leaf path.

        This is the tree's worst-case lookup cost per prediction — the
        ``overhead_units`` the accuracy-vs-overhead benchmark reports.
        """
        depths = [0] * len(self._feature)
        deepest = 0
        for i, f in enumerate(self._feature):
            d = depths[i]
            if f == LEAF:
                if d > deepest:
                    deepest = d
                continue
            depths[self._left[i]] = d + 1
            depths[self._right[i]] = d + 1
            if d + 1 > deepest:
                deepest = d + 1
        return deepest

    # -- prediction ---------------------------------------------------------

    def predict_one(self, row: Sequence[float]) -> Union[int, float]:
        """Predict a single feature row (pure, no state)."""
        if len(row) != self._n_features:
            raise ConfigurationError(
                f"row has {len(row)} features, tree expects "
                f"{self._n_features}"
            )
        i = 0
        while self._feature[i] != LEAF:
            if row[self._feature[i]] <= self._threshold[i]:
                i = self._left[i]
            else:
                i = self._right[i]
        return self._value[i]

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict every row of an ``(n, n_features)`` matrix.

        Walks all rows level-by-level with boolean masks, so the cost
        is ``O(depth)`` numpy passes rather than ``O(n)`` Python loops.
        Output dtype: int64 for classification, float64 for regression.
        """
        matrix = np.asarray(features, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self._n_features:
            raise ConfigurationError(
                f"feature matrix must be (n, {self._n_features}), got "
                f"{matrix.shape}"
            )
        n = matrix.shape[0]
        node = np.zeros(n, dtype=np.int64)
        feature = np.asarray(self._feature, dtype=np.int64)
        threshold = np.asarray(self._threshold, dtype=np.float64)
        left = np.asarray(self._left, dtype=np.int64)
        right = np.asarray(self._right, dtype=np.int64)
        active = feature[node] != LEAF
        while active.any():
            idx = node[active]
            rows = np.nonzero(active)[0]
            go_left = (
                matrix[rows, feature[idx]] <= threshold[idx]
            )
            node[rows] = np.where(go_left, left[idx], right[idx])
            active = feature[node] != LEAF
        if self._task == "classification":
            values = np.asarray(self._value, dtype=np.int64)
        else:
            values = np.asarray(self._value, dtype=np.float64)
        result: np.ndarray = values[node]
        return result

    # -- serialisation ------------------------------------------------------

    def to_payload(self) -> TreePayload:
        """Lossless JSON-able form (floats round-trip via ``repr``)."""
        return {
            "version": 1,
            "task": self._task,
            "n_features": self._n_features,
            "nodes": [
                [
                    self._feature[i],
                    self._threshold[i],
                    self._left[i],
                    self._right[i],
                    self._value[i],
                ]
                for i in range(len(self._feature))
            ],
        }

    @classmethod
    def from_payload(cls, payload: object) -> "DecisionTree":
        """Rebuild a tree from :meth:`to_payload` (full validation)."""
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"tree payload must be a dict, got {payload!r}"
            )
        if payload.get("version") != 1:
            raise ConfigurationError(
                f"unsupported tree payload version {payload.get('version')!r}"
            )
        task = payload.get("task")
        if not isinstance(task, str):
            raise ConfigurationError(f"tree task must be a str, got {task!r}")
        n_features = payload.get("n_features")
        if isinstance(n_features, bool) or not isinstance(n_features, int):
            raise ConfigurationError(
                f"tree n_features must be an int, got {n_features!r}"
            )
        nodes = payload.get("nodes")
        if not isinstance(nodes, list) or not nodes:
            raise ConfigurationError("tree 'nodes' must be a non-empty list")
        feature: List[int] = []
        threshold: List[float] = []
        left: List[int] = []
        right: List[int] = []
        value: List[Union[int, float]] = []
        for i, node in enumerate(nodes):
            if not isinstance(node, (list, tuple)) or len(node) != 5:
                raise ConfigurationError(f"malformed tree node {i}: {node!r}")
            f, thr, lo, hi, val = node
            for label, v in (("feature", f), ("left", lo), ("right", hi)):
                if isinstance(v, bool) or not isinstance(v, int):
                    raise ConfigurationError(
                        f"node {i} {label} must be an int, got {v!r}"
                    )
            if isinstance(thr, bool) or not isinstance(thr, (int, float)):
                raise ConfigurationError(
                    f"node {i} threshold must be a number, got {thr!r}"
                )
            if isinstance(val, bool) or not isinstance(val, (int, float)):
                raise ConfigurationError(
                    f"node {i} value must be a number, got {val!r}"
                )
            feature.append(f)
            threshold.append(float(thr))
            left.append(lo)
            right.append(hi)
            value.append(val)
        return cls(task, n_features, feature, threshold, left, right, value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DecisionTree):
            return NotImplemented
        return self.to_payload() == other.to_payload()

    def __repr__(self) -> str:
        return (
            f"DecisionTree(task={self._task!r}, nodes={self.node_count}, "
            f"depth={self.depth})"
        )

    # -- training -----------------------------------------------------------

    @classmethod
    def fit(
        cls,
        features: np.ndarray,
        targets: np.ndarray,
        *,
        task: str,
        max_depth: int = 8,
        min_samples_leaf: int = 2,
    ) -> "DecisionTree":
        """Train a tree with the exhaustive deterministic CART search.

        Args:
            features: ``(n, m)`` float matrix of training rows.
            targets: ``(n,)`` int class labels (classification) or
                float values (regression).
            task: ``"classification"`` or ``"regression"``.
            max_depth: Maximum internal tests on any path (>= 1).
            min_samples_leaf: Minimum training rows per leaf (>= 1).
        """
        if task not in TREE_TASKS:
            raise ConfigurationError(
                f"task must be one of {TREE_TASKS}, got {task!r}"
            )
        if max_depth < 1:
            raise ConfigurationError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1:
            raise ConfigurationError(
                f"min_samples_leaf must be >= 1, got {min_samples_leaf}"
            )
        matrix = np.asarray(features, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] == 0 or matrix.shape[1] == 0:
            raise ConfigurationError(
                f"features must be a non-empty (n, m) matrix, got shape "
                f"{matrix.shape}"
            )
        if task == "classification":
            y = np.asarray(targets, dtype=np.int64)
        else:
            y = np.asarray(targets, dtype=np.float64)
        if y.ndim != 1 or y.shape[0] != matrix.shape[0]:
            raise ConfigurationError(
                f"targets must be ({matrix.shape[0]},), got shape {y.shape}"
            )
        builder = _TreeBuilder(matrix, y, task, max_depth, min_samples_leaf)
        builder.build()
        return cls(
            task,
            matrix.shape[1],
            builder.feature,
            builder.threshold,
            builder.left,
            builder.right,
            builder.value,
        )


class _TreeBuilder:
    """Grows the flat node arrays in deterministic preorder."""

    def __init__(
        self,
        matrix: np.ndarray,
        targets: np.ndarray,
        task: str,
        max_depth: int,
        min_samples_leaf: int,
    ) -> None:
        self._matrix = matrix
        self._targets = targets
        self._task = task
        self._max_depth = max_depth
        self._min_leaf = min_samples_leaf
        self.feature: List[int] = []
        self.threshold: List[float] = []
        self.left: List[int] = []
        self.right: List[int] = []
        self.value: List[Union[int, float]] = []

    def build(self) -> None:
        """Grow the whole tree from the root (recursive preorder)."""
        self._grow(np.arange(self._matrix.shape[0], dtype=np.int64), 0)

    def _leaf_value(self, rows: np.ndarray) -> Union[int, float]:
        y = self._targets[rows]
        if self._task == "regression":
            return float(np.mean(y))
        # Majority class; np.unique sorts labels ascending and argmax
        # keeps the first maximum, so ties break toward the smallest.
        classes, counts = np.unique(y, return_counts=True)
        return int(classes[int(np.argmax(counts))])

    def _grow(self, rows: np.ndarray, depth: int) -> int:
        node_id = len(self.feature)
        self.feature.append(LEAF)
        self.threshold.append(0.0)
        self.left.append(-1)
        self.right.append(-1)
        self.value.append(self._leaf_value(rows))
        if depth >= self._max_depth or rows.shape[0] < 2 * self._min_leaf:
            return node_id
        split = self._best_split(rows)
        if split is None:
            return node_id
        feature_index, threshold, left_rows, right_rows = split
        self.feature[node_id] = feature_index
        self.threshold[node_id] = threshold
        self.left[node_id] = self._grow(left_rows, depth + 1)
        self.right[node_id] = self._grow(right_rows, depth + 1)
        return node_id

    def _best_split(
        self, rows: np.ndarray
    ) -> Optional[Tuple[int, float, np.ndarray, np.ndarray]]:
        """The best (feature, threshold) split of ``rows``, or None.

        Scans features ascending; within a feature, candidate
        thresholds are midpoints between consecutive distinct sorted
        values.  ``np.argmin`` keeps the first minimum and cross-feature
        comparison is strict, so ties resolve to the lowest (feature,
        threshold) pair — the determinism anchor of the whole trainer.
        """
        matrix = self._matrix[rows]
        y = self._targets[rows]
        n = rows.shape[0]
        if self._task == "classification":
            classes, y_index = np.unique(y, return_inverse=True)
            if classes.shape[0] < 2:
                return None
            one_hot = np.zeros((n, classes.shape[0]), dtype=np.float64)
            one_hot[np.arange(n), y_index] = 1.0
            parent_counts = one_hot.sum(axis=0)
            parent_cost = float(n - (parent_counts**2).sum() / n)
        else:
            parent_cost = float(np.sum(y * y) - np.sum(y) ** 2 / n)
        best_gain = MIN_GAIN
        best: Optional[Tuple[int, float, np.ndarray]] = None
        for j in range(matrix.shape[1]):
            column = matrix[:, j]
            order = np.argsort(column, kind="stable")
            sorted_values = column[order]
            boundaries = np.nonzero(sorted_values[1:] > sorted_values[:-1])[0]
            if boundaries.shape[0] == 0:
                continue
            left_n = (boundaries + 1).astype(np.float64)
            right_n = n - left_n
            valid = (left_n >= self._min_leaf) & (right_n >= self._min_leaf)
            if not valid.any():
                continue
            if self._task == "classification":
                cumulative = np.cumsum(one_hot[order], axis=0)
                left_counts = cumulative[boundaries]
                right_counts = parent_counts[np.newaxis, :] - left_counts
                cost = (
                    left_n
                    - (left_counts**2).sum(axis=1) / left_n
                    + right_n
                    - (right_counts**2).sum(axis=1) / right_n
                )
            else:
                sorted_y = y[order]
                cum_sum = np.cumsum(sorted_y)
                cum_sq = np.cumsum(sorted_y * sorted_y)
                left_sum = cum_sum[boundaries]
                left_sq = cum_sq[boundaries]
                right_sum = cum_sum[-1] - left_sum
                right_sq = cum_sq[-1] - left_sq
                cost = (
                    left_sq
                    - left_sum * left_sum / left_n
                    + right_sq
                    - right_sum * right_sum / right_n
                )
            cost = np.where(valid, cost, np.inf)
            k = int(np.argmin(cost))
            gain = parent_cost - float(cost[k])
            if gain > best_gain:
                threshold = float(
                    (sorted_values[boundaries[k]] + sorted_values[boundaries[k] + 1])
                    / 2.0
                )
                best_gain = gain
                best = (j, threshold, column)
        if best is None:
            return None
        feature_index, threshold, column = best
        go_left = column <= threshold
        return (
            feature_index,
            threshold,
            rows[go_left],
            rows[~go_left],
        )
