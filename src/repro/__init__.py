"""repro — reproduction of Isci, Contreras & Martonosi (MICRO 2006),
"Live, Runtime Phase Monitoring and Prediction on Real Systems with
Application to Dynamic Power Management".

The package provides:

* :mod:`repro.core` — the paper's contribution: ``Mem/Uop`` phase
  classification, the Global Phase History Table (GPHT) predictor with
  its statistical baselines, phase-to-DVFS policies, and governors;
* :mod:`repro.cpu`, :mod:`repro.pmc`, :mod:`repro.power` — the simulated
  Pentium-M platform: SpeedStep operating points, analytic timing,
  performance counters with a PMI, the CMOS power model and the DAQ
  measurement path;
* :mod:`repro.workloads` — synthetic SPEC2000 benchmark behaviours and
  the IPCxMEM exploration suite;
* :mod:`repro.system` — the wired-up machine, kernel-module analogue,
  and experiment harnesses;
* :mod:`repro.analysis` — predictor evaluation and reporting helpers;
* :mod:`repro.learn` — trainable phase predictors and a counter-driven
  learned power model, trained from recorded traces or live workloads.

Quickstart::

    from repro import GPHTPredictor, Machine, PhasePredictionGovernor
    from repro.workloads import benchmark

    machine = Machine()
    trace = benchmark("applu_in").trace(n_intervals=200)
    governor = PhasePredictionGovernor(GPHTPredictor(8, 128))
    result = machine.run(trace, governor)
    print(result.bips, result.average_power_w, result.edp)

Everything in ``__all__`` is the package's stable public surface — see
``docs/api.md`` for the compatibility guarantees.  The heavier layers
(serving sessions, the execution engine, batch evaluation) resolve
lazily on first attribute access, so ``import repro`` stays cheap.
"""

import importlib

from repro.core import (
    DVFSPolicy,
    FixedWindowPredictor,
    Governor,
    GPHTPredictor,
    IntervalCounters,
    LastValuePredictor,
    OraclePredictor,
    PhaseObservation,
    PhasePredictionGovernor,
    PhasePredictor,
    PhaseTable,
    ReactiveGovernor,
    StaticGovernor,
    ThermalManagedGovernor,
    VariableWindowPredictor,
    derive_bounded_policy,
    derive_objective_policy,
    derive_power_capped_policy,
    paper_predictor_suite,
)
from repro.cpu import OperatingPoint, SpeedStepTable, TimingModel
from repro.errors import ConfigurationError, ReproError, SimulationError
from repro.power import DataAcquisitionSystem, LoggingMachine, PowerModel, ThermalModel
from repro.system import (
    ComparisonMetrics,
    Machine,
    RunResult,
    run_comparison,
    run_comparison_suite,
    run_suite,
)
from repro.workloads import SegmentSpec, WorkloadTrace, benchmark

__version__ = "1.0.0"

#: Heavy layers resolved on first attribute access (PEP 562), so that
#: ``import repro`` does not pay for the serving stack or the execution
#: engine.  These names are as stable as the eager ones above.
_LAZY_EXPORTS = {
    # evaluation (scalar and batch fast path)
    "PredictionResult": "repro.analysis",
    "evaluate_predictor": "repro.analysis",
    "evaluate_predictor_batch": "repro.analysis",
    # execution engine
    "ExecutionEngine": "repro.exec",
    "ExperimentSpec": "repro.exec",
    "make_engine": "repro.exec",
    # serving sessions
    "PhaseSession": "repro.serve",
    "SessionConfig": "repro.serve",
    "SampleOutcome": "repro.serve",
    "BatchOutcomes": "repro.serve",
    # learned models (see docs/learning.md)
    "DecisionTree": "repro.learn",
    "DecisionTreePhasePredictor": "repro.learn",
    "MarkovKPredictor": "repro.learn",
    "LearnedPowerModel": "repro.learn",
    "ModelArtifact": "repro.learn",
    "PhaseWindowDataset": "repro.learn",
    "PowerDataset": "repro.learn",
    "build_model": "repro.learn",
    "compare_models": "repro.learn",
    "train_markov": "repro.learn",
    "train_phase_tree": "repro.learn",
    "train_power_model": "repro.learn",
}


def __getattr__(name):
    """Resolve the lazily exported layers on demand (PEP 562)."""
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value


__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    # core
    "PhaseTable",
    "PhasePredictor",
    "PhaseObservation",
    "LastValuePredictor",
    "FixedWindowPredictor",
    "VariableWindowPredictor",
    "GPHTPredictor",
    "OraclePredictor",
    "paper_predictor_suite",
    "DVFSPolicy",
    "derive_bounded_policy",
    "derive_objective_policy",
    "derive_power_capped_policy",
    "Governor",
    "IntervalCounters",
    "PhasePredictionGovernor",
    "ReactiveGovernor",
    "StaticGovernor",
    "ThermalManagedGovernor",
    # platform
    "OperatingPoint",
    "SpeedStepTable",
    "TimingModel",
    "PowerModel",
    "ThermalModel",
    "DataAcquisitionSystem",
    "LoggingMachine",
    # workloads
    "SegmentSpec",
    "WorkloadTrace",
    "benchmark",
    # system
    "Machine",
    "RunResult",
    "ComparisonMetrics",
    "run_comparison",
    "run_suite",
    "run_comparison_suite",
] + list(_LAZY_EXPORTS)
