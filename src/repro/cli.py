"""Command-line interface to the reproduction.

Exposes the common experiments without writing Python::

    python -m repro list                      # benchmark registry
    python -m repro run applu_in              # baseline vs managed run
    python -m repro run mcf_inp --governor reactive --intervals 500
    python -m repro run applu_in --policy bounded --json
    python -m repro accuracy applu_in equake_in
    python -m repro quadrants
    python -m repro lint src/ --format json   # domain static analysis

Every command prints aligned text; ``run --json`` and ``run --csv`` emit
machine-readable exports instead.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.accuracy import evaluate_predictor
from repro.analysis.characterize import characterization_rows, characterize
from repro.analysis.reporting import format_percent, format_table
from repro.analysis.witnesses import spec_phase_witnesses
from repro.core.dvfs_policy import DVFSPolicy, derive_bounded_policy
from repro.core.governor import (
    Governor,
    PhasePredictionGovernor,
    ReactiveGovernor,
    StaticGovernor,
)
from repro.core.objectives import derive_objective_policy
from repro.core.predictors import paper_predictor_suite
from repro.core.predictors.gpht import GPHTPredictor
from repro.errors import ReproError
from repro.system.export import run_to_csv, run_to_json
from repro.system.machine import Machine
from repro.system.metrics import ComparisonMetrics
from repro.workloads.quadrants import place_all
from repro.workloads.spec2000 import (
    SPEC2000_BENCHMARKS,
    benchmark,
    benchmark_names,
)

#: Policies constructible by name from the command line.
POLICY_BUILDERS = {
    "table2": lambda: DVFSPolicy.paper_default(),
    "bounded": lambda: derive_bounded_policy(
        0.05, witnesses_by_phase=spec_phase_witnesses()
    ),
    "energy": lambda: derive_objective_policy("energy"),
    "edp": lambda: derive_objective_policy("edp"),
    "ed2p": lambda: derive_objective_policy("ed2p"),
}


def _build_governor(name: str, policy: DVFSPolicy) -> Governor:
    if name == "gpht":
        return PhasePredictionGovernor(GPHTPredictor(8, 128), policy)
    if name == "reactive":
        return ReactiveGovernor(policy)
    raise ReproError(f"unknown governor {name!r}")


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = []
    for name in benchmark_names():
        spec = SPEC2000_BENCHMARKS[name]
        rows.append((name, spec.description))
    print(
        format_table(
            ["benchmark", "description"],
            rows,
            title="SPEC2000 synthetic benchmark registry (Figure 4 order)",
        )
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = benchmark(args.benchmark)
    machine = Machine()
    trace = spec.trace(n_intervals=args.intervals)
    policy = POLICY_BUILDERS[args.policy]()
    governor = _build_governor(args.governor, policy)

    baseline = machine.run(trace, StaticGovernor(machine.speedstep.fastest))
    managed = machine.run(trace, governor)

    if args.json:
        print(run_to_json(managed))
        return 0
    if args.csv:
        print(run_to_csv(managed), end="")
        return 0

    comparison = ComparisonMetrics(baseline=baseline, managed=managed)
    rows = [
        ("governor", managed.governor_name),
        ("policy", policy.name),
        ("intervals", str(len(managed.intervals))),
        ("baseline power", f"{baseline.average_power_w:.2f} W"),
        ("managed power", f"{managed.average_power_w:.2f} W"),
        ("baseline BIPS", f"{baseline.bips:.3f}"),
        ("managed BIPS", f"{managed.bips:.3f}"),
        ("prediction accuracy", format_percent(managed.prediction_accuracy())),
        ("DVFS transitions", str(managed.transition_count)),
        ("power savings", format_percent(comparison.power_savings)),
        ("energy savings", format_percent(comparison.energy_savings)),
        (
            "performance degradation",
            format_percent(comparison.performance_degradation),
        ),
        ("EDP improvement", format_percent(comparison.edp_improvement)),
    ]
    print(
        format_table(
            ["metric", "value"], rows, title=f"run: {args.benchmark}"
        )
    )
    return 0


def _cmd_accuracy(args: argparse.Namespace) -> int:
    names = args.benchmarks or list(benchmark_names())
    suite = paper_predictor_suite()
    columns = [p.name for p in suite]
    rows = []
    for name in names:
        series = benchmark(name).mem_series(args.intervals)
        accuracies = []
        for predictor in paper_predictor_suite():
            result = evaluate_predictor(predictor, series)
            accuracies.append(round(result.accuracy * 100, 1))
        rows.append([name] + accuracies)
    print(
        format_table(
            ["benchmark"] + columns,
            rows,
            title=f"prediction accuracy (%) over {args.intervals} intervals",
        )
    )
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    for name in args.benchmarks:
        result = characterize(benchmark(name), n_intervals=args.intervals)
        print(
            format_table(
                ["property", "value"],
                characterization_rows(result),
                title=f"characterisation: {name}",
            )
        )
        print()
    return 0


def _cmd_export_trace(args: argparse.Namespace) -> int:
    from repro.workloads.serialization import trace_to_json

    trace = benchmark(args.benchmark).trace(n_intervals=args.intervals)
    print(trace_to_json(trace))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.paper_report import measure_claims, render_report

    claims = measure_claims(
        n_accuracy=args.accuracy_intervals,
        n_intervals=args.intervals,
    )
    print(render_report(claims))
    return 0 if all(claim.holds for claim in claims) else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools.lint import run_lint
    from repro.devtools.lint.cli import list_rules_text

    if args.list_rules:
        print(list_rules_text())
        return 0
    return run_lint(args.paths, output_format=args.format)


def _cmd_quadrants(args: argparse.Namespace) -> int:
    placements = place_all(SPEC2000_BENCHMARKS, n_intervals=args.intervals)
    rows = [
        (
            p.name,
            round(p.savings_potential, 4),
            round(p.variability_pct, 1),
            p.quadrant.name,
        )
        for p in sorted(
            placements.values(), key=lambda p: (p.quadrant.name, p.name)
        )
    ]
    print(
        format_table(
            ["benchmark", "mean Mem/Uop", "variation %", "quadrant"],
            rows,
            title="Figure 3 quadrant placement",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Runtime phase monitoring and prediction with application to "
            "dynamic power management (MICRO 2006 reproduction)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list the benchmark registry"
    )
    list_parser.set_defaults(func=_cmd_list)

    run_parser = subparsers.add_parser(
        "run", help="run one benchmark, baseline vs managed"
    )
    run_parser.add_argument("benchmark", help="benchmark name (see 'list')")
    run_parser.add_argument(
        "--governor",
        choices=("gpht", "reactive"),
        default="gpht",
        help="managed governor (default: gpht)",
    )
    run_parser.add_argument(
        "--policy",
        choices=sorted(POLICY_BUILDERS),
        default="table2",
        help="phase-to-DVFS policy (default: the paper's Table 2)",
    )
    run_parser.add_argument(
        "--intervals", type=int, default=300,
        help="trace length in 100M-uop intervals",
    )
    run_parser.add_argument(
        "--json", action="store_true", help="emit the managed run as JSON"
    )
    run_parser.add_argument(
        "--csv", action="store_true",
        help="emit the managed run's interval log as CSV",
    )
    run_parser.set_defaults(func=_cmd_run)

    accuracy_parser = subparsers.add_parser(
        "accuracy", help="evaluate the Figure 4 predictor suite"
    )
    accuracy_parser.add_argument(
        "benchmarks", nargs="*",
        help="benchmarks to evaluate (default: all 33)",
    )
    accuracy_parser.add_argument("--intervals", type=int, default=1000)
    accuracy_parser.set_defaults(func=_cmd_accuracy)

    characterize_parser = subparsers.add_parser(
        "characterize", help="full workload characterisation report"
    )
    characterize_parser.add_argument(
        "benchmarks", nargs="+", help="benchmarks to characterise"
    )
    characterize_parser.add_argument("--intervals", type=int, default=1000)
    characterize_parser.set_defaults(func=_cmd_characterize)

    export_parser = subparsers.add_parser(
        "export-trace",
        help="emit a benchmark's workload trace as portable JSON",
    )
    export_parser.add_argument("benchmark", help="benchmark name")
    export_parser.add_argument("--intervals", type=int, default=300)
    export_parser.set_defaults(func=_cmd_export_trace)

    report_parser = subparsers.add_parser(
        "report",
        help="re-measure the paper's headline claims (exit 1 if any fails)",
    )
    report_parser.add_argument(
        "--intervals", type=int, default=300,
        help="trace length for management claims",
    )
    report_parser.add_argument(
        "--accuracy-intervals", type=int, default=1000,
        help="trace length for prediction claims",
    )
    report_parser.set_defaults(func=_cmd_report)

    quadrant_parser = subparsers.add_parser(
        "quadrants", help="place every benchmark on the Figure 3 plane"
    )
    quadrant_parser.add_argument("--intervals", type=int, default=400)
    quadrant_parser.set_defaults(func=_cmd_quadrants)

    lint_parser = subparsers.add_parser(
        "lint",
        help="run the domain-aware static analysis over source paths",
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint_parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    lint_parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every registered lint rule and exit",
    )
    lint_parser.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
