"""Command-line interface to the reproduction.

Exposes the common experiments without writing Python::

    python -m repro list                      # benchmark registry
    python -m repro run applu_in              # baseline vs managed run
    python -m repro run mcf_inp --governor reactive --intervals 500
    python -m repro accuracy applu_in equake_in --jobs 4
    python -m repro sweep pht --jobs 4 --format json
    python -m repro report --jobs 4 --progress
    python -m repro quadrants
    python -m repro lint src/ --format json   # domain static analysis

Engine-backed commands (``run``, ``accuracy``, ``sweep``, ``report``)
share one set of execution flags: ``--jobs N`` fans cells out over
worker processes and ``--cache-dir``/``--no-cache`` control the
on-disk result cache (enabled by default, so an immediate re-run
replays from disk).  ``--progress`` streams per-cell completion and
the batch's cache statistics to stderr.

Every command prints aligned text; sweep commands accept
``--format json`` for the typed result payload, and ``run --json`` /
``run --csv`` emit full per-interval exports.

Observability (see ``docs/observability.md``): engine-backed commands
accept ``--trace``/``--trace-out FILE`` to record a structured JSONL
event trace, and the ``trace`` command group records, summarises and
converts traces (``repro trace record|summarize|export``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro import __version__
from repro.analysis.characterize import characterization_rows, characterize
from repro.analysis.reporting import format_percent, format_table
from repro.core.predictors import paper_predictor_suite
from repro.errors import ConfigurationError, ReproError
from repro.exec.cache import NullCache, ResultCache
from repro.exec.cells import (
    GOVERNOR_NAMES,
    POLICY_NAMES,
    CellValue,
    build_governor,
    build_policy,
)
from repro.exec.engine import CellCache, ExecutionEngine, make_engine
from repro.exec.progress import StderrProgress
from repro.exec.results import Provenance, SweepResult
from repro.exec.spec import ExperimentSpec
from repro.obs.events import TraceEvent
from repro.obs.export import (
    events_from_jsonl,
    events_to_csv,
    events_to_jsonl,
    summary_text,
)
from repro.obs.tracer import RingBufferTracer
from repro.system.export import run_to_csv, run_to_json
from repro.system.machine import Machine
from repro.workloads.quadrants import place_all
from repro.workloads.spec2000 import (
    FIG5_BENCHMARKS,
    SPEC2000_BENCHMARKS,
    benchmark,
    benchmark_names,
)

if TYPE_CHECKING:
    from repro.serve import SessionManager

# ---------------------------------------------------------------------------
# Shared option groups (argparse parents)
# ---------------------------------------------------------------------------


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1 (clear error instead of a traceback)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer (>= 1), got {value}"
        )
    return value


def _positive_int_or_zero(text: str) -> int:
    """argparse type: an integer >= 0 (0 means 'disabled')."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {value}"
        )
    return value


def _engine_parent() -> argparse.ArgumentParser:
    """Execution-engine flags shared by every engine-backed command."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("execution engine")
    group.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes (default: 1 = serial)",
    )
    group.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "result cache directory (default: $REPRO_CACHE_DIR or "
            "~/.cache/repro)"
        ),
    )
    group.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache",
    )
    group.add_argument(
        "--progress",
        action="store_true",
        help="stream per-cell progress and cache statistics to stderr",
    )
    trace_group = parent.add_argument_group("tracing")
    trace_group.add_argument(
        "--trace",
        action="store_true",
        help=(
            "record a structured event trace of the run "
            "(see docs/observability.md)"
        ),
    )
    trace_group.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help=(
            "write the recorded trace as JSONL to FILE (implies --trace; "
            "default: repro-trace.jsonl)"
        ),
    )
    return parent


def _format_parent(
    *, sarif: bool = False, json_help: str = "typed JSON payload"
) -> argparse.ArgumentParser:
    """The one shared ``--format`` flag for result-printing commands.

    Every subcommand that prints a result accepts the same spelling:
    ``--format {text,json}`` (plus ``sarif`` for the static-analysis
    frontends).  Per-command variants (``csv``/``jsonl``, bespoke
    defaults) are gone — default is always ``text``.
    """
    parent = argparse.ArgumentParser(add_help=False)
    choices = ("text", "json", "sarif") if sarif else ("text", "json")
    parent.add_argument(
        "--format",
        choices=choices,
        default="text",
        help=f"output format: text (default) or {json_help}"
        + (" or SARIF 2.1.0" if sarif else ""),
    )
    return parent


def _sweep_parent(default_intervals: int) -> argparse.ArgumentParser:
    """Sweep flags (benchmark selection, trace length, output format)."""
    parent = argparse.ArgumentParser(
        add_help=False, parents=[_engine_parent(), _format_parent()]
    )
    group = parent.add_argument_group("sweep")
    group.add_argument(
        "--benchmarks",
        nargs="+",
        metavar="NAME",
        default=None,
        help="benchmarks to sweep (see 'list')",
    )
    group.add_argument(
        "--intervals",
        type=int,
        default=default_intervals,
        help=f"trace length in intervals (default: {default_intervals})",
    )
    return parent


def _cli_tracer(args: argparse.Namespace) -> Optional[RingBufferTracer]:
    """A live collector when ``--trace``/``--trace-out`` was given."""
    if getattr(args, "trace", False) or getattr(args, "trace_out", None):
        return RingBufferTracer()
    return None


def _write_output_file(path: Path, payload: str) -> None:
    """Write ``payload`` to ``path``, creating missing parent directories.

    Maps I/O failures (unwritable parent, path is a directory, ...) onto
    the CLI error path instead of a bare traceback.
    """
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(payload, encoding="utf-8")
    except OSError as error:
        raise ConfigurationError(f"cannot write {path}: {error}") from None


def _write_trace(
    tracer: Optional[RingBufferTracer], args: argparse.Namespace
) -> None:
    """Persist a recorded trace as JSONL and note it on stderr."""
    if tracer is None:
        return
    out = Path(args.trace_out) if args.trace_out else Path("repro-trace.jsonl")
    _write_output_file(out, events_to_jsonl(tracer.events()))
    dropped = f" ({tracer.dropped} dropped)" if tracer.dropped else ""
    print(f"trace: {len(tracer)} events{dropped} -> {out}", file=sys.stderr)


def _cli_engine(
    args: argparse.Namespace,
) -> Tuple[ExecutionEngine, Optional[StderrProgress], Optional[RingBufferTracer]]:
    """Build the execution engine an engine-backed command asked for."""
    cache: CellCache
    if args.no_cache:
        cache = NullCache()
    else:
        root = Path(args.cache_dir) if args.cache_dir else None
        cache = ResultCache(root)
    progress = StderrProgress() if args.progress else None
    hooks = (progress,) if progress is not None else ()
    tracer = _cli_tracer(args)
    engine = make_engine(
        jobs=args.jobs, cache=cache, hooks=hooks, tracer=tracer
    )
    return engine, progress, tracer


def _print_provenance(provenance: Optional[Provenance]) -> None:
    """Batch accounting line for ``--progress``."""
    if provenance is None:
        return
    print(
        f"{provenance.total_cells} cells: {provenance.cache_hits} cached "
        f"({provenance.hit_rate:.1%} hit rate), {provenance.executed} "
        f"executed, {provenance.wall_seconds:.2f}s wall "
        f"[{provenance.runner}]",
        file=sys.stderr,
    )


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = []
    for name in benchmark_names():
        spec = SPEC2000_BENCHMARKS[name]
        rows.append((name, spec.description))
    print(
        format_table(
            ["benchmark", "description"],
            rows,
            title="SPEC2000 synthetic benchmark registry (Figure 4 order)",
        )
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    tracer = _cli_tracer(args)
    if args.json or args.csv:
        # Full-fidelity path: the exports need complete interval logs,
        # which summary cells deliberately do not carry.
        spec = benchmark(args.benchmark)
        machine = Machine()
        trace = spec.trace(n_intervals=args.intervals)
        managed = machine.run(
            trace, build_governor(args.governor, args.policy), tracer=tracer
        )
        if args.json:
            print(run_to_json(managed))
        else:
            print(run_to_csv(managed), end="")
        _write_trace(tracer, args)
        return 0

    benchmark(args.benchmark)  # fail fast on unknown names
    cell_spec = ExperimentSpec.create(
        "comparison",
        benchmark=args.benchmark,
        n_intervals=args.intervals,
        governor=args.governor,
        policy=args.policy,
        gphr_depth=8,
        pht_entries=128,
    )
    if tracer is not None:
        # Traced runs evaluate inline: a cache hit would skip the
        # simulation and record nothing, and a worker process cannot
        # ship its collector back.  The value is bit-identical either
        # way (tracing is zero-perturbation, the cell is deterministic).
        from repro.exec.cells import evaluate_cell

        value = evaluate_cell(cell_spec, tracer)
        _write_trace(tracer, args)
    else:
        engine, _, _ = _cli_engine(args)
        report = engine.run([cell_spec])
        value = report.value(cell_spec)
        if args.progress:
            _print_provenance(report.provenance())

    def _f(key: str) -> float:
        metric = value[key]
        assert isinstance(metric, (int, float))
        return float(metric)

    rows = [
        ("governor", str(value["governor"])),
        ("policy", build_policy(args.policy).name),
        ("intervals", str(value["n_intervals"])),
        ("baseline power", f"{_f('baseline_power_w'):.2f} W"),
        ("managed power", f"{_f('managed_power_w'):.2f} W"),
        ("baseline BIPS", f"{_f('baseline_bips'):.3f}"),
        ("managed BIPS", f"{_f('managed_bips'):.3f}"),
        ("prediction accuracy", format_percent(_f("prediction_accuracy"))),
        ("DVFS transitions", str(value["transition_count"])),
        ("power savings", format_percent(_f("power_savings"))),
        ("energy savings", format_percent(_f("energy_savings"))),
        (
            "performance degradation",
            format_percent(_f("performance_degradation")),
        ),
        ("EDP improvement", format_percent(_f("edp_improvement"))),
    ]
    print(
        format_table(
            ["metric", "value"], rows, title=f"run: {args.benchmark}"
        )
    )
    return 0


def _accuracy_result(
    names: Sequence[str], intervals: int, engine: ExecutionEngine
) -> SweepResult:
    """Figure 4 predictor suite as a (benchmark, predictor) sweep."""
    predictors = [p.name for p in paper_predictor_suite()]
    grid: Dict[Tuple[str, str], ExperimentSpec] = {
        (name, predictor): ExperimentSpec.create(
            "predictor_accuracy",
            benchmark=name,
            n_intervals=intervals,
            predictor=predictor,
            phase_edges=None,
        )
        for name in names
        for predictor in predictors
    }
    report = engine.run(list(grid.values()))

    def _metrics(value: CellValue) -> Mapping[str, float]:
        accuracy = value["accuracy"]
        misprediction = value["misprediction_rate"]
        assert isinstance(accuracy, float)
        assert isinstance(misprediction, float)
        return {
            "accuracy": accuracy,
            "misprediction_rate": misprediction,
        }

    from repro.exec.results import SweepCell

    cells = tuple(
        SweepCell.create(key, _metrics(report.value(spec)))
        for key, spec in grid.items()
    )
    return SweepResult(
        name="accuracy",
        axes=("benchmark", "predictor"),
        cells=cells,
        parameters=(("n_intervals", intervals),),
        metric="accuracy",
        provenance=report.provenance(),
    )


def _render_two_axis(result: SweepResult, title: str) -> str:
    """Pivot a (benchmark, X) sweep into a benchmark-per-row table."""
    row_axis, col_axis = result.axes
    columns = result.axis_values(col_axis)
    rows = [
        [str(row)]
        + [round(result.value(row, column) * 100, 1) for column in columns]
        for row in result.axis_values(row_axis)
    ]
    return format_table(
        [row_axis] + [str(column) for column in columns], rows, title=title
    )


def _cmd_accuracy(args: argparse.Namespace) -> int:
    names = (
        args.benchmarks or args.benchmark_args or list(benchmark_names())
    )
    engine, _, tracer = _cli_engine(args)
    result = _accuracy_result(names, args.intervals, engine)
    _write_trace(tracer, args)
    if args.progress:
        _print_provenance(result.provenance)
    if args.format == "json":
        print(result.to_json(indent=2))
        return 0
    print(
        _render_two_axis(
            result,
            f"prediction accuracy (%) over {args.intervals} intervals",
        )
    )
    return 0


def _cmd_sweep_pht(args: argparse.Namespace) -> int:
    from repro.analysis.sweeps import sweep_pht_entries

    engine, _, tracer = _cli_engine(args)
    result = sweep_pht_entries(
        args.benchmarks or list(FIG5_BENCHMARKS),
        pht_sizes=args.sizes,
        gphr_depth=args.depth,
        n_intervals=args.intervals,
        engine=engine,
    )
    _write_trace(tracer, args)
    if args.progress:
        _print_provenance(result.provenance)
    if args.format == "json":
        print(result.to_json(indent=2))
        return 0
    print(
        _render_two_axis(
            result,
            f"GPHT(depth={args.depth}) accuracy (%) per PHT capacity",
        )
    )
    return 0


def _cmd_sweep_depth(args: argparse.Namespace) -> int:
    from repro.analysis.sweeps import sweep_gphr_depth

    engine, _, tracer = _cli_engine(args)
    result = sweep_gphr_depth(
        args.benchmarks or list(FIG5_BENCHMARKS),
        depths=args.depths,
        pht_entries=args.entries,
        n_intervals=args.intervals,
        engine=engine,
    )
    _write_trace(tracer, args)
    if args.progress:
        _print_provenance(result.provenance)
    if args.format == "json":
        print(result.to_json(indent=2))
        return 0
    print(
        _render_two_axis(
            result,
            f"GPHT accuracy (%) per history depth "
            f"(PHT={args.entries})",
        )
    )
    return 0


def _cmd_sweep_frequency(args: argparse.Namespace) -> int:
    from repro.analysis.sweeps import sweep_frequencies

    engine, _, tracer = _cli_engine(args)
    result = sweep_frequencies(
        args.benchmark, n_intervals=args.intervals, engine=engine
    )
    _write_trace(tracer, args)
    if args.progress:
        _print_provenance(result.provenance)
    if args.format == "json":
        print(result.to_json(indent=2))
        return 0
    rows = []
    for frequency in result.axis_values("frequency_mhz"):
        rows.append(
            (
                frequency,
                f"{result.value(frequency, metric='bips'):.3f}",
                f"{result.value(frequency, metric='power_w'):.2f}",
                f"{result.value(frequency, metric='upc'):.3f}",
                f"{result.value(frequency, metric='mem_per_uop'):.4f}",
            )
        )
    print(
        format_table(
            ["frequency (MHz)", "BIPS", "power (W)", "UPC", "Mem/Uop"],
            rows,
            title=f"operating points: {args.benchmark}",
        )
    )
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    for name in args.benchmarks:
        result = characterize(benchmark(name), n_intervals=args.intervals)
        print(
            format_table(
                ["property", "value"],
                characterization_rows(result),
                title=f"characterisation: {name}",
            )
        )
        print()
    return 0


def _cmd_export_trace(args: argparse.Namespace) -> int:
    from repro.workloads.serialization import trace_to_json

    trace = benchmark(args.benchmark).trace(n_intervals=args.intervals)
    print(trace_to_json(trace))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.paper_report import (
        claims_payload,
        measure_claims,
        render_report,
    )

    engine, _, tracer = _cli_engine(args)
    claims = measure_claims(
        n_accuracy=args.accuracy_intervals,
        n_intervals=args.intervals,
        engine=engine,
    )
    _write_trace(tracer, args)
    if args.progress:
        stats = engine.cache_stats
        print(
            f"cache: {stats.hits} hits / {stats.misses} misses "
            f"({stats.hit_rate:.1%} hit rate), {stats.writes} writes",
            file=sys.stderr,
        )
    if args.format == "json":
        print(json.dumps(claims_payload(claims), indent=2))
    else:
        print(render_report(claims))
    return 0 if all(claim.holds for claim in claims) else 1


def _read_trace_file(path: str) -> Tuple[TraceEvent, ...]:
    """Load a JSONL trace, mapping I/O failures onto the CLI error path."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as error:
        raise ConfigurationError(f"cannot read trace file: {error}") from None
    return events_from_jsonl(text)


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from repro.exec.cells import evaluate_cell
    from repro.obs.tracer import DEFAULT_CAPACITY

    benchmark(args.benchmark)  # fail fast on unknown names
    cell_spec = ExperimentSpec.create(
        "comparison",
        benchmark=args.benchmark,
        n_intervals=args.intervals,
        governor=args.governor,
        policy=args.policy,
        gphr_depth=8,
        pht_entries=128,
    )
    # Size the ring so a full run never drops events (a handful of
    # event types per interval, plus headroom).
    tracer = RingBufferTracer(
        capacity=max(DEFAULT_CAPACITY, args.intervals * 8)
    )
    evaluate_cell(cell_spec, tracer)
    payload = events_to_jsonl(tracer.events())
    if args.out:
        _write_output_file(Path(args.out), payload)
        print(
            f"trace: {len(tracer)} events -> {args.out}", file=sys.stderr
        )
    else:
        print(payload, end="")
    return 0


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    from repro.obs.export import summary_payload

    events = _read_trace_file(args.file)
    if args.format == "json":
        print(json.dumps(summary_payload(events), indent=2))
    else:
        print(summary_text(events))
    return 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    events = _read_trace_file(args.file)
    # Shared --format spelling: text renders CSV, json renders the
    # normalised JSONL stream.
    if args.format == "json":
        payload = events_to_jsonl(events)
    else:
        payload = events_to_csv(events)
    if args.out:
        _write_output_file(Path(args.out), payload)
        print(
            f"trace: {len(events)} events -> {args.out}", file=sys.stderr
        )
    else:
        print(payload, end="")
    return 0


def _serve_manager(args: argparse.Namespace) -> "SessionManager":
    """Build the session manager a ``serve`` frontend asked for."""
    from repro.serve import SessionManager
    from repro.serve.frontends import DEFAULT_CLOCK

    return SessionManager(
        max_sessions=args.max_sessions,
        idle_timeout_s=args.idle_timeout,
        clock=DEFAULT_CLOCK,
    )


def _cmd_serve_stdio(args: argparse.Namespace) -> int:
    from repro.serve import serve_stdio

    handled = serve_stdio(_serve_manager(args), sys.stdin, sys.stdout)
    print(f"serve: {handled} requests handled", file=sys.stderr)
    return 0


def _cmd_serve_tcp(args: argparse.Namespace) -> int:
    # Checkpointing and auto-restart live in the sharded router, so any
    # resilience flag routes through it even with a single worker.
    if args.workers > 1 or args.auto_restart or args.checkpoint_every > 0:
        from repro.serve import run_sharded

        print(
            f"serve: listening on {args.host}:{args.port} "
            f"({args.workers} workers, max {args.max_sessions} sessions"
            + (", auto-restart" if args.auto_restart else "")
            + ")",
            file=sys.stderr,
        )
        run_sharded(
            args.workers,
            host=args.host,
            port=args.port,
            max_sessions=args.max_sessions,
            idle_timeout_s=args.idle_timeout,
            queue_depth=args.queue_depth,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir,
            auto_restart=args.auto_restart,
        )
        return 0
    from repro.serve import serve_tcp

    print(
        f"serve: listening on {args.host}:{args.port} "
        f"(max {args.max_sessions} sessions)",
        file=sys.stderr,
    )
    serve_tcp(
        _serve_manager(args),
        host=args.host,
        port=args.port,
        queue_depth=args.queue_depth,
    )
    return 0


def _cmd_serve_loadgen(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve import ChaosSchedule, ShardedServer, run_loadgen
    from repro.serve.loadgen import parse_chaos_event

    events = [parse_chaos_event(spec) for spec in args.chaos_kill or []]
    if events and not args.self_host:
        raise ConfigurationError(
            "--chaos-kill needs --self-host N (kills target the "
            "in-process server's workers)"
        )

    server: "ShardedServer | None" = None
    host, port = args.host, args.port
    if args.self_host:
        # Self-hosted chaos mode: spin up a sharded server in-process so
        # the kill schedule has workers to terminate, with auto-restart
        # and checkpointing on — the recovery path under test.
        server = ShardedServer(
            workers=args.self_host,
            host="127.0.0.1",
            port=0,
            max_sessions=args.max_sessions,
            checkpoint_every=args.checkpoint_every,
            auto_restart=True,
        )
        host = "127.0.0.1"
        port = server.start()
        print(
            f"loadgen: self-hosting {args.self_host} workers on port {port}",
            file=sys.stderr,
        )
    try:
        chaos = (
            ChaosSchedule(server.kill_worker, events)
            if server is not None and events
            else None
        )
        result = run_loadgen(
            host,
            port,
            sessions=args.sessions,
            samples_per_session=args.samples,
            batch_size=args.batch,
            connections=args.connections,
            protocol=args.protocol,
            governor=args.governor,
            seed=args.seed,
            chaos=chaos,
        )
    finally:
        if server is not None:
            server.stop()
    if args.format == "json":
        print(_json.dumps(result.to_payload(), indent=2, sort_keys=True))
    else:
        rows = [
            ("sessions", str(result.sessions)),
            ("samples/session", str(result.samples_per_session)),
            ("batch size", str(result.batch_size)),
            ("connections", str(result.connections)),
            ("protocol", f"v{result.protocol}"),
            ("requests", str(result.requests)),
            ("samples", str(result.samples)),
            ("errors", str(result.errors)),
            ("recoveries", str(result.recoveries)),
            ("replayed samples", str(result.replayed_samples)),
            ("elapsed", f"{result.elapsed_s:.3f} s"),
            ("samples/s", f"{result.samples_per_s:,.0f}"),
            ("requests/s", f"{result.requests_per_s:,.0f}"),
            ("outcome digest", result.outcome_digest[:16]),
        ]
        print(
            format_table(
                ["property", "value"],
                rows,
                title=f"loadgen: {args.host}:{args.port}",
            )
        )
    return 0 if result.errors == 0 else 1


def _cmd_serve_replay(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve import SessionConfig, load_trace, replay_trace

    predictor_state: Optional[Dict[str, object]] = None
    if args.model:
        from repro.learn import ModelArtifact, session_config_params

        artifact = ModelArtifact.load(args.model)
        params = session_config_params(artifact)
        params["policy"] = args.policy
        config = SessionConfig.from_payload(params)
        predictor_state = dict(artifact.state)
    else:
        config = SessionConfig(
            governor=args.governor,
            policy=args.policy,
            gphr_depth=args.gphr_depth,
            pht_entries=args.pht_entries,
            window_size=args.window_size,
            history_length=args.history_length,
            markov_order=args.markov_order,
            markov_alpha=args.markov_alpha,
        )
    report = replay_trace(
        load_trace(Path(args.file)),
        config,
        snapshot_at=args.snapshot_at,
        predictor_state=predictor_state,
    )
    if args.format == "json":
        print(_json.dumps(report.to_payload(), indent=2, sort_keys=True))
    else:
        rows = [
            ("samples", str(report.samples)),
            ("governor", report.governor),
            ("policy", report.policy),
            ("scored predictions", str(len(report.online_predictions))),
            ("accuracy", format_percent(report.accuracy)),
            (
                "snapshot/restore at",
                "-" if report.snapshot_at is None else str(report.snapshot_at),
            ),
            (
                "matches offline evaluator",
                "yes"
                if report.matches_offline
                else f"NO (first mismatch at {report.mismatch_index})",
            ),
            (
                "matches recorded phases",
                "-"
                if report.trace_phases_match is None
                else ("yes" if report.trace_phases_match else "NO"),
            ),
        ]
        print(
            format_table(
                ["property", "value"], rows, title=f"replay: {args.file}"
            )
        )
    ok = report.matches_offline and report.trace_phases_match is not False
    return 0 if ok else 1


def _learn_source_series(args: argparse.Namespace) -> Tuple[List[float], Dict[str, object]]:
    """The ``Mem/Uop`` series a learn command trains/evaluates on.

    Exactly one of ``--trace FILE`` (recorded ``repro.obs`` JSONL) and
    ``--benchmark NAME`` (live workload generator) provides it.
    """
    from repro.obs.events import IntervalSampled

    if args.trace:
        events = _read_trace_file(args.trace)
        series = [
            event.mem_per_uop
            for event in events
            if isinstance(event, IntervalSampled)
        ]
        if not series:
            raise ConfigurationError(
                f"trace {args.trace} contains no interval_sampled events"
            )
        return series, {"trace": args.trace}
    series_array = benchmark(args.benchmark).mem_series(
        args.intervals, seed=args.seed
    )
    return list(series_array), {
        "benchmark": args.benchmark,
        "n_intervals": args.intervals,
        "seed": args.seed,
    }


def _cmd_learn_train(args: argparse.Namespace) -> int:
    from repro.learn import (
        phase_dataset_from_series,
        power_dataset_from_benchmark,
        power_dataset_from_events,
        train_markov,
        train_phase_tree,
        train_power_model,
    )

    if args.model == "power":
        if args.trace:
            # Raises with the precise reason (traces carry no power).
            power_dataset_from_events(_read_trace_file(args.trace))
        dataset = power_dataset_from_benchmark(
            args.benchmark, args.intervals, seed=args.seed
        )
        source: Dict[str, object] = {
            "benchmark": args.benchmark,
            "n_intervals": args.intervals,
            "seed": args.seed,
        }
        _, artifact = train_power_model(
            dataset,
            max_depth=args.max_depth,
            min_samples_leaf=args.min_leaf,
            source=source,
        )
    else:
        series, source = _learn_source_series(args)
        history = args.history if args.model == "tree" else max(args.order, 1)
        phase_dataset = phase_dataset_from_series(
            series, history_length=history
        )
        if args.model == "tree":
            _, artifact = train_phase_tree(
                phase_dataset,
                max_depth=args.max_depth,
                min_samples_leaf=args.min_leaf,
                source=source,
            )
        else:
            _, artifact = train_markov(
                phase_dataset,
                order=args.order,
                alpha=args.alpha,
                source=source,
            )
    out = Path(args.out)
    _write_output_file(out, artifact.to_json())
    examples = artifact.training["examples"]
    if args.format == "json":
        print(
            json.dumps(
                {
                    "out": str(out),
                    "kind": artifact.kind,
                    "name": artifact.name,
                    "examples": examples,
                    "digest": artifact.digest(),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        rows = [
            ("artifact", str(out)),
            ("kind", artifact.kind),
            ("model", artifact.name),
            ("examples", str(examples)),
            ("digest", artifact.digest()[:16]),
        ]
        print(
            format_table(
                ["property", "value"], rows, title=f"learn train: {args.model}"
            )
        )
    return 0


def _cmd_learn_eval(args: argparse.Namespace) -> int:
    from repro.core.phases import PhaseTable
    from repro.learn import (
        LearnedPowerModel,
        ModelArtifact,
        build_model,
        power_dataset_from_benchmark,
        power_dataset_from_events,
    )

    artifact = ModelArtifact.load(args.artifact)
    model = build_model(artifact)
    if isinstance(model, LearnedPowerModel):
        if args.trace:
            power_dataset_from_events(_read_trace_file(args.trace))
        dataset = power_dataset_from_benchmark(
            args.benchmark, args.intervals, seed=args.seed
        )
        evaluation = model.evaluate(dataset)
        ok = args.max_mae_w is None or evaluation.mae_w <= args.max_mae_w
        if args.format == "json":
            payload = dict(evaluation.to_payload())
            payload["kind"] = artifact.kind
            payload["passed"] = ok
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            rows = [
                ("model", artifact.name),
                ("samples", str(evaluation.samples)),
                ("MAE", f"{evaluation.mae_w:.4f} W"),
                ("RMSE", f"{evaluation.rmse_w:.4f} W"),
                ("max abs error", f"{evaluation.max_abs_error_w:.4f} W"),
                ("mean power", f"{evaluation.mean_power_w:.4f} W"),
                (
                    "MAE floor",
                    "-"
                    if args.max_mae_w is None
                    else f"{args.max_mae_w:.4f} W ({'ok' if ok else 'FAIL'})",
                ),
            ]
            print(
                format_table(
                    ["property", "value"], rows,
                    title=f"learn eval: {args.artifact}",
                )
            )
        return 0 if ok else 1

    from repro.analysis.accuracy import evaluate_predictor_batch

    series, _ = _learn_source_series(args)
    result = evaluate_predictor_batch(model, series, PhaseTable())
    ok = result.accuracy >= args.min_accuracy
    if args.format == "json":
        print(
            json.dumps(
                {
                    "kind": artifact.kind,
                    "model": artifact.name,
                    "samples": len(series),
                    "scored": result.total,
                    "correct": result.correct,
                    "accuracy": result.accuracy,
                    "misprediction_rate": result.misprediction_rate,
                    "min_accuracy": args.min_accuracy,
                    "passed": ok,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        rows = [
            ("model", artifact.name),
            ("samples", str(len(series))),
            ("scored", str(result.total)),
            ("accuracy", format_percent(result.accuracy)),
            (
                "accuracy floor",
                f"{format_percent(args.min_accuracy)}"
                f" ({'ok' if ok else 'FAIL'})",
            ),
        ]
        print(
            format_table(
                ["property", "value"], rows,
                title=f"learn eval: {args.artifact}",
            )
        )
    return 0 if ok else 1


def _cmd_learn_compare(args: argparse.Namespace) -> int:
    from repro.learn import DEFAULT_COMPARE_BENCHMARKS, compare_models

    engine, _, tracer = _cli_engine(args)
    payload = compare_models(
        engine,
        benchmarks=tuple(args.benchmarks or DEFAULT_COMPARE_BENCHMARKS),
        n_intervals=args.intervals,
        models=tuple(args.models),
        train_intervals=args.train_intervals,
        train_seed=args.train_seed,
    )
    _write_trace(tracer, args)
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    summary = payload["summary"]
    assert isinstance(summary, dict)
    rows = []
    for model, stats in summary.items():
        assert isinstance(stats, dict)
        mean_accuracy = stats["mean_accuracy"]
        mean_misprediction = stats["mean_misprediction_rate"]
        overhead = stats["mean_overhead_units"]
        assert isinstance(mean_accuracy, float)
        assert isinstance(mean_misprediction, float)
        assert isinstance(overhead, float)
        rows.append(
            (
                str(model),
                format_percent(mean_accuracy),
                format_percent(mean_misprediction),
                f"{overhead:.1f}",
                str(stats["benchmarks_won"]),
            )
        )
    benchmarks_used = payload["benchmarks"]
    assert isinstance(benchmarks_used, list)
    print(
        format_table(
            [
                "model",
                "mean accuracy",
                "mean mispredict",
                "overhead",
                "wins",
            ],
            rows,
            title=(
                f"learned vs paper predictors over "
                f"{len(benchmarks_used)} benchmarks, "
                f"{args.intervals} intervals"
            ),
        )
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools.lint import run_lint
    from repro.devtools.lint.cli import list_rules_text

    if args.list_rules:
        print(list_rules_text())
        return 0
    return run_lint(args.paths, output_format=args.format)


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.devtools.analyze import run_analyze
    from repro.devtools.analyze.cli import list_analyses_text

    if args.list_rules:
        print(list_analyses_text())
        return 0
    return run_analyze(args.paths, output_format=args.format)


def _cmd_quadrants(args: argparse.Namespace) -> int:
    placements = place_all(SPEC2000_BENCHMARKS, n_intervals=args.intervals)
    rows = [
        (
            p.name,
            round(p.savings_potential, 4),
            round(p.variability_pct, 1),
            p.quadrant.name,
        )
        for p in sorted(
            placements.values(), key=lambda p: (p.quadrant.name, p.name)
        )
    ]
    print(
        format_table(
            ["benchmark", "mean Mem/Uop", "variation %", "quadrant"],
            rows,
            title="Figure 3 quadrant placement",
        )
    )
    return 0


# ---------------------------------------------------------------------------
# bench — benchmark registry + regression gate
# ---------------------------------------------------------------------------


def _cmd_bench_list(args: argparse.Namespace) -> int:
    from repro.bench import BENCHES, all_tags

    if args.format == "json":
        payload = {
            "tags": all_tags(),
            "benches": [
                {
                    "name": spec.name,
                    "module": spec.module,
                    "tags": list(spec.tags),
                    "artifacts": list(spec.artifacts),
                }
                for spec in BENCHES
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows = [
        (spec.name, ", ".join(spec.tags), ", ".join(spec.artifacts))
        for spec in BENCHES
    ]
    print(
        format_table(
            ["bench", "tags", "artifacts"],
            rows,
            title=f"benchmark registry ({len(BENCHES)} benches; "
            f"tags: {', '.join(all_tags())})",
        )
    )
    return 0


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from repro.bench import default_bench_dir, run_benches, select_benches

    tags = list(args.tag or [])
    if args.smoke and "smoke" not in tags:
        tags.append("smoke")
    benches = select_benches(names=args.benches, tags=tags)
    if not benches:
        raise ConfigurationError(
            "the selection matched no registered benches"
        )
    bench_dir = (
        Path(args.bench_dir) if args.bench_dir else default_bench_dir()
    )
    out_dir = Path(args.out)
    engine, _, tracer = _cli_engine(args)
    records = run_benches(engine, benches, bench_dir, out_dir)
    _write_trace(tracer, args)
    failed = [r for r in records if not r.get("passed")]
    if args.format == "json":
        payload = {
            "out": str(out_dir),
            "passed": len(records) - len(failed),
            "failed": len(failed),
            "benches": records,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        rows = [
            (
                str(record["bench"]),
                "ok" if record.get("passed") else "FAIL",
                ", ".join(str(tag) for tag in record.get("tags", [])),
            )
            for record in records
        ]
        print(
            format_table(
                ["bench", "status", "tags"],
                rows,
                title=f"bench run -> {out_dir} "
                f"({len(records) - len(failed)}/{len(records)} passed)",
            )
        )
        for record in failed:
            tail = str(record.get("output_tail", ""))
            if tail:
                print(f"\n--- {record['bench']} output tail ---\n{tail}")
    return 1 if failed else 0


def _cmd_bench_report(args: argparse.Namespace) -> int:
    from repro.bench import load_results_dir

    payloads = load_results_dir(Path(args.results))
    if args.format == "json":
        print(json.dumps(payloads, indent=2, sort_keys=True))
        return 0
    rows = []
    for name in sorted(payloads):
        payload = payloads[name]
        host = payload.get("host", {})
        rows.append(
            (
                name,
                payload.get("version"),
                len(payload.get("metrics", {})),
                len(payload.get("measured", {})),
                f"{host.get('platform', 'unknown')[:28]}",
            )
        )
    print(
        format_table(
            ["artifact", "version", "metrics", "measured", "host"],
            rows,
            title=f"bench report: {args.results} "
            f"({len(payloads)} artifacts)",
        )
    )
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.bench import compare_results, load_results_dir

    current = load_results_dir(Path(args.results))
    baseline = load_results_dir(Path(args.baseline))
    enforce = True if args.enforce else None
    report = compare_results(
        current,
        baseline,
        tolerance=args.tolerance / 100.0,
        enforce=enforce,
    )
    if args.format == "json":
        print(json.dumps(report.to_payload(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    return report.exit_code()


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Runtime phase monitoring and prediction with application to "
            "dynamic power management (MICRO 2006 reproduction)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list the benchmark registry"
    )
    list_parser.set_defaults(func=_cmd_list)

    run_parser = subparsers.add_parser(
        "run",
        parents=[_engine_parent()],
        help="run one benchmark, baseline vs managed",
    )
    run_parser.add_argument("benchmark", help="benchmark name (see 'list')")
    run_parser.add_argument(
        "--governor",
        choices=GOVERNOR_NAMES,
        default="gpht",
        help="managed governor (default: gpht)",
    )
    run_parser.add_argument(
        "--policy",
        choices=sorted(POLICY_NAMES),
        default="table2",
        help="phase-to-DVFS policy (default: the paper's Table 2)",
    )
    run_parser.add_argument(
        "--intervals", type=int, default=300,
        help="trace length in 100M-uop intervals",
    )
    run_parser.add_argument(
        "--json", action="store_true", help="emit the managed run as JSON"
    )
    run_parser.add_argument(
        "--csv", action="store_true",
        help="emit the managed run's interval log as CSV",
    )
    run_parser.set_defaults(func=_cmd_run)

    accuracy_parser = subparsers.add_parser(
        "accuracy",
        parents=[_sweep_parent(default_intervals=1000)],
        help="evaluate the Figure 4 predictor suite",
    )
    accuracy_parser.add_argument(
        "benchmark_args",
        nargs="*",
        metavar="benchmark",
        help="benchmarks to evaluate (default: all 33)",
    )
    accuracy_parser.set_defaults(func=_cmd_accuracy)

    sweep_parser = subparsers.add_parser(
        "sweep", help="parameter sweeps through the execution engine"
    )
    sweep_subparsers = sweep_parser.add_subparsers(
        dest="sweep_kind", required=True
    )

    pht_parser = sweep_subparsers.add_parser(
        "pht",
        parents=[_sweep_parent(default_intervals=1000)],
        help="GPHT accuracy per PHT capacity (Figure 5)",
    )
    pht_parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[1, 64, 128, 1024],
        metavar="N",
        help="PHT capacities (default: 1 64 128 1024)",
    )
    pht_parser.add_argument(
        "--depth", type=int, default=8, help="GPHR depth (default: 8)"
    )
    pht_parser.set_defaults(func=_cmd_sweep_pht)

    depth_parser = sweep_subparsers.add_parser(
        "depth",
        parents=[_sweep_parent(default_intervals=1000)],
        help="GPHT accuracy per global history depth",
    )
    depth_parser.add_argument(
        "--depths",
        type=int,
        nargs="+",
        default=[1, 2, 4, 8, 16],
        metavar="N",
        help="history depths (default: 1 2 4 8 16)",
    )
    depth_parser.add_argument(
        "--entries", type=int, default=1024,
        help="PHT capacity (default: 1024)",
    )
    depth_parser.set_defaults(func=_cmd_sweep_depth)

    frequency_parser = sweep_subparsers.add_parser(
        "frequency",
        parents=[_engine_parent(), _format_parent()],
        help="run one benchmark pinned at every operating point (Figure 7)",
    )
    frequency_parser.add_argument(
        "benchmark",
        nargs="?",
        default="applu_in",
        help="benchmark name (default: applu_in)",
    )
    frequency_parser.add_argument(
        "--intervals", type=int, default=50,
        help="trace length per point (default: 50)",
    )
    frequency_parser.set_defaults(func=_cmd_sweep_frequency)

    characterize_parser = subparsers.add_parser(
        "characterize", help="full workload characterisation report"
    )
    characterize_parser.add_argument(
        "benchmarks", nargs="+", help="benchmarks to characterise"
    )
    characterize_parser.add_argument("--intervals", type=int, default=1000)
    characterize_parser.set_defaults(func=_cmd_characterize)

    export_parser = subparsers.add_parser(
        "export-trace",
        help="emit a benchmark's workload trace as portable JSON",
    )
    export_parser.add_argument("benchmark", help="benchmark name")
    export_parser.add_argument("--intervals", type=int, default=300)
    export_parser.set_defaults(func=_cmd_export_trace)

    report_parser = subparsers.add_parser(
        "report",
        parents=[_engine_parent(), _format_parent()],
        help="re-measure the paper's headline claims (exit 1 if any fails)",
    )
    report_parser.add_argument(
        "--intervals", type=int, default=300,
        help="trace length for management claims",
    )
    report_parser.add_argument(
        "--accuracy-intervals", type=int, default=1000,
        help="trace length for prediction claims",
    )
    report_parser.set_defaults(func=_cmd_report)

    quadrant_parser = subparsers.add_parser(
        "quadrants", help="place every benchmark on the Figure 3 plane"
    )
    quadrant_parser.add_argument("--intervals", type=int, default=400)
    quadrant_parser.set_defaults(func=_cmd_quadrants)

    trace_parser = subparsers.add_parser(
        "trace",
        help="record, summarise and convert structured event traces",
    )
    trace_subparsers = trace_parser.add_subparsers(
        dest="trace_kind", required=True
    )

    trace_record = trace_subparsers.add_parser(
        "record",
        help="run one benchmark under a governor and record its trace",
    )
    trace_record.add_argument("benchmark", help="benchmark name (see 'list')")
    trace_record.add_argument(
        "--governor",
        choices=GOVERNOR_NAMES,
        default="gpht",
        help="managed governor (default: gpht)",
    )
    trace_record.add_argument(
        "--policy",
        choices=sorted(POLICY_NAMES),
        default="table2",
        help="phase-to-DVFS policy (default: the paper's Table 2)",
    )
    trace_record.add_argument(
        "--intervals",
        type=_positive_int,
        default=300,
        help="trace length in 100M-uop intervals (default: 300)",
    )
    trace_record.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write JSONL to FILE (default: stdout)",
    )
    trace_record.set_defaults(func=_cmd_trace_record)

    trace_summarize = trace_subparsers.add_parser(
        "summarize",
        parents=[_format_parent()],
        help="event counts and derived metrics of a recorded trace",
    )
    trace_summarize.add_argument("file", help="JSONL trace file")
    trace_summarize.set_defaults(func=_cmd_trace_summarize)

    trace_export = trace_subparsers.add_parser(
        "export",
        parents=[_format_parent(json_help="normalised JSONL")],
        help="convert a recorded trace to CSV (text) or normalised JSONL"
        " (json)",
    )
    trace_export.add_argument("file", help="JSONL trace file")
    trace_export.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write to FILE (default: stdout)",
    )
    trace_export.set_defaults(func=_cmd_trace_export)

    serve_parser = subparsers.add_parser(
        "serve",
        help="online streaming phase-prediction service (see docs/serving.md)",
    )
    serve_subparsers = serve_parser.add_subparsers(
        dest="serve_kind", required=True
    )

    serve_limits = argparse.ArgumentParser(add_help=False)
    limits_group = serve_limits.add_argument_group("overload protection")
    limits_group.add_argument(
        "--max-sessions",
        type=_positive_int,
        default=64,
        metavar="N",
        help="live-session ceiling (default: 64)",
    )
    limits_group.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="evict sessions idle longer than this (default: never)",
    )

    serve_stdio_parser = serve_subparsers.add_parser(
        "stdio",
        parents=[serve_limits],
        help="serve line-delimited JSON over stdin/stdout until EOF",
    )
    serve_stdio_parser.set_defaults(func=_cmd_serve_stdio)

    serve_tcp_parser = serve_subparsers.add_parser(
        "tcp",
        parents=[serve_limits],
        help="serve line-delimited JSON over TCP until interrupted",
    )
    serve_tcp_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_tcp_parser.add_argument(
        "--port", type=int, default=8472, help="bind port (default: 8472)"
    )
    serve_tcp_parser.add_argument(
        "--queue-depth",
        type=_positive_int,
        default=64,
        metavar="N",
        help="per-connection request queue depth (default: 64)",
    )
    serve_tcp_parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        metavar="N",
        help=(
            "worker processes; >1 starts the consistent-hash sharded "
            "router (default: 1, single process)"
        ),
    )
    recovery_group = serve_tcp_parser.add_argument_group("self-healing")
    recovery_group.add_argument(
        "--checkpoint-every",
        type=_positive_int_or_zero,
        default=0,
        metavar="K",
        help=(
            "checkpoint each session every K samples so restarted "
            "workers can restore it (default: 0, disabled; "
            "--auto-restart implies 32)"
        ),
    )
    recovery_group.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help=(
            "durable checkpoint directory; sessions rebalance onto the "
            "new topology when --workers changes between runs "
            "(default: a private temporary directory)"
        ),
    )
    recovery_group.add_argument(
        "--auto-restart",
        action="store_true",
        help=(
            "respawn dead workers and restore their sessions from "
            "checkpoints instead of answering worker_unavailable forever"
        ),
    )
    serve_tcp_parser.set_defaults(func=_cmd_serve_tcp)

    serve_loadgen_parser = serve_subparsers.add_parser(
        "loadgen",
        parents=[_format_parent(), serve_limits],
        help=(
            "drive a running server with a deterministic workload and "
            "report throughput + outcome digest (exit 1 on any error)"
        ),
    )
    serve_loadgen_parser.add_argument(
        "--host", default="127.0.0.1", help="server address (default: 127.0.0.1)"
    )
    serve_loadgen_parser.add_argument(
        "--port", type=int, default=8472, help="server port (default: 8472)"
    )
    serve_loadgen_parser.add_argument(
        "--sessions", type=_positive_int, default=8,
        help="sessions to drive (default: 8)",
    )
    serve_loadgen_parser.add_argument(
        "--samples", type=_positive_int, default=512,
        help="samples per session (default: 512)",
    )
    serve_loadgen_parser.add_argument(
        "--batch", type=_positive_int, default=16,
        help="samples per sample_batch request (default: 16)",
    )
    serve_loadgen_parser.add_argument(
        "--connections", type=_positive_int, default=4,
        help="concurrent client connections (default: 4)",
    )
    serve_loadgen_parser.add_argument(
        "--protocol", type=_positive_int, default=2, choices=(1, 2),
        help="wire protocol version (default: 2)",
    )
    serve_loadgen_parser.add_argument(
        "--governor",
        choices=("gpht", "reactive", "fixed_window"),
        default="gpht",
        help="session governor (default: gpht)",
    )
    serve_loadgen_parser.add_argument(
        "--seed", type=int, default=0,
        help="workload seed (default: 0)",
    )
    chaos_group = serve_loadgen_parser.add_argument_group("chaos testing")
    chaos_group.add_argument(
        "--self-host",
        type=_positive_int,
        default=0,
        metavar="N",
        help=(
            "start an in-process sharded server with N workers "
            "(auto-restart + checkpointing on) and drive that instead "
            "of --host/--port"
        ),
    )
    chaos_group.add_argument(
        "--chaos-kill",
        action="append",
        metavar="REQUESTS:WORKER",
        help=(
            "kill WORKER after REQUESTS generator requests (repeatable; "
            "needs --self-host); the run must still verify with zero "
            "errors and the undisturbed outcome digest"
        ),
    )
    chaos_group.add_argument(
        "--checkpoint-every",
        type=_positive_int_or_zero,
        default=0,
        metavar="K",
        help=(
            "checkpoint cadence for the self-hosted server "
            "(default: 0 — auto-restart picks its default of 32)"
        ),
    )
    serve_loadgen_parser.set_defaults(func=_cmd_serve_loadgen)

    serve_replay_parser = serve_subparsers.add_parser(
        "replay",
        parents=[_format_parent()],
        help=(
            "drive a recorded trace through a live session and verify it "
            "reproduces the offline evaluator bit-for-bit (exit 1 if not)"
        ),
    )
    serve_replay_parser.add_argument(
        "file", help="JSONL trace file (from 'repro trace record')"
    )
    serve_replay_parser.add_argument(
        "--governor",
        choices=("gpht", "reactive", "fixed_window", "learned_tree", "markov"),
        default="gpht",
        help="session governor (default: gpht)",
    )
    serve_replay_parser.add_argument(
        "--policy",
        choices=sorted(POLICY_NAMES),
        default="table2",
        help="phase-to-DVFS policy (default: the paper's Table 2)",
    )
    serve_replay_parser.add_argument(
        "--gphr-depth", type=_positive_int, default=8,
        help="GPHT history depth (default: 8)",
    )
    serve_replay_parser.add_argument(
        "--pht-entries", type=_positive_int, default=128,
        help="GPHT pattern-table capacity (default: 128)",
    )
    serve_replay_parser.add_argument(
        "--window-size", type=_positive_int, default=8,
        help="fixed_window length (default: 8)",
    )
    serve_replay_parser.add_argument(
        "--history-length", type=_positive_int, default=4,
        help="learned_tree feature-window length (default: 4)",
    )
    serve_replay_parser.add_argument(
        "--markov-order", type=_positive_int, default=3,
        help="markov context length (default: 3)",
    )
    serve_replay_parser.add_argument(
        "--markov-alpha", type=float, default=0.5,
        help="markov smoothing strength (default: 0.5)",
    )
    serve_replay_parser.add_argument(
        "--model",
        default=None,
        metavar="FILE",
        help=(
            "trained model artifact (from 'repro learn train'); sets the "
            "governor from the artifact and pre-loads its state into both "
            "the session and the offline reference"
        ),
    )
    serve_replay_parser.add_argument(
        "--snapshot-at",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "checkpoint after sample N, round-trip through JSON and "
            "restore into a fresh session before continuing"
        ),
    )
    serve_replay_parser.set_defaults(func=_cmd_serve_replay)

    learn_parser = subparsers.add_parser(
        "learn",
        help=(
            "train, evaluate and compare learned phase predictors and "
            "power models (see docs/learning.md)"
        ),
    )
    learn_subparsers = learn_parser.add_subparsers(
        dest="learn_kind", required=True
    )

    learn_source = argparse.ArgumentParser(add_help=False)
    source_group = learn_source.add_argument_group("training data")
    source_exclusive = source_group.add_mutually_exclusive_group(
        required=True
    )
    source_exclusive.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="recorded repro.obs JSONL trace (from 'repro trace record')",
    )
    source_exclusive.add_argument(
        "--benchmark",
        default=None,
        metavar="NAME",
        help="live workload generator (see 'list')",
    )
    source_group.add_argument(
        "--intervals",
        type=_positive_int,
        default=1000,
        help="trace length for --benchmark (default: 1000)",
    )
    source_group.add_argument(
        "--seed",
        type=int,
        default=None,
        help="workload seed for --benchmark (default: deterministic)",
    )

    learn_train = learn_subparsers.add_parser(
        "train",
        parents=[learn_source, _format_parent()],
        help="train a model and write a versioned, byte-reproducible artifact",
    )
    learn_train.add_argument(
        "--model",
        choices=("tree", "markov", "power"),
        default="tree",
        help="model family (default: tree)",
    )
    learn_train.add_argument(
        "--history", type=_positive_int, default=4,
        help="tree feature-window length (default: 4)",
    )
    learn_train.add_argument(
        "--order", type=_positive_int, default=3,
        help="markov context length (default: 3)",
    )
    learn_train.add_argument(
        "--alpha", type=float, default=0.5,
        help="markov smoothing strength (default: 0.5)",
    )
    learn_train.add_argument(
        "--max-depth", type=_positive_int, default=8,
        help="tree depth bound (default: 8)",
    )
    learn_train.add_argument(
        "--min-leaf", type=_positive_int, default=2,
        help="tree leaf occupancy bound (default: 2)",
    )
    learn_train.add_argument(
        "--out",
        default="repro-model.json",
        metavar="FILE",
        help="artifact output path (default: repro-model.json)",
    )
    learn_train.set_defaults(func=_cmd_learn_train)

    learn_eval = learn_subparsers.add_parser(
        "eval",
        parents=[learn_source, _format_parent()],
        help=(
            "score a trained artifact on a trace or benchmark "
            "(exit 1 below the floor)"
        ),
    )
    learn_eval.add_argument(
        "artifact", help="model artifact file (from 'learn train')"
    )
    learn_eval.add_argument(
        "--min-accuracy",
        type=float,
        default=0.0,
        metavar="F",
        help="phase-model accuracy floor in [0, 1] (default: 0)",
    )
    learn_eval.add_argument(
        "--max-mae-w",
        type=float,
        default=None,
        metavar="W",
        help="power-model MAE ceiling in watts (default: none)",
    )
    learn_eval.set_defaults(func=_cmd_learn_eval)

    learn_compare = learn_subparsers.add_parser(
        "compare",
        parents=[_sweep_parent(default_intervals=512)],
        help=(
            "accuracy-vs-overhead grid of learned predictors vs the "
            "paper's GPHT, through the execution engine"
        ),
    )
    learn_compare.add_argument(
        "--models",
        nargs="+",
        choices=("tree", "markov", "gpht", "last_value"),
        default=["tree", "markov", "gpht", "last_value"],
        metavar="MODEL",
        help="models to compare (default: tree markov gpht last_value)",
    )
    learn_compare.add_argument(
        "--train-intervals",
        type=_positive_int,
        default=None,
        metavar="N",
        help="training trace length (default: same as --intervals)",
    )
    learn_compare.add_argument(
        "--train-seed",
        type=int,
        default=101,
        help="training workload seed (default: 101)",
    )
    learn_compare.set_defaults(func=_cmd_learn_compare)

    bench_parser = subparsers.add_parser(
        "bench",
        help=(
            "benchmark registry: run suites, render results, gate "
            "regressions against committed baselines"
        ),
    )
    bench_subparsers = bench_parser.add_subparsers(
        dest="bench_command", required=True
    )

    bench_list = bench_subparsers.add_parser(
        "list",
        parents=[_format_parent()],
        help="list registered benches, their tags and artifacts",
    )
    bench_list.set_defaults(func=_cmd_bench_list)

    bench_run = bench_subparsers.add_parser(
        "run",
        parents=[_engine_parent(), _format_parent()],
        help="execute a bench subset, writing artifacts to --out",
    )
    bench_run.add_argument(
        "benches",
        nargs="*",
        metavar="NAME",
        help="bench names to run (default: selection by tag, or all)",
    )
    bench_run.add_argument(
        "--tag",
        action="append",
        metavar="TAG",
        help="select every bench carrying TAG (repeatable)",
    )
    bench_run.add_argument(
        "--smoke",
        action="store_true",
        help="shorthand for --tag smoke (the fast CI subset)",
    )
    bench_run.add_argument(
        "--out",
        default="bench-results",
        metavar="DIR",
        help="artifact output directory (default: bench-results)",
    )
    bench_run.add_argument(
        "--bench-dir",
        default=None,
        metavar="DIR",
        help="benchmarks/ tree to execute (default: ./benchmarks)",
    )
    bench_run.set_defaults(func=_cmd_bench_run)

    bench_report = bench_subparsers.add_parser(
        "report",
        parents=[_format_parent()],
        help=(
            "render a results directory (legacy artifacts are upgraded "
            "to the current schema on the fly)"
        ),
    )
    bench_report.add_argument(
        "results",
        metavar="DIR",
        help="results directory to render",
    )
    bench_report.set_defaults(func=_cmd_bench_report)

    bench_compare = bench_subparsers.add_parser(
        "compare",
        parents=[_format_parent()],
        help=(
            "diff a results directory against committed baselines; "
            "exits 1 on any gated regression"
        ),
    )
    bench_compare.add_argument(
        "results",
        metavar="DIR",
        help="current results directory",
    )
    bench_compare.add_argument(
        "--baseline",
        required=True,
        metavar="DIR",
        help="baseline results directory (e.g. benchmarks/results)",
    )
    bench_compare.add_argument(
        "--tolerance",
        type=float,
        default=10.0,
        metavar="PCT",
        help="relative regression tolerance in percent (default: 10)",
    )
    bench_compare.add_argument(
        "--enforce",
        action="store_true",
        help=(
            "gate wall-clock 'measured' values too (otherwise only "
            "deterministic metrics are gated; REPRO_BENCH_ENFORCE=1 "
            "has the same effect)"
        ),
    )
    bench_compare.set_defaults(func=_cmd_bench_compare)

    lint_parser = subparsers.add_parser(
        "lint",
        parents=[_format_parent(sarif=True)],
        help="run the domain-aware static analysis over source paths",
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint_parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every registered lint rule and exit",
    )
    lint_parser.set_defaults(func=_cmd_lint)

    analyze_parser = subparsers.add_parser(
        "analyze",
        parents=[_format_parent(sarif=True)],
        help=(
            "run the whole-program analyses (checkpoint completeness, "
            "async blocking, determinism taint, layering, protocol "
            "conformance) over source paths"
        ),
    )
    analyze_parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories forming the project (default: src)",
    )
    analyze_parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every registered analysis and exit",
    )
    analyze_parser.set_defaults(func=_cmd_analyze)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
