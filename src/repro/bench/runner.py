"""Executing registered benches through the sweep engine.

Each selected bench becomes one ``bench_module`` cell: an
:class:`~repro.exec.spec.ExperimentSpec` whose evaluation runs the
module under pytest in a subprocess with ``REPRO_BENCH_OUT`` pointed at
the requested output directory, so the module's ``report`` fixture
lands its text + JSON artifacts there instead of the committed
``benchmarks/results``.  Routing through :class:`ExecutionEngine`
buys ``--jobs`` fan-out, progress hooks and tracing for free.

Bench cells default to the :class:`~repro.exec.cache.NullCache`:
caching a wall-clock measurement is exactly the staleness this
subsystem exists to prevent.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.bench.registry import BenchSpec
from repro.errors import ConfigurationError
from repro.exec.cells import CellValue, register_cell_kind
from repro.exec.engine import ExecutionEngine
from repro.exec.spec import ExperimentSpec
from repro.obs.tracer import NULL_TRACER, Tracer

#: Tail of subprocess output kept in a failed cell's value.
_OUTPUT_TAIL_CHARS = 4000


def default_bench_dir() -> Path:
    """Locate the ``benchmarks/`` tree relative to the working directory."""
    candidate = Path.cwd() / "benchmarks"
    if candidate.is_dir():
        return candidate
    raise ConfigurationError(
        "no benchmarks/ directory under the current working directory; "
        "pass --bench-dir"
    )


def bench_spec_to_cell(
    spec: BenchSpec, bench_dir: Path, out_dir: Path
) -> ExperimentSpec:
    """Describe one bench module run as an engine cell."""
    return ExperimentSpec.create(
        "bench_module",
        benchmark=spec.name,
        n_intervals=1,
        module=spec.module,
        bench_dir=str(bench_dir.resolve()),
        out_dir=str(out_dir.resolve()),
    )


@register_cell_kind("bench_module")
def _cell_bench_module(
    spec: ExperimentSpec, tracer: Tracer = NULL_TRACER
) -> CellValue:
    """Run one benchmark module under pytest in a subprocess.

    The child inherits the parent environment (so ``PYTHONPATH`` and
    the enforce flag propagate) with ``REPRO_BENCH_OUT`` overridden to
    the cell's output directory.
    """
    module = str(spec.param("module"))
    bench_dir = Path(str(spec.param("bench_dir")))
    out_dir = Path(str(spec.param("out_dir")))
    module_path = bench_dir / module
    if not module_path.is_file():
        raise ConfigurationError(
            f"benchmark module {module_path} does not exist"
        )
    out_dir.mkdir(parents=True, exist_ok=True)
    env = dict(os.environ)
    env["REPRO_BENCH_OUT"] = str(out_dir)
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            str(module_path),
            "-q",
            "-p",
            "no:cacheprovider",
        ],
        cwd=str(bench_dir.parent),
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        check=False,
    )
    value: CellValue = {
        "bench": spec.benchmark,
        "module": module,
        "returncode": completed.returncode,
        "passed": completed.returncode == 0,
    }
    if completed.returncode != 0:
        value["output_tail"] = (completed.stdout or "")[-_OUTPUT_TAIL_CHARS:]
    return value


def run_benches(
    engine: ExecutionEngine,
    benches: Sequence[BenchSpec],
    bench_dir: Path,
    out_dir: Path,
) -> List[Dict[str, object]]:
    """Execute the selected benches, returning per-bench run records."""
    cells: List[Tuple[BenchSpec, ExperimentSpec]] = [
        (spec, bench_spec_to_cell(spec, bench_dir, out_dir))
        for spec in benches
    ]
    report = engine.run([cell for _, cell in cells])
    records: List[Dict[str, object]] = []
    for spec, cell in cells:
        record: Dict[str, object] = dict(report.value(cell))
        record["tags"] = list(spec.tags)
        record["artifacts"] = list(spec.artifacts)
        records.append(record)
    return records
