"""Versioned benchmark result artifacts (`BenchResult`).

Every benchmark under ``benchmarks/`` persists its measurement as one
JSON artifact in this schema, next to its human-readable text
rendering.  The schema splits a result into two halves with different
comparison contracts:

* the **comparable payload** — ``name``, schema ``version``,
  ``parameters`` and ``metrics`` — is fully deterministic: re-running
  the same bench on any host must reproduce it byte-for-byte.  The
  regression gate (:mod:`repro.bench.compare`) diffs it
  unconditionally, and the validator rejects wall-clock-looking keys
  inside it;
* the **measured** block holds wall-clock-derived numbers (throughput,
  speedups, latencies).  They vary across hosts, so the gate only
  enforces them in opt-in hard mode (``REPRO_BENCH_ENFORCE=1``).

``details`` carries free-form context (grids, per-cell tables) and
``host`` records where the artifact was produced; neither is ever
compared.  Older ad-hoc artifacts are lifted into the current schema by
:func:`upgrade_payload`, so committed baselines stay readable without
hand regeneration.
"""

from __future__ import annotations

import json
import math
import os
import platform
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Union

from repro.errors import ReproError
from repro.exec.spec import CODE_VERSION

#: Discriminator stored in every artifact's ``schema`` field.
SCHEMA_NAME = "repro.bench.result"

#: Current schema version; bumped on incompatible layout changes.
SCHEMA_VERSION = 1

#: Scalar types allowed as parameter values.
ParamValue = Union[str, int, float, bool, None]

#: Numeric types allowed as metric values (bools are rejected).
MetricValue = Union[int, float]

#: Key fragments that betray wall-clock state in the comparable
#: payload; the validator rejects them outright.
FORBIDDEN_KEY_FRAGMENTS = ("timestamp", "datetime", "walltime", "wall_clock")


class BenchFormatError(ReproError):
    """A benchmark artifact does not conform to the result schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BenchFormatError(message)


@dataclass(frozen=True)
class HostProvenance:
    """Where an artifact was produced — informational, never compared.

    Attributes:
        platform: ``platform.platform()`` of the producing host.
        python_version: Interpreter version string.
        cpu_count: Logical CPUs (0 when unknown, e.g. upgraded legacy
            artifacts that never recorded it).
        code_version: Package/spec version stamp
            (:data:`repro.exec.spec.CODE_VERSION`).
    """

    platform: str
    python_version: str
    cpu_count: int
    code_version: str = CODE_VERSION

    @classmethod
    def collect(cls) -> "HostProvenance":
        """Provenance of the current process."""
        return cls(
            platform=platform.platform(),
            python_version=platform.python_version(),
            cpu_count=os.cpu_count() or 0,
        )

    @classmethod
    def unknown(cls) -> "HostProvenance":
        """Placeholder for legacy artifacts that recorded no host."""
        return cls(
            platform="unknown",
            python_version="unknown",
            cpu_count=0,
            code_version="unknown",
        )

    def to_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-ready plain-dict form."""
        return {
            "platform": self.platform,
            "python_version": self.python_version,
            "cpu_count": self.cpu_count,
            "code_version": self.code_version,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "HostProvenance":
        """Inverse of :meth:`to_dict`."""
        _require(
            isinstance(payload, Mapping), "host provenance must be a mapping"
        )
        for key in ("platform", "python_version", "code_version"):
            _require(
                isinstance(payload.get(key), str),
                f"host.{key} must be a string",
            )
        cpu_count = payload.get("cpu_count")
        _require(
            isinstance(cpu_count, int)
            and not isinstance(cpu_count, bool)
            and cpu_count >= 0,
            "host.cpu_count must be a non-negative integer",
        )
        return cls(
            platform=str(payload["platform"]),
            python_version=str(payload["python_version"]),
            cpu_count=int(payload["cpu_count"]),
            code_version=str(payload["code_version"]),
        )


def _check_comparable_key(context: str, key: object) -> str:
    _require(
        isinstance(key, str) and bool(key),
        f"{context} keys must be non-empty strings, got {key!r}",
    )
    lowered = str(key).lower()
    for fragment in FORBIDDEN_KEY_FRAGMENTS:
        _require(
            fragment not in lowered,
            f"{context} key {key!r} looks like wall-clock state "
            f"({fragment!r}); timestamps are banned from the comparable "
            "payload",
        )
    return str(key)


def _check_metric_value(context: str, key: str, value: object) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise BenchFormatError(
            f"{context}[{key!r}] must be a number, got "
            f"{type(value).__name__}"
        )
    number = float(value)
    _require(
        math.isfinite(number),
        f"{context}[{key!r}] must be finite, got {value!r}",
    )
    return number


def _check_param_value(key: str, value: object) -> ParamValue:
    if value is not None and not isinstance(value, (str, int, float, bool)):
        raise BenchFormatError(
            f"parameters[{key!r}] must be a JSON scalar, got "
            f"{type(value).__name__}"
        )
    if isinstance(value, float):
        _require(
            math.isfinite(value),
            f"parameters[{key!r}] must be finite, got {value!r}",
        )
    return value


@dataclass(frozen=True)
class BenchResult:
    """One benchmark measurement in the versioned artifact schema.

    Attributes:
        name: Artifact name (the ``results/<name>.json`` stem).
        version: Schema version the artifact was written under.
        parameters: Bench configuration (deterministic, comparable).
        metrics: Deterministic result scalars — always gated by
            ``repro bench compare``.
        measured: Wall-clock-derived scalars — gated only under
            ``REPRO_BENCH_ENFORCE=1``.
        details: Free-form JSON context; never compared.
        host: Producing-host provenance; never compared.
    """

    name: str
    version: int = SCHEMA_VERSION
    parameters: Mapping[str, ParamValue] = field(default_factory=dict)
    metrics: Mapping[str, MetricValue] = field(default_factory=dict)
    measured: Mapping[str, MetricValue] = field(default_factory=dict)
    details: Any = None
    host: HostProvenance = field(default_factory=HostProvenance.collect)

    @classmethod
    def create(
        cls,
        name: str,
        *,
        metrics: Optional[Mapping[str, MetricValue]] = None,
        measured: Optional[Mapping[str, MetricValue]] = None,
        parameters: Optional[Mapping[str, ParamValue]] = None,
        details: Any = None,
        host: Optional[HostProvenance] = None,
    ) -> "BenchResult":
        """Build and validate a result for the current host."""
        result = cls(
            name=name,
            version=SCHEMA_VERSION,
            parameters=dict(parameters or {}),
            metrics=dict(metrics or {}),
            measured=dict(measured or {}),
            details=details,
            host=host if host is not None else HostProvenance.collect(),
        )
        validate_payload(result.to_payload())
        return result

    def comparable_payload(self) -> Dict[str, Any]:
        """The deterministic half the regression gate always diffs."""
        return {
            "schema": SCHEMA_NAME,
            "version": self.version,
            "name": self.name,
            "parameters": dict(self.parameters),
            "metrics": dict(self.metrics),
        }

    def comparable_json(self) -> str:
        """Canonical JSON bytes of :meth:`comparable_payload`.

        Two runs of the same bench must produce identical strings here —
        this is the determinism contract ``tests/bench`` pins.
        """
        return json.dumps(
            self.comparable_payload(),
            sort_keys=True,
            separators=(",", ":"),
        )

    def to_payload(self) -> Dict[str, Any]:
        """Full JSON-ready artifact payload."""
        payload = self.comparable_payload()
        payload["measured"] = dict(self.measured)
        payload["details"] = self.details
        payload["host"] = self.host.to_dict()
        return payload

    def to_json(self) -> str:
        """Pretty artifact serialisation (what lands on disk)."""
        return json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "BenchResult":
        """Parse and validate an artifact payload (lossless inverse)."""
        validate_payload(payload)
        return cls(
            name=str(payload["name"]),
            version=int(payload["version"]),
            parameters=dict(payload.get("parameters", {})),
            metrics={
                key: value
                for key, value in payload.get("metrics", {}).items()
            },
            measured={
                key: value
                for key, value in payload.get("measured", {}).items()
            },
            details=payload.get("details"),
            host=HostProvenance.from_dict(payload["host"]),
        )


def validate_payload(payload: Mapping[str, Any]) -> None:
    """Reject anything that is not a well-formed current-schema artifact.

    Raises :class:`BenchFormatError` with a message naming the first
    offending field.
    """
    _require(
        isinstance(payload, Mapping), "artifact payload must be a mapping"
    )
    _require(
        payload.get("schema") == SCHEMA_NAME,
        f"artifact schema must be {SCHEMA_NAME!r}, got "
        f"{payload.get('schema')!r} (legacy artifacts go through "
        "upgrade_payload first)",
    )
    version = payload.get("version")
    _require(
        isinstance(version, int)
        and not isinstance(version, bool)
        and version == SCHEMA_VERSION,
        f"artifact version must be {SCHEMA_VERSION}, got {version!r}",
    )
    name = payload.get("name")
    _require(
        isinstance(name, str) and bool(name),
        f"artifact name must be a non-empty string, got {name!r}",
    )
    parameters = payload.get("parameters", {})
    _require(isinstance(parameters, Mapping), "parameters must be a mapping")
    for key, value in parameters.items():
        _check_param_value(_check_comparable_key("parameters", key), value)
    metrics = payload.get("metrics", {})
    _require(isinstance(metrics, Mapping), "metrics must be a mapping")
    for key, value in metrics.items():
        _check_metric_value(
            "metrics", _check_comparable_key("metrics", key), value
        )
    measured = payload.get("measured", {})
    _require(isinstance(measured, Mapping), "measured must be a mapping")
    for key, value in measured.items():
        _require(
            isinstance(key, str) and bool(key),
            f"measured keys must be non-empty strings, got {key!r}",
        )
        _check_metric_value("measured", str(key), value)
    _require("host" in payload, "artifact is missing host provenance")
    HostProvenance.from_dict(payload["host"])


# ---------------------------------------------------------------------------
# One-shot upgraders for the pre-registry ad-hoc artifacts
# ---------------------------------------------------------------------------


def _upgrade_batch_feed_throughput(
    payload: Mapping[str, Any],
) -> Dict[str, Any]:
    """PR 7's flat artifact: every rate is wall-clock, no host block."""
    result = BenchResult(
        name="batch_feed_throughput",
        parameters={
            "benchmark": payload.get("benchmark"),
            "samples": payload.get("samples"),
            "batch_size": payload.get("batch_size"),
            "speedup_target": payload.get("speedup_target"),
        },
        metrics={},
        measured={
            key: float(payload[key])
            for key in (
                "scalar_samples_per_s",
                "batch_samples_per_s",
                "speedup",
            )
            if isinstance(payload.get(key), (int, float))
        },
        details={"legacy_version": payload.get("version")},
        host=HostProvenance.unknown(),
    )
    return result.to_payload()


def _upgrade_learned_accuracy(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """PR 9's artifact: summary means become gated accuracy metrics."""
    comparison = payload.get("comparison", {})
    summary = comparison.get("summary", {}) if isinstance(
        comparison, Mapping
    ) else {}
    metrics: Dict[str, MetricValue] = {}
    for model, stats in summary.items():
        if not isinstance(stats, Mapping):
            continue
        for stat in ("mean_accuracy", "mean_overhead_units"):
            value = stats.get(stat)
            if isinstance(value, (int, float)):
                metrics[f"{model}_{stat}"] = float(value)
    legacy_host = payload.get("host", {})
    host = HostProvenance.unknown()
    if isinstance(legacy_host, Mapping):
        host = HostProvenance(
            platform=str(legacy_host.get("platform", "unknown")),
            python_version=str(legacy_host.get("python_version", "unknown")),
            cpu_count=int(legacy_host.get("cpu_count") or 0),
            code_version="unknown",
        )
    result = BenchResult(
        name="learned_accuracy",
        parameters={"n_benchmarks": payload.get("n_benchmarks")},
        metrics=metrics,
        measured={},
        details={
            "comparison": comparison,
            "legacy_version": payload.get("version"),
        },
        host=host,
    )
    return result.to_payload()


def _upgrade_serve_scaleout(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """PR 5's artifact: flat grid summary, cpu_count its only provenance."""
    measured: Dict[str, MetricValue] = {}
    for key in (
        "wire_baseline_samples_per_s",
        "inprocess_baseline_samples_per_s",
        "best_samples_per_s",
        "speedup_vs_wire_baseline",
    ):
        value = payload.get(key)
        if isinstance(value, (int, float)):
            measured[key] = float(value)
    result = BenchResult(
        name="serve_scaleout",
        parameters={
            "sessions": payload.get("sessions"),
            "samples_per_session": payload.get("samples_per_session"),
            "connections": payload.get("connections"),
            "min_required_speedup": payload.get("min_required_speedup"),
            "outcome_digest": payload.get("outcome_digest"),
        },
        metrics={},
        measured=measured,
        details={"grid": payload.get("grid", [])},
        host=HostProvenance(
            platform="unknown",
            python_version="unknown",
            cpu_count=int(payload.get("cpu_count") or 0),
            code_version="unknown",
        ),
    )
    return result.to_payload()


def upgrade_payload(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Lift any known artifact payload into the current schema.

    Current-schema payloads pass through (after validation); the three
    pre-registry ad-hoc shapes are recognised by their signature keys
    and rewritten.  Anything else raises :class:`BenchFormatError`.
    """
    _require(
        isinstance(payload, Mapping), "artifact payload must be a mapping"
    )
    if payload.get("schema") == SCHEMA_NAME:
        validate_payload(payload)
        return dict(payload)
    keys = set(payload)
    if {"scalar_samples_per_s", "batch_samples_per_s"} <= keys:
        upgraded = _upgrade_batch_feed_throughput(payload)
    elif {"comparison", "n_benchmarks"} <= keys:
        upgraded = _upgrade_learned_accuracy(payload)
    elif {"grid", "wire_baseline_samples_per_s"} <= keys:
        upgraded = _upgrade_serve_scaleout(payload)
    else:
        raise BenchFormatError(
            "unrecognised artifact shape: neither the current "
            f"{SCHEMA_NAME!r} schema nor a known legacy layout "
            f"(keys: {sorted(keys)[:8]})"
        )
    validate_payload(upgraded)
    return upgraded
