"""The regression gate: diff a results directory against baselines.

``repro bench compare`` loads two directories of artifacts (upgrading
legacy shapes on the fly), matches them by artifact name and diffs
every metric whose direction the registry declares:

* ``metrics`` (deterministic) are gated unconditionally;
* ``measured`` (wall-clock) are gated only in enforce mode
  (``--enforce`` or ``REPRO_BENCH_ENFORCE=1``) — on shared runners
  they are reported, never failed.

A gated metric regresses when it moves against its declared direction
by more than the relative tolerance (default 10%).  A current artifact
with no committed baseline is a failure, not a silent pass; baselines
with no current counterpart are fine (CI compares the smoke subset
against the full committed set).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.bench.gate import perf_enforced
from repro.bench.registry import HIGHER, metric_direction
from repro.bench.schema import BenchFormatError, upgrade_payload
from repro.errors import ConfigurationError

#: Default relative tolerance before a gated move counts as a regression.
DEFAULT_TOLERANCE = 0.10


@dataclass(frozen=True)
class MetricDelta:
    """One metric diffed between a current artifact and its baseline.

    Attributes:
        artifact: Owning artifact name.
        metric: Metric name.
        kind: ``"metric"`` (deterministic) or ``"measured"`` (wall-clock).
        direction: Declared direction, or ``None`` when undeclared.
        baseline: Baseline value.
        current: Current value.
        change: Relative change ``(current - baseline) / |baseline|``
            (``inf``-signed when the baseline is zero and the value moved).
        gated: Whether this delta can fail the gate.
        regressed: Whether it did.
    """

    artifact: str
    metric: str
    kind: str
    direction: Optional[str]
    baseline: float
    current: float
    change: float
    gated: bool
    regressed: bool


@dataclass(frozen=True)
class ArtifactComparison:
    """Gate outcome for one artifact."""

    name: str
    status: str  # "ok" | "regressed" | "missing_baseline"
    deltas: Tuple[MetricDelta, ...] = ()
    notes: Tuple[str, ...] = ()


@dataclass(frozen=True)
class CompareReport:
    """Full gate outcome across a results directory."""

    comparisons: Tuple[ArtifactComparison, ...]
    tolerance: float
    enforced: bool
    baseline_only: Tuple[str, ...] = ()

    @property
    def failures(self) -> List[ArtifactComparison]:
        """Artifacts that fail the gate."""
        return [c for c in self.comparisons if c.status != "ok"]

    @property
    def regressions(self) -> List[MetricDelta]:
        """Every gated metric that regressed."""
        return [
            delta
            for comparison in self.comparisons
            for delta in comparison.deltas
            if delta.regressed
        ]

    def exit_code(self) -> int:
        """Process exit code: 0 clean, 1 on any regression/failure."""
        return 1 if self.failures else 0

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready report."""
        return {
            "tolerance": self.tolerance,
            "enforced": self.enforced,
            "ok": not self.failures,
            "baseline_only": list(self.baseline_only),
            "artifacts": [
                {
                    "name": comparison.name,
                    "status": comparison.status,
                    "notes": list(comparison.notes),
                    "deltas": [
                        {
                            "metric": delta.metric,
                            "kind": delta.kind,
                            "direction": delta.direction,
                            "baseline": delta.baseline,
                            "current": delta.current,
                            "change": None
                            if math.isinf(delta.change)
                            else delta.change,
                            "gated": delta.gated,
                            "regressed": delta.regressed,
                        }
                        for delta in comparison.deltas
                    ],
                }
                for comparison in self.comparisons
            ],
        }

    def render_text(self) -> str:
        """Human-readable gate summary."""
        lines: List[str] = []
        mode = "enforced (wall-clock gated)" if self.enforced else "default"
        lines.append(
            f"bench compare: tolerance {self.tolerance:.0%}, mode {mode}"
        )
        for comparison in self.comparisons:
            marker = "ok " if comparison.status == "ok" else "FAIL"
            lines.append(f"[{marker}] {comparison.name}: {comparison.status}")
            for note in comparison.notes:
                lines.append(f"       note: {note}")
            for delta in comparison.deltas:
                if not delta.regressed and abs(delta.change) <= 1e-12:
                    continue
                change = (
                    "n/a"
                    if math.isinf(delta.change)
                    else f"{delta.change:+.1%}"
                )
                status = "REGRESSED" if delta.regressed else (
                    "gated" if delta.gated else "informational"
                )
                lines.append(
                    f"       {delta.kind}:{delta.metric} "
                    f"{delta.baseline:g} -> {delta.current:g} "
                    f"({change}, {status})"
                )
        if self.baseline_only:
            lines.append(
                f"baseline-only artifacts skipped: "
                f"{len(self.baseline_only)}"
            )
        verdict = "PASS" if not self.failures else (
            f"FAIL ({len(self.failures)} artifact(s))"
        )
        lines.append(f"verdict: {verdict}")
        return "\n".join(lines)


def load_results_dir(path: Path) -> Dict[str, Dict[str, Any]]:
    """Read every ``*.json`` artifact in a directory, upgraded + valid.

    Returns artifact payloads keyed by artifact name.  A missing or
    file-typed path raises :class:`ConfigurationError`; an unreadable or
    malformed artifact raises :class:`BenchFormatError` naming the file.
    """
    if not path.is_dir():
        raise ConfigurationError(
            f"results directory {path} does not exist or is not a directory"
        )
    payloads: Dict[str, Dict[str, Any]] = {}
    for artifact_path in sorted(path.glob("*.json")):
        try:
            raw = json.loads(artifact_path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            raise BenchFormatError(
                f"{artifact_path}: not readable JSON: {error}"
            ) from None
        try:
            payload = upgrade_payload(raw)
        except BenchFormatError as error:
            raise BenchFormatError(f"{artifact_path}: {error}") from None
        payloads[str(payload["name"])] = payload
    return payloads


def _relative_change(baseline: float, current: float) -> float:
    delta = current - baseline
    if baseline == 0.0:
        if delta == 0.0:
            return 0.0
        return math.inf if delta > 0 else -math.inf
    return delta / abs(baseline)


def _diff_block(
    artifact: str,
    kind: str,
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    tolerance: float,
    gate_kind: bool,
    notes: List[str],
) -> List[MetricDelta]:
    deltas: List[MetricDelta] = []
    for metric in sorted(current):
        if metric not in baseline:
            notes.append(f"{kind}:{metric} has no baseline value (new)")
            continue
        base_value = float(baseline[metric])
        cur_value = float(current[metric])
        direction = metric_direction(artifact, metric)
        change = _relative_change(base_value, cur_value)
        gated = gate_kind and direction is not None
        worsened = (
            change < -tolerance
            if direction == HIGHER
            else change > tolerance
        )
        regressed = gated and worsened
        deltas.append(
            MetricDelta(
                artifact=artifact,
                metric=metric,
                kind=kind,
                direction=direction,
                baseline=base_value,
                current=cur_value,
                change=change,
                gated=gated,
                regressed=regressed,
            )
        )
    for metric in sorted(baseline):
        if metric not in current:
            notes.append(
                f"{kind}:{metric} present in baseline but missing from "
                "the current run"
            )
    return deltas


def compare_results(
    current: Mapping[str, Mapping[str, Any]],
    baseline: Mapping[str, Mapping[str, Any]],
    tolerance: float = DEFAULT_TOLERANCE,
    enforce: Optional[bool] = None,
) -> CompareReport:
    """Diff current artifacts against baselines under the gate rules.

    ``enforce=None`` defers to the :data:`~repro.bench.gate.ENFORCE_ENV`
    environment contract.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ConfigurationError(
            f"tolerance must be in [0, 1), got {tolerance}"
        )
    enforced = perf_enforced() if enforce is None else enforce
    comparisons: List[ArtifactComparison] = []
    for name in sorted(current):
        payload = current[name]
        if name not in baseline:
            comparisons.append(
                ArtifactComparison(
                    name=name,
                    status="missing_baseline",
                    notes=(
                        "no committed baseline for this artifact — "
                        "commit one (repro bench run + copy to the "
                        "baseline dir) before gating it",
                    ),
                )
            )
            continue
        base = baseline[name]
        notes: List[str] = []
        deltas = _diff_block(
            name,
            "metric",
            payload.get("metrics", {}),
            base.get("metrics", {}),
            tolerance,
            gate_kind=True,
            notes=notes,
        )
        deltas += _diff_block(
            name,
            "measured",
            payload.get("measured", {}),
            base.get("measured", {}),
            tolerance,
            gate_kind=enforced,
            notes=notes,
        )
        status = (
            "regressed" if any(d.regressed for d in deltas) else "ok"
        )
        comparisons.append(
            ArtifactComparison(
                name=name,
                status=status,
                deltas=tuple(deltas),
                notes=tuple(notes),
            )
        )
    baseline_only = tuple(
        sorted(name for name in baseline if name not in current)
    )
    return CompareReport(
        comparisons=tuple(comparisons),
        tolerance=tolerance,
        enforced=enforced,
        baseline_only=baseline_only,
    )
