"""The benchmark registry: modules, tags, artifacts, metric directions.

One :class:`BenchSpec` per module under ``benchmarks/`` records which
artifacts the module emits, which tag-addressable subsets it belongs to
(``repro bench run --tag figures``) and, for gated metrics, which
direction counts as an improvement.  The regression gate only enforces
metrics whose direction it can resolve here — everything else is
reported informationally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Direction literals: ``higher`` means larger values are better.
HIGHER = "higher"
LOWER = "lower"

#: Exact metric names with a globally declared direction.
METRIC_DIRECTIONS: Mapping[str, str] = {
    "speedup": HIGHER,
    "speedup_vs_wire_baseline": HIGHER,
    "mean_edp_improvement": HIGHER,
    "gap_captured": HIGHER,
    "slowdown": LOWER,
    "peak_temperature_c": LOWER,
}

#: Key suffixes that imply a direction when no exact entry matches.
_HIGHER_SUFFIXES = (
    "accuracy",
    "improvement",
    "savings",
    "speedup",
    "samples_per_s",
    "requests_per_s",
    "per_s",
    "bips",
    "throughput",
    "wins",
    "gap_captured",
)
_LOWER_SUFFIXES = (
    "misprediction_rate",
    "degradation",
    "overhead_units",
    "overhead_fraction",
    "seconds",
    "latency_us",
    "us_per_sample",
    "us_per_request",
    "divergence",
    "transition_count",
    "slowdown",
    "us_per_decision",
    "peak_temperature_c",
    "power_error_w",
)


@dataclass(frozen=True)
class BenchSpec:
    """One registered benchmark module.

    Attributes:
        name: Registry name (module stem without the ``test_`` prefix).
        module: Filename under ``benchmarks/``.
        tags: Subset labels addressable via ``--tag``.
        artifacts: Artifact names the module writes to the results dir.
        directions: Per-metric direction overrides for this module's
            artifacts (metric name -> ``higher``/``lower``).
    """

    name: str
    module: str
    tags: Tuple[str, ...]
    artifacts: Tuple[str, ...]
    directions: Mapping[str, str] = field(default_factory=dict)


def _spec(
    name: str,
    tags: Sequence[str],
    artifacts: Optional[Sequence[str]] = None,
    directions: Optional[Mapping[str, str]] = None,
) -> BenchSpec:
    return BenchSpec(
        name=name,
        module=f"test_{name}.py",
        tags=tuple(tags),
        artifacts=tuple(artifacts if artifacts is not None else (name,)),
        directions=dict(directions or {}),
    )


#: Every benchmark module, in suite order.  ``smoke`` tags the fast
#: subset CI runs on shared runners (seconds, not minutes).
BENCHES: Tuple[BenchSpec, ...] = (
    _spec("table1_phase_definitions", ("tables", "smoke")),
    _spec("table2_dvfs_settings", ("tables", "smoke")),
    _spec("fig02_applu_trace", ("figures",)),
    _spec("fig03_quadrants", ("figures", "smoke")),
    _spec("fig04_prediction_accuracy", ("figures",)),
    _spec("fig05_pht_sweep", ("figures",)),
    _spec("fig06_exploration_space", ("figures",)),
    _spec("fig07_dvfs_invariance", ("figures",)),
    _spec("fig08_handler_overhead", ("figures",),
          artifacts=("fig08_handler_overhead", "fig08_overhead_fraction")),
    _spec("fig09_measurement_platform", ("figures",)),
    _spec("fig10_applu_full_system", ("figures",)),
    _spec("fig11_dvfs_results", ("figures",)),
    _spec("fig12_gpht_vs_reactive", ("figures",)),
    _spec("fig13_bounded_degradation", ("figures",)),
    _spec("ablation_associativity", ("ablations",)),
    _spec("ablation_confidence", ("ablations",)),
    _spec("ablation_gphr_depth", ("ablations",)),
    _spec("ablation_granularity", ("ablations",)),
    _spec("ablation_markov_robustness", ("ablations",)),
    _spec("ablation_model_sensitivity", ("ablations",)),
    _spec("ablation_replacement", ("ablations",)),
    _spec("ext_multiprogram", ("ext",)),
    _spec("ext_oracle_bound", ("ext",)),
    _spec("ext_predictor_zoo", ("ext",)),
    _spec("ext_thermal_management", ("ext",)),
    _spec("ext_upc_pitfall", ("ext",)),
    _spec("learned_accuracy", ("learned",)),
    _spec("batch_throughput", ("serve", "throughput", "smoke"),
          artifacts=("batch_feed_throughput", "batch_evaluator_throughput")),
    _spec("serve_throughput", ("serve", "throughput"),
          artifacts=("serve_feed_throughput", "serve_wire_throughput")),
    _spec("serve_scaleout", ("serve", "throughput")),
)


def bench_names() -> List[str]:
    """Registered bench names, in suite order."""
    return [spec.name for spec in BENCHES]


def bench_by_name() -> Dict[str, BenchSpec]:
    """Name -> spec index."""
    return {spec.name: spec for spec in BENCHES}


def all_tags() -> List[str]:
    """Every tag used by the registry, sorted."""
    tags = {tag for spec in BENCHES for tag in spec.tags}
    return sorted(tags)


def artifact_index() -> Dict[str, BenchSpec]:
    """Artifact name -> owning bench spec."""
    index: Dict[str, BenchSpec] = {}
    for spec in BENCHES:
        for artifact in spec.artifacts:
            index[artifact] = spec
    return index


def select_benches(
    names: Sequence[str] = (), tags: Sequence[str] = ()
) -> List[BenchSpec]:
    """Resolve a CLI selection to bench specs (suite order, deduped).

    With neither names nor tags, the whole registry is selected.
    Unknown names or tags raise :class:`ConfigurationError`.
    """
    by_name = bench_by_name()
    known_tags = set(all_tags())
    for name in names:
        if name not in by_name:
            raise ConfigurationError(
                f"unknown bench {name!r}; see 'repro bench list'"
            )
    for tag in tags:
        if tag not in known_tags:
            raise ConfigurationError(
                f"unknown tag {tag!r}; known: {', '.join(all_tags())}"
            )
    if not names and not tags:
        return list(BENCHES)
    wanted = set(names)
    selected = [
        spec
        for spec in BENCHES
        if spec.name in wanted or any(tag in spec.tags for tag in tags)
    ]
    return selected


def metric_direction(artifact: str, metric: str) -> Optional[str]:
    """Resolve the declared direction of one artifact metric.

    Resolution order: the owning bench's per-metric overrides, the
    global exact-name table, then suffix heuristics.  ``None`` means
    undeclared — the gate reports but never fails on it.
    """
    spec = artifact_index().get(artifact)
    if spec is not None and metric in spec.directions:
        return spec.directions[metric]
    if metric in METRIC_DIRECTIONS:
        return METRIC_DIRECTIONS[metric]
    for suffix in _LOWER_SUFFIXES:
        if metric.endswith(suffix):
            return LOWER
    for suffix in _HIGHER_SUFFIXES:
        if metric.endswith(suffix):
            return HIGHER
    return None
