"""repro.bench — machine-readable benchmark registry + regression gate.

The perf evidence behind this reproduction (prediction accuracy, batch
and wire throughput, scale-out speedups) lives as versioned JSON
artifacts under ``benchmarks/results/``.  This package is the contract
around them:

* :mod:`repro.bench.schema` — the :class:`BenchResult` artifact schema
  (deterministic comparable payload vs wall-clock ``measured`` block,
  host provenance, legacy upgraders);
* :mod:`repro.bench.registry` — which modules exist, their tags and
  per-metric improvement directions;
* :mod:`repro.bench.runner` — executes registered benches through the
  sweep engine (``bench_module`` cells);
* :mod:`repro.bench.compare` — the regression gate behind
  ``repro bench compare``;
* :mod:`repro.bench.gate` — the ``REPRO_BENCH_ENFORCE`` contract and
  elapsed-time sanity checks benches call directly.
"""

from repro.bench.compare import (
    DEFAULT_TOLERANCE,
    ArtifactComparison,
    CompareReport,
    MetricDelta,
    compare_results,
    load_results_dir,
)
from repro.bench.gate import (
    ENFORCE_ENV,
    MeasurementError,
    PerfRegressionError,
    check_perf,
    perf_enforced,
    require_positive_elapsed,
)
from repro.bench.registry import (
    BENCHES,
    BenchSpec,
    all_tags,
    bench_by_name,
    bench_names,
    metric_direction,
    select_benches,
)
from repro.bench.runner import (
    bench_spec_to_cell,
    default_bench_dir,
    run_benches,
)
from repro.bench.schema import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    BenchFormatError,
    BenchResult,
    HostProvenance,
    upgrade_payload,
    validate_payload,
)

__all__ = [
    # schema
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "BenchFormatError",
    "BenchResult",
    "HostProvenance",
    "upgrade_payload",
    "validate_payload",
    # registry
    "BENCHES",
    "BenchSpec",
    "all_tags",
    "bench_by_name",
    "bench_names",
    "metric_direction",
    "select_benches",
    # runner
    "bench_spec_to_cell",
    "default_bench_dir",
    "run_benches",
    # compare
    "DEFAULT_TOLERANCE",
    "ArtifactComparison",
    "CompareReport",
    "MetricDelta",
    "compare_results",
    "load_results_dir",
    # gate
    "ENFORCE_ENV",
    "MeasurementError",
    "PerfRegressionError",
    "check_perf",
    "perf_enforced",
    "require_positive_elapsed",
]
