"""Opt-in perf enforcement and measurement sanity checks.

Wall-clock performance thresholds do not belong in pytest assertions:
on a loaded shared runner they fail spuriously, and a flaky gate is a
gate people stop reading.  Benches therefore *record* their rates
(``measured`` block of the artifact) and route threshold checks through
:func:`check_perf`, which only raises under ``REPRO_BENCH_ENFORCE=1`` —
the contract for dedicated perf hosts.  Correctness and bit-equality
assertions stay unconditional in the benches themselves.

:func:`require_positive_elapsed` guards the other failure mode: a
degenerate elapsed time (timer resolution, empty series) silently
producing a zero rate instead of an error.
"""

from __future__ import annotations

import math
import os

from repro.errors import ReproError

#: Environment variable that switches perf thresholds to hard failures.
ENFORCE_ENV = "REPRO_BENCH_ENFORCE"


class MeasurementError(ReproError):
    """A timing measurement was degenerate (non-positive or non-finite)."""


class PerfRegressionError(ReproError):
    """An enforced performance threshold was missed."""


def perf_enforced() -> bool:
    """Whether perf thresholds are hard failures in this environment.

    True when :data:`ENFORCE_ENV` is set to anything but empty/``0``.
    """
    return os.environ.get(ENFORCE_ENV, "").strip() not in ("", "0")


def check_perf(condition: bool, message: str) -> bool:
    """Gate one perf threshold on the enforce contract.

    Returns the condition so callers can record the outcome either way;
    raises :class:`PerfRegressionError` only when enforcement is on.
    """
    if not condition and perf_enforced():
        raise PerfRegressionError(message)
    return condition


def require_positive_elapsed(seconds: float, label: str) -> float:
    """Validate an elapsed-time measurement before dividing by it.

    A zero or negative elapsed time means the timer resolution was too
    coarse for the measured body (or the body never ran); turning that
    into a rate would silently report ``0.0`` or infinity instead of
    failing.  Raises :class:`MeasurementError` with the offending label.
    """
    if not math.isfinite(seconds) or seconds <= 0.0:
        raise MeasurementError(
            f"{label}: elapsed time {seconds!r} is not a positive finite "
            "number; the timer resolution is too coarse for the measured "
            "body or the measurement never ran"
        )
    return float(seconds)
